"""Block library semantics.

Maps Simulink ``BlockType`` strings to executable behaviours so generated
models can actually run in :mod:`repro.simulink.simulator`.  Each behaviour
is a :class:`BlockSemantics` with:

- ``feedthrough``: whether outputs depend combinationally on current inputs
  (``False`` for stateful blocks like ``UnitDelay`` — they break cycles,
  which is exactly why the paper's temporal-barrier pass inserts them);
- ``initial_state``: per-instance starting state;
- ``step(block, inputs, state) -> (outputs, new_state)``.

The registry also records which method names on the special ``Platform``
object map to pre-defined blocks (paper §4.1: "to use pre-defined blocks,
the designer needs to indicate its usage by the invocation of a method from
the special object Platform...  When the method name does not match the
pre-defined component names, a user-defined Simulink block called S-function
is instantiated").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .model import Block, SimulinkError

Number = float
StepFn = Callable[[Block, Sequence[Number], object], Tuple[List[Number], object]]


class SemanticsError(SimulinkError):
    """Raised when a block cannot be executed."""


@dataclass(frozen=True)
class BlockSemantics:
    """Executable semantics of one block type."""

    block_type: str
    feedthrough: bool
    step: StepFn
    initial_state: Callable[[Block], object] = lambda block: None
    #: Default port counts used by factory helpers (None = flexible).
    default_inputs: Optional[int] = 1
    default_outputs: Optional[int] = 1


def _step_constant(block: Block, inputs: Sequence[Number], state: object):
    return [float(block.parameters.get("Value", 0.0))], state


def _step_gain(block: Block, inputs: Sequence[Number], state: object):
    gain = float(block.parameters.get("Gain", 1.0))
    return [gain * inputs[0]], state


def _step_sum(block: Block, inputs: Sequence[Number], state: object):
    signs = str(block.parameters.get("Inputs", "+" * len(inputs)))
    signs = signs.replace("|", "")
    if len(signs) != len(inputs):
        raise SemanticsError(
            f"Sum block {block.name!r}: sign string {signs!r} does not match "
            f"{len(inputs)} input(s)"
        )
    total = 0.0
    for sign, value in zip(signs, inputs):
        total += value if sign == "+" else -value
    return [total], state


def _step_product(block: Block, inputs: Sequence[Number], state: object):
    result = 1.0
    for value in inputs:
        result *= value
    return [result], state


def _step_unit_delay(block: Block, inputs: Sequence[Number], state: object):
    # Output is the *previous* input: the state holds the buffered sample.
    return [float(state)], float(inputs[0])


def _unit_delay_initial(block: Block) -> object:
    return float(block.parameters.get("InitialCondition", 0.0))


def _step_saturation(block: Block, inputs: Sequence[Number], state: object):
    lower = float(block.parameters.get("LowerLimit", -1.0))
    upper = float(block.parameters.get("UpperLimit", 1.0))
    return [min(max(inputs[0], lower), upper)], state


def _step_abs(block: Block, inputs: Sequence[Number], state: object):
    return [abs(inputs[0])], state


def _step_relay(block: Block, inputs: Sequence[Number], state: object):
    """Relay with hysteresis (used by the crane controller)."""
    on_point = float(block.parameters.get("OnSwitchValue", 0.5))
    off_point = float(block.parameters.get("OffSwitchValue", -0.5))
    on_value = float(block.parameters.get("OnOutputValue", 1.0))
    off_value = float(block.parameters.get("OffOutputValue", 0.0))
    engaged = bool(state)
    value = inputs[0]
    if engaged and value <= off_point:
        engaged = False
    elif not engaged and value >= on_point:
        engaged = True
    return [on_value if engaged else off_value], engaged


def _step_identity(block: Block, inputs: Sequence[Number], state: object):
    return [inputs[0]], state


def _step_terminator(block: Block, inputs: Sequence[Number], state: object):
    return [], state


def _step_scope(block: Block, inputs: Sequence[Number], state: object):
    # Scopes record their history in state; the simulator exposes it.
    history = list(state or [])
    history.append(tuple(inputs) if len(inputs) != 1 else inputs[0])
    return [], history


def _scope_initial(block: Block) -> object:
    return []


def _step_sfunction(block: Block, inputs: Sequence[Number], state: object):
    """Execute an S-function.

    The paper attaches compiled C code to S-function blocks; our executable
    substitution accepts a Python callable under the ``callback`` parameter:

    - stateless: ``callback(*inputs) -> value | tuple``
    - stateful:  ``callback(state, inputs) -> (outputs, new_state)`` when the
      block parameter ``Stateful`` is truthy.

    Without a callback the block acts as a sum of its inputs (a harmless
    placeholder that keeps generated models executable before the designer
    supplies behaviour); its C source, when present, is carried in the
    ``Source`` parameter for the `.mdl` round-trip.
    """
    callback = block.parameters.get("callback")
    if callback is None:
        return [float(sum(inputs)) if inputs else 0.0] * max(
            1, block.num_outputs
        ), state
    if block.parameters.get("Stateful"):
        outputs, new_state = callback(state, list(inputs))
        return [float(v) for v in outputs], new_state
    result = callback(*inputs)
    if isinstance(result, tuple):
        return [float(v) for v in result], state
    return [float(result)], state


def _sfunction_initial(block: Block) -> object:
    return block.parameters.get("InitialState")


def _step_comm_channel(block: Block, inputs: Sequence[Number], state: object):
    """Communication channel (CAAM SWFIFO/GFIFO).

    Value semantics are a combinational pass-through — channels transport,
    they do not buffer samples.  This is deliberate: it means a cyclic
    inter-thread dataflow deadlocks unless the §4.2.2 temporal-barrier pass
    inserted a ``UnitDelay``, which is the behaviour the paper relies on.
    Latency *cost* is modelled separately in :mod:`repro.mpsoc`.
    """
    return [inputs[0]], state


def _step_sine(block: Block, inputs: Sequence[Number], state: object):
    import math

    amplitude = float(block.parameters.get("Amplitude", 1.0))
    frequency = float(block.parameters.get("Frequency", 1.0))
    phase = float(block.parameters.get("Phase", 0.0))
    t = float(state)
    value = amplitude * math.sin(frequency * t + phase)
    return [value], t + 1.0


def _step_step_source(block: Block, inputs: Sequence[Number], state: object):
    step_time = float(block.parameters.get("Time", 1.0))
    before = float(block.parameters.get("Before", 0.0))
    after = float(block.parameters.get("After", 1.0))
    t = float(state)
    return [after if t >= step_time else before], t + 1.0


def _zero_initial(block: Block) -> object:
    return 0.0


_REGISTRY: Dict[str, BlockSemantics] = {}


def register(semantics: BlockSemantics) -> BlockSemantics:
    """Register (or override) semantics for a block type."""
    _REGISTRY[semantics.block_type] = semantics
    return semantics


def semantics_for(block_type: str) -> BlockSemantics:
    """The registered semantics of ``block_type`` (raises when unknown)."""
    try:
        return _REGISTRY[block_type]
    except KeyError:
        raise SemanticsError(
            f"no executable semantics registered for block type {block_type!r}"
        ) from None


def has_semantics(block_type: str) -> bool:
    """Whether executable semantics exist for ``block_type``."""
    return block_type in _REGISTRY


def is_feedthrough(block: Block) -> bool:
    """Whether a block's outputs combinationally depend on its inputs."""
    if block.num_inputs == 0 or block.num_outputs == 0:
        return False
    if not has_semantics(block.block_type):
        # Unknown types are conservatively treated as feedthrough so cycle
        # detection errs on the side of inserting barriers.
        return True
    return semantics_for(block.block_type).feedthrough


register(BlockSemantics("Constant", False, _step_constant, default_inputs=0))
register(BlockSemantics("Gain", True, _step_gain))
register(BlockSemantics("Sum", True, _step_sum, default_inputs=2))
register(BlockSemantics("Product", True, _step_product, default_inputs=2))
register(
    BlockSemantics(
        "UnitDelay", False, _step_unit_delay, initial_state=_unit_delay_initial
    )
)
register(BlockSemantics("Saturation", True, _step_saturation))
register(BlockSemantics("Abs", True, _step_abs))
register(
    BlockSemantics(
        "Relay", True, _step_relay, initial_state=lambda b: False
    )
)
register(BlockSemantics("Inport", True, _step_identity, default_inputs=0))
register(BlockSemantics("Outport", True, _step_identity, default_outputs=0))
register(BlockSemantics("Terminator", True, _step_terminator, default_outputs=0))
register(
    BlockSemantics(
        "Scope", True, _step_scope, initial_state=_scope_initial, default_outputs=0
    )
)
register(
    BlockSemantics(
        "S-Function", True, _step_sfunction, initial_state=_sfunction_initial
    )
)
register(BlockSemantics("CommChannel", True, _step_comm_channel))
register(
    BlockSemantics(
        "Sin", False, _step_sine, initial_state=_zero_initial, default_inputs=0
    )
)
register(
    BlockSemantics(
        "Step", False, _step_step_source, initial_state=_zero_initial,
        default_inputs=0,
    )
)


# -- slot-kernel specialization ----------------------------------------------
#
# The slot-compiled simulator (:mod:`repro.simulink.simulator`) executes a
# model as a flat list of closures reading/writing a dense ``values`` slot
# array.  For the highest-traffic block types a *kernel factory* builds a
# closure specialized to the block instance (parameters resolved, slot
# indices bound) so the hot loop pays no parameter lookups, no input-list
# allocation and no ``BlockSemantics.step`` dispatch.  Types without a
# factory (or instances a factory declines, e.g. a Sum whose sign string
# does not match its port count) fall back to the generic ``step`` contract
# and stay bit-identical to the reference interpreter by construction.
#
# Factory signature::
#
#     factory(block, values, states, state_index, src_slots, out_base)
#         -> (output_fn | None, update_fn | None) | None
#
# ``values`` is the shared slot list, ``states`` the per-block state list,
# ``state_index`` the block's index into it, ``src_slots`` the tuple of
# source slot indices for the block's inputs, and ``out_base`` the first
# slot of the block's output range.  Returning ``None`` declines the
# instance (generic fallback); otherwise each phase closure may be ``None``
# when the block contributes nothing to that phase.

KernelPair = Tuple[Optional[Callable[[], None]], Optional[Callable[[], None]]]

_KERNEL_FACTORIES: Dict[str, Callable[..., Optional[KernelPair]]] = {}


def register_kernel(
    block_type: str, factory: Callable[..., Optional[KernelPair]]
) -> None:
    """Register a slot-kernel specialization for a block type."""
    _KERNEL_FACTORIES[block_type] = factory


def kernel_factory_for(
    block_type: str,
) -> Optional[Callable[..., Optional[KernelPair]]]:
    """The registered kernel factory, or ``None`` (→ generic fallback)."""
    return _KERNEL_FACTORIES.get(block_type)


def _kernel_gain(block, values, states, state_index, src_slots, out_base):
    gain = float(block.parameters.get("Gain", 1.0))
    s, d = src_slots[0], out_base

    def output(v=values, s=s, d=d, gain=gain):
        v[d] = gain * v[s]

    return output, None


def _kernel_sum(block, values, states, state_index, src_slots, out_base):
    signs = str(block.parameters.get("Inputs", "+" * len(src_slots)))
    signs = signs.replace("|", "")
    if len(signs) != len(src_slots):
        return None  # generic fallback reports the mismatch at run time
    d = out_base
    if len(src_slots) == 2:
        a, b = src_slots
        # The leading 0.0 reproduces the reference accumulator exactly
        # (including the sign of zero: 0.0 + -0.0 is 0.0, not -0.0).
        if signs[0] == "+" and signs[1] == "+":
            def output(v=values, a=a, b=b, d=d):
                v[d] = 0.0 + v[a] + v[b]
        elif signs[0] == "+":
            def output(v=values, a=a, b=b, d=d):
                v[d] = 0.0 + v[a] - v[b]
        elif signs[1] == "+":
            def output(v=values, a=a, b=b, d=d):
                v[d] = 0.0 - v[a] + v[b]
        else:
            def output(v=values, a=a, b=b, d=d):
                v[d] = 0.0 - v[a] - v[b]
        return output, None
    plus = tuple(sign == "+" for sign in signs)

    def output(v=values, terms=tuple(zip(plus, src_slots)), d=d):
        total = 0.0
        for add, s in terms:
            total += v[s] if add else -v[s]
        v[d] = total

    return output, None


def _kernel_product(block, values, states, state_index, src_slots, out_base):
    d = out_base
    if len(src_slots) == 2:
        a, b = src_slots

        def output(v=values, a=a, b=b, d=d):
            v[d] = v[a] * v[b]

        return output, None

    def output(v=values, srcs=src_slots, d=d):
        result = 1.0
        for s in srcs:
            result *= v[s]
        v[d] = result

    return output, None


def _kernel_saturation(block, values, states, state_index, src_slots, out_base):
    lower = float(block.parameters.get("LowerLimit", -1.0))
    upper = float(block.parameters.get("UpperLimit", 1.0))
    s, d = src_slots[0], out_base

    def output(v=values, s=s, d=d, lower=lower, upper=upper):
        v[d] = min(max(v[s], lower), upper)

    return output, None


def _kernel_abs(block, values, states, state_index, src_slots, out_base):
    s, d = src_slots[0], out_base

    def output(v=values, s=s, d=d):
        v[d] = abs(v[s])

    return output, None


def _kernel_copy(block, values, states, state_index, src_slots, out_base):
    """Pass-through kernel (CommChannel transport)."""
    s, d = src_slots[0], out_base

    def output(v=values, s=s, d=d):
        v[d] = v[s]

    return output, None


def _kernel_constant(block, values, states, state_index, src_slots, out_base):
    value = float(block.parameters.get("Value", 0.0))
    d = out_base

    def output(v=values, d=d, value=value):
        v[d] = value

    return output, None


def _kernel_unit_delay(block, values, states, state_index, src_slots, out_base):
    s, d, i = src_slots[0], out_base, state_index

    def output(v=values, st=states, i=i, d=d):
        v[d] = st[i]

    def update(v=values, st=states, i=i, s=s):
        # float() mirrors the reference step for exotic producers that
        # write non-float values into the slot array.
        st[i] = float(v[s])

    return output, update


def _kernel_relay(block, values, states, state_index, src_slots, out_base):
    on_point = float(block.parameters.get("OnSwitchValue", 0.5))
    off_point = float(block.parameters.get("OffSwitchValue", -0.5))
    on_value = float(block.parameters.get("OnOutputValue", 1.0))
    off_value = float(block.parameters.get("OffOutputValue", 0.0))
    s, d, i = src_slots[0], out_base, state_index

    def output(
        v=values, st=states, i=i, s=s, d=d,
        on_point=on_point, off_point=off_point,
        on_value=on_value, off_value=off_value,
    ):
        engaged = bool(st[i])
        value = v[s]
        if engaged and value <= off_point:
            engaged = False
        elif not engaged and value >= on_point:
            engaged = True
        v[d] = on_value if engaged else off_value
        st[i] = engaged

    return output, None


def _kernel_scope(block, values, states, state_index, src_slots, out_base):
    if len(src_slots) != 1:
        return None  # multi-input scopes record tuples; keep the generic path
    s, i = src_slots[0], state_index

    def update(v=values, st=states, i=i, s=s):
        st[i].append(v[s])

    return None, update


register_kernel("Gain", _kernel_gain)
register_kernel("Sum", _kernel_sum)
register_kernel("Product", _kernel_product)
register_kernel("Saturation", _kernel_saturation)
register_kernel("Abs", _kernel_abs)
register_kernel("CommChannel", _kernel_copy)
register_kernel("Constant", _kernel_constant)
register_kernel("UnitDelay", _kernel_unit_delay)
register_kernel("Relay", _kernel_relay)
register_kernel("Scope", _kernel_scope)


# -- batch-kernel specialization ---------------------------------------------
#
# The vectorized batch engine (:mod:`repro.simulink.batch`) executes a whole
# episode batch at once: the flat per-episode ``values`` list becomes one
# ``(episodes, slots)`` float64 ndarray and each specialized kernel becomes a
# single array op across the batch.  A *batch kernel factory* mirrors the
# scalar factory above but binds twice: once at compile time (parameters,
# slot indices) and once per run (episode count, the concrete arrays)::
#
#     factory(block, src_slots, out_base) -> BatchKernel | None
#     BatchKernel.bind(np, ctx) -> (output_fn | None, update_fn | None,
#                                   snapshot | None)
#
# ``ctx`` carries ``values`` (the 2-D slot array), ``episodes`` and
# ``steps``; the per-step callables take the step index ``k``.  ``snapshot``
# (for stateful kernels) maps an episode index to the scalar engine's state
# object so the batch engine can expose scope histories and leave the
# wrapped simulator in the same post-run state as the scalar loop.
# ``BatchKernel.produced`` is the static output-phase write count, which the
# batch engine checks against every consumer before trusting the kernel.
#
# Exactness contract: every vectorized op replays the scalar kernel's IEEE
# operations in the same order (note the ``0.0`` accumulator seeds and the
# ``where``-based min/max that reproduce Python's ``min``/``max``/``NaN``
# and sign-of-zero behaviour), so batched results are bit-identical to the
# scalar slot engine — the differential property the zoo harness and the
# hypothesis suite enforce.  Factories decline (return ``None``) in exactly
# the cases the scalar factories do, falling back to the per-episode
# generic path.


class BatchKernel:
    """A compile-time batch specialization: static write count + binder."""

    __slots__ = ("produced", "bind")

    def __init__(self, produced: int, bind: Callable) -> None:
        self.produced = produced
        self.bind = bind


_BATCH_KERNEL_FACTORIES: Dict[str, Callable[..., Optional[BatchKernel]]] = {}


def register_batch_kernel(
    block_type: str, factory: Callable[..., Optional[BatchKernel]]
) -> None:
    """Register a vectorized batch kernel for a block type."""
    _BATCH_KERNEL_FACTORIES[block_type] = factory


def batch_kernel_factory_for(
    block_type: str,
) -> Optional[Callable[..., Optional[BatchKernel]]]:
    """The registered batch factory, or ``None`` (→ per-episode fallback)."""
    return _BATCH_KERNEL_FACTORIES.get(block_type)


def _batch_gain(block, src_slots, out_base):
    gain = float(block.parameters.get("Gain", 1.0))
    s, d = src_slots[0], out_base

    def bind(np, ctx):
        src = ctx.values[:, s]
        dst = ctx.values[:, d]

        def output(k, np=np, src=src, dst=dst, gain=gain):
            np.multiply(src, gain, out=dst)

        return output, None, None

    return BatchKernel(1, bind)


def _batch_sum(block, src_slots, out_base):
    signs = str(block.parameters.get("Inputs", "+" * len(src_slots)))
    signs = signs.replace("|", "")
    if len(signs) != len(src_slots):
        return None  # generic fallback reports the mismatch at run time
    plus = tuple(sign == "+" for sign in signs)
    d = out_base

    def bind(np, ctx):
        terms = tuple(
            (add, ctx.values[:, s]) for add, s in zip(plus, src_slots)
        )
        dst = ctx.values[:, d]

        def output(k, np=np, dst=dst, terms=terms):
            # Seeding with 0.0 and accumulating term by term replays the
            # reference accumulator exactly (0.0 + -0.0 is 0.0, and IEEE
            # subtraction is addition of the negation bit-for-bit).
            dst.fill(0.0)
            for add, col in terms:
                if add:
                    np.add(dst, col, out=dst)
                else:
                    np.subtract(dst, col, out=dst)

        return output, None, None

    return BatchKernel(1, bind)


def _batch_product(block, src_slots, out_base):
    d = out_base

    def bind(np, ctx):
        cols = tuple(ctx.values[:, s] for s in src_slots)
        dst = ctx.values[:, d]
        if len(cols) == 2:
            a, b = cols

            def output(k, np=np, a=a, b=b, dst=dst):
                np.multiply(a, b, out=dst)

        else:

            def output(k, np=np, cols=cols, dst=dst):
                dst.fill(1.0)
                for col in cols:
                    np.multiply(dst, col, out=dst)

        return output, None, None

    return BatchKernel(1, bind)


def _batch_saturation(block, src_slots, out_base):
    lower = float(block.parameters.get("LowerLimit", -1.0))
    upper = float(block.parameters.get("UpperLimit", 1.0))
    s, d = src_slots[0], out_base

    def bind(np, ctx):
        src = ctx.values[:, s]
        dst = ctx.values[:, d]

        def output(k, np=np, src=src, dst=dst, lower=lower, upper=upper):
            # where() mirrors Python's min(max(x, lower), upper): the
            # input wins every comparison a NaN poisons, and the sign of
            # zero follows the scalar tie-breaking exactly.
            clipped = np.where(lower > src, lower, src)
            dst[:] = np.where(upper < clipped, upper, clipped)

        return output, None, None

    return BatchKernel(1, bind)


def _batch_abs(block, src_slots, out_base):
    s, d = src_slots[0], out_base

    def bind(np, ctx):
        src = ctx.values[:, s]
        dst = ctx.values[:, d]

        def output(k, np=np, src=src, dst=dst):
            np.absolute(src, out=dst)

        return output, None, None

    return BatchKernel(1, bind)


def _batch_copy(block, src_slots, out_base):
    """Pass-through batch kernel (CommChannel transport)."""
    s, d = src_slots[0], out_base

    def bind(np, ctx):
        src = ctx.values[:, s]
        dst = ctx.values[:, d]

        def output(k, np=np, src=src, dst=dst):
            np.copyto(dst, src)

        return output, None, None

    return BatchKernel(1, bind)


def _batch_constant(block, src_slots, out_base):
    value = float(block.parameters.get("Value", 0.0))
    d = out_base

    def bind(np, ctx):
        # The slot never changes over a run: fill it once at bind time.
        ctx.values[:, d] = value
        return None, None, None

    return BatchKernel(1, bind)


def _batch_unit_delay(block, src_slots, out_base):
    initial = float(block.parameters.get("InitialCondition", 0.0))
    s, d = src_slots[0], out_base

    def bind(np, ctx):
        st = np.full(ctx.episodes, initial)
        src = ctx.values[:, s]
        dst = ctx.values[:, d]

        def output(k, np=np, st=st, dst=dst):
            np.copyto(dst, st)

        def update(k, np=np, st=st, src=src):
            np.copyto(st, src)

        def snapshot(episode, st=st):
            return float(st[episode])

        return output, update, snapshot

    return BatchKernel(1, bind)


def _batch_relay(block, src_slots, out_base):
    on_point = float(block.parameters.get("OnSwitchValue", 0.5))
    off_point = float(block.parameters.get("OffSwitchValue", -0.5))
    on_value = float(block.parameters.get("OnOutputValue", 1.0))
    off_value = float(block.parameters.get("OffOutputValue", 0.0))
    s, d = src_slots[0], out_base

    def bind(np, ctx):
        engaged = np.zeros(ctx.episodes, dtype=bool)
        src = ctx.values[:, s]
        dst = ctx.values[:, d]

        def output(
            k, np=np, engaged=engaged, src=src, dst=dst,
            on_point=on_point, off_point=off_point,
            on_value=on_value, off_value=off_value,
        ):
            # engaged' = engaged ? not(value <= off) : (value >= on) —
            # both comparisons are False for NaN, matching the scalar
            # hysteresis branch exactly.
            np.copyto(
                engaged,
                np.where(engaged, ~(src <= off_point), src >= on_point),
            )
            dst[:] = np.where(engaged, on_value, off_value)

        def snapshot(episode, engaged=engaged):
            return bool(engaged[episode])

        return output, None, snapshot

    return BatchKernel(1, bind)


def _batch_scope(block, src_slots, out_base):
    if len(src_slots) != 1:
        return None  # multi-input scopes record tuples; keep the generic path
    s = src_slots[0]

    def bind(np, ctx):
        src = ctx.values[:, s]
        trace = np.zeros((ctx.episodes, ctx.steps), order="F")

        def update(k, trace=trace, src=src):
            trace[:, k] = src

        def snapshot(episode, trace=trace):
            return trace[episode].tolist()

        return None, update, snapshot

    return BatchKernel(0, bind)


def _batch_sfunction(block, src_slots, out_base):
    """Vectorize the declarative S-function cases.

    The ``codegen_spec`` attribute is the same declarative mirror the C
    backend (:mod:`repro.codegen`) trusts: a stateless callback annotated
    ``("affine", a, b)`` computes exactly ``a * x + b`` and ``("constant",
    c)`` exactly ``c``, so the batch op replays the same IEEE operations.
    Callback-less placeholders sum their inputs.  Anything else (stateful,
    tuple-returning, unannotated) falls back to the per-episode path.
    """
    if block.parameters.get("Stateful"):
        return None
    callback = block.parameters.get("callback")
    if callback is None:
        produced = max(1, block.num_outputs)

        def bind(np, ctx, produced=produced):
            cols = tuple(ctx.values[:, s] for s in src_slots)
            dsts = tuple(
                ctx.values[:, out_base + j] for j in range(produced)
            )

            def output(k, np=np, cols=cols, dsts=dsts):
                acc = dsts[0]
                acc.fill(0.0)
                for col in cols:
                    np.add(acc, col, out=acc)
                for dst in dsts[1:]:
                    np.copyto(dst, acc)

            return output, None, None

        return BatchKernel(produced, bind)
    spec = getattr(callback, "codegen_spec", None)
    if not isinstance(spec, tuple) or not spec:
        return None
    if spec[0] == "affine" and len(spec) == 3 and len(src_slots) == 1:
        a = float(spec[1])
        b = float(spec[2])
        s = src_slots[0]

        def bind(np, ctx, a=a, b=b, s=s):
            src = ctx.values[:, s]
            dst = ctx.values[:, out_base]

            def output(k, np=np, src=src, dst=dst, a=a, b=b):
                np.multiply(src, a, out=dst)
                np.add(dst, b, out=dst)

            return output, None, None

        return BatchKernel(1, bind)
    if spec[0] == "constant" and len(spec) == 2 and not src_slots:
        c = float(spec[1])

        def bind(np, ctx, c=c):
            ctx.values[:, out_base] = c
            return None, None, None

        return BatchKernel(1, bind)
    return None


register_batch_kernel("Gain", _batch_gain)
register_batch_kernel("Sum", _batch_sum)
register_batch_kernel("Product", _batch_product)
register_batch_kernel("Saturation", _batch_saturation)
register_batch_kernel("Abs", _batch_abs)
register_batch_kernel("CommChannel", _batch_copy)
register_batch_kernel("Constant", _batch_constant)
register_batch_kernel("UnitDelay", _batch_unit_delay)
register_batch_kernel("Relay", _batch_relay)
register_batch_kernel("Scope", _batch_scope)
register_batch_kernel("S-Function", _batch_sfunction)


#: Platform-library method names recognized by the mapping (paper §4.1).
#: Method name (lower-case) -> (BlockType, default parameters, inputs).
PLATFORM_BLOCKS: Dict[str, Tuple[str, Dict[str, object], int]] = {
    "mult": ("Product", {}, 2),
    "product": ("Product", {}, 2),
    "add": ("Sum", {"Inputs": "++"}, 2),
    "sum": ("Sum", {"Inputs": "++"}, 2),
    "sub": ("Sum", {"Inputs": "+-"}, 2),
    "gain": ("Gain", {"Gain": 1.0}, 1),
    "abs": ("Abs", {}, 1),
    "saturation": ("Saturation", {}, 1),
    "relay": ("Relay", {}, 1),
    "delay": ("UnitDelay", {"InitialCondition": 0.0}, 1),
    "unitdelay": ("UnitDelay", {"InitialCondition": 0.0}, 1),
    "constant": ("Constant", {"Value": 0.0}, 0),
}


def platform_block_for(method_name: str) -> Optional[Tuple[str, Dict[str, object], int]]:
    """Resolve a ``Platform`` method name to a pre-defined block spec.

    Returns ``None`` when the name does not match any pre-defined component
    (→ the mapping instantiates an S-function instead).
    """
    spec = PLATFORM_BLOCKS.get(method_name.lower())
    if spec is None:
        return None
    block_type, params, inputs = spec
    return block_type, dict(params), inputs
