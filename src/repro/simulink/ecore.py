"""E-core style XML serialization of Simulink models.

The paper's step 2 produces "an XML file, which conforms to the Simulink
CAAM meta-model ... represented using the E-core format (XML-like)"; step 3
consumes this intermediate and optimizes it before the final ``.mdl``
emission.  This module writes and reads that intermediate artifact so the
full four-step pipeline of Fig. 2 is observable (and the optimization pass
can, like the paper's tool, run on the persisted intermediate).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List

from .caam import CPU_ROLE, THREAD_ROLE, ROLE_PARAM, CaamModel, CpuSubsystem, ThreadSubsystem
from .model import Block, SimulinkError, SimulinkModel, SubSystem, System

ECORE_NS = "http://repro.example.org/caam/1.0"


class EcoreError(SimulinkError):
    """Raised on malformed E-core input."""


def to_ecore_string(model: SimulinkModel) -> str:
    """Serialize a model to E-core style XML."""
    root = ET.Element("caam:Model")
    root.set("xmlns:caam", ECORE_NS)
    root.set("name", model.name)
    for key, value in sorted(model.parameters.items()):
        if isinstance(value, (bool, int, float, str)):
            param = ET.SubElement(root, "parameter")
            param.set("key", key)
            param.set("value", str(value))
            param.set("type", type(value).__name__)
    _write_system(root, model.root)
    _indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def write_ecore(model: SimulinkModel, path: str) -> None:
    """Serialize a model to an E-core XML file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_ecore_string(model))


def _write_system(parent: ET.Element, system: System) -> None:
    el = ET.SubElement(parent, "system")
    el.set("name", system.name)
    for block in system.blocks:
        bel = ET.SubElement(el, "block")
        bel.set("name", block.name)
        bel.set("type", block.block_type)
        bel.set("inputs", str(block.num_inputs))
        bel.set("outputs", str(block.num_outputs))
        for key, value in sorted(block.parameters.items()):
            if isinstance(value, (bool, int, float, str)):
                pel = ET.SubElement(bel, "parameter")
                pel.set("key", key)
                pel.set("value", str(value))
                pel.set("type", type(value).__name__)
        if isinstance(block, SubSystem):
            _write_system(bel, block.system)
    for line in system.lines:
        lel = ET.SubElement(el, "line")
        lel.set("srcBlock", line.source.block.name)
        lel.set("srcPort", str(line.source.index))
        for dest in line.destinations:
            del_ = ET.SubElement(lel, "destination")
            del_.set("dstBlock", dest.block.name)
            del_.set("dstPort", str(dest.index))


def _indent(element: ET.Element, level: int = 0) -> None:
    pad = "\n" + "  " * level
    if len(element):
        if not element.text or not element.text.strip():
            element.text = pad + "  "
        for child in element:
            _indent(child, level + 1)
            if not child.tail or not child.tail.strip():
                child.tail = pad + "  "
        if not element[-1].tail or not element[-1].tail.strip():
            element[-1].tail = pad
    elif level and (not element.tail or not element.tail.strip()):
        element.tail = pad


def _parse_typed(value: str, type_name: str) -> object:
    if type_name == "bool":
        return value == "True"
    if type_name == "int":
        return int(value)
    if type_name == "float":
        return float(value)
    return value


def from_ecore_string(text: str) -> SimulinkModel:
    """Parse E-core XML back into a model (CAAM when CPU roles present)."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise EcoreError(f"invalid XML: {exc}") from exc
    name = root.get("name", "model")
    system_el = root.find("system")
    if system_el is None:
        raise EcoreError("no <system> element under model root")
    has_cpus = any(
        _block_role(block_el) == CPU_ROLE
        for block_el in system_el.findall("block")
    )
    model: SimulinkModel = CaamModel(name) if has_cpus else SimulinkModel(name)
    for pel in root.findall("parameter"):
        model.parameters[pel.get("key", "")] = _parse_typed(
            pel.get("value", ""), pel.get("type", "str")
        )
    _fill_system(model.root, system_el)
    return model


def read_ecore(path: str) -> SimulinkModel:
    """Read a model from an E-core XML file."""
    with open(path, "r", encoding="utf-8") as handle:
        return from_ecore_string(handle.read())


def _block_role(block_el: ET.Element) -> str:
    for pel in block_el.findall("parameter"):
        if pel.get("key") == ROLE_PARAM:
            return pel.get("value", "")
    return ""


def _fill_system(system: System, el: ET.Element) -> None:
    for bel in el.findall("block"):
        system.add(_build_block(bel))
    for lel in el.findall("line"):
        source = system.block(lel.get("srcBlock", "")).output(
            int(lel.get("srcPort", "1"))
        )
        destinations = []
        for del_ in lel.findall("destination"):
            dst = system.block(del_.get("dstBlock", ""))
            destinations.append(dst.input(int(del_.get("dstPort", "1"))))
        if not destinations:
            raise EcoreError(
                f"line from {lel.get('srcBlock')!r} has no destination"
            )
        system.connect(source, *destinations)


def _build_block(bel: ET.Element) -> Block:
    name = bel.get("name", "")
    block_type = bel.get("type", "")
    parameters: Dict[str, object] = {}
    for pel in bel.findall("parameter"):
        parameters[pel.get("key", "")] = _parse_typed(
            pel.get("value", ""), pel.get("type", "str")
        )
    if block_type == "SubSystem":
        role = parameters.get(ROLE_PARAM)
        if role == CPU_ROLE:
            sub: SubSystem = CpuSubsystem(name)
        elif role == THREAD_ROLE:
            sub = ThreadSubsystem(name)
        else:
            sub = SubSystem(name)
        sub.parameters.update(parameters)
        inner = bel.find("system")
        if inner is not None:
            _fill_system(sub.system, inner)
        sub.sync_ports()
        return sub
    return Block(
        name,
        block_type,
        inputs=int(bel.get("inputs", "1")),
        outputs=int(bel.get("outputs", "1")),
        parameters=parameters,
    )
