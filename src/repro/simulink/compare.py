"""Structural comparison of Simulink models.

``diff_models`` reports every structural difference between two models —
block census, types, port counts, serializable parameters, and wiring —
as human-readable strings; ``models_equivalent`` is the boolean view.
Used by the round-trip tests (a far stronger check than comparing
census summaries) and handy when debugging generated models.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from .model import Block, SimulinkModel, SubSystem, System


def _serializable_parameters(block: Block) -> dict:
    return {
        key: value
        for key, value in block.parameters.items()
        if isinstance(value, (bool, int, float, str))
    }


def diff_models(left: SimulinkModel, right: SimulinkModel) -> List[str]:
    """All structural differences, as ``path: explanation`` strings."""
    differences: List[str] = []
    if left.name != right.name:
        differences.append(
            f"model name: {left.name!r} != {right.name!r}"
        )
    left_params = {
        k: v
        for k, v in left.parameters.items()
        if isinstance(v, (bool, int, float, str))
    }
    right_params = {
        k: v
        for k, v in right.parameters.items()
        if isinstance(v, (bool, int, float, str))
    }
    if left_params != right_params:
        differences.append(
            f"model parameters: {left_params} != {right_params}"
        )
    _diff_systems(left.root, right.root, left.name, differences)
    return differences


def models_equivalent(left: SimulinkModel, right: SimulinkModel) -> bool:
    """Whether two models are structurally identical."""
    return not diff_models(left, right)


def _diff_systems(
    left: System, right: System, path: str, differences: List[str]
) -> None:
    left_names = {b.name for b in left.blocks}
    right_names = {b.name for b in right.blocks}
    for missing in sorted(left_names - right_names):
        differences.append(f"{path}: block {missing!r} only in left model")
    for missing in sorted(right_names - left_names):
        differences.append(f"{path}: block {missing!r} only in right model")
    for name in sorted(left_names & right_names):
        left_block = left.block(name)
        right_block = right.block(name)
        block_path = f"{path}/{name}"
        if left_block.block_type != right_block.block_type:
            differences.append(
                f"{block_path}: type {left_block.block_type!r} != "
                f"{right_block.block_type!r}"
            )
            continue
        if (left_block.num_inputs, left_block.num_outputs) != (
            right_block.num_inputs,
            right_block.num_outputs,
        ):
            differences.append(
                f"{block_path}: ports "
                f"({left_block.num_inputs},{left_block.num_outputs}) != "
                f"({right_block.num_inputs},{right_block.num_outputs})"
            )
        left_params = _serializable_parameters(left_block)
        right_params = _serializable_parameters(right_block)
        if left_params != right_params:
            for key in sorted(set(left_params) | set(right_params)):
                if left_params.get(key) != right_params.get(key):
                    differences.append(
                        f"{block_path}: parameter {key!r} "
                        f"{left_params.get(key)!r} != "
                        f"{right_params.get(key)!r}"
                    )
        if isinstance(left_block, SubSystem) and isinstance(
            right_block, SubSystem
        ):
            _diff_systems(
                left_block.system, right_block.system, block_path, differences
            )
    _diff_wiring(left, right, path, differences)


def _wiring(system: System) -> Set[Tuple[str, int, str, int]]:
    edges: Set[Tuple[str, int, str, int]] = set()
    for line in system.lines:
        for dest in line.destinations:
            edges.add(
                (
                    line.source.block.name,
                    line.source.index,
                    dest.block.name,
                    dest.index,
                )
            )
    return edges


def _diff_wiring(
    left: System, right: System, path: str, differences: List[str]
) -> None:
    left_edges = _wiring(left)
    right_edges = _wiring(right)
    for edge in sorted(left_edges - right_edges):
        differences.append(
            f"{path}: connection {edge[0]}.out{edge[1]} -> "
            f"{edge[2]}.in{edge[3]} only in left model"
        )
    for edge in sorted(right_edges - left_edges):
        differences.append(
            f"{path}: connection {edge[0]}.out{edge[1]} -> "
            f"{edge[2]}.in{edge[3]} only in right model"
        )
