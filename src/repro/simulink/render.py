"""Textual rendering of Simulink models.

The paper's evaluation *shows* its results as diagrams (Figs. 3(c), 5, 8).
:func:`render_tree` is the textual analogue: the block hierarchy with CAAM
roles, channel protocols and wiring, so benchmark output and bug reports
can show the generated structure at a glance::

    crane  [CAAM]
    +- CPU1  <<CPU-SS>>
    |  +- T1  <<Thread-SS>>  (2 in, 0 out)
    |  |  +- io_position  [Inport]
    |  |  ...
    |  +- ch_T1_xc  [CommChannel SWFIFO]
    ...
"""

from __future__ import annotations

from typing import List

from .caam import CaamModel, is_channel, is_cpu_subsystem, is_thread_subsystem
from .model import Block, SimulinkModel, SubSystem, System


def render_tree(model: SimulinkModel, *, wiring: bool = False) -> str:
    """Render the model hierarchy as an ASCII tree.

    With ``wiring`` true, each system's signal lines are listed after its
    blocks.
    """
    lines: List[str] = []
    tag = "  [CAAM]" if isinstance(model, CaamModel) else ""
    lines.append(f"{model.name}{tag}")
    _render_system(model.root, lines, prefix="", wiring=wiring)
    return "\n".join(lines) + "\n"


def _render_system(
    system: System, lines: List[str], prefix: str, wiring: bool
) -> None:
    entries: List[object] = list(system.blocks)
    if wiring and system.lines:
        entries.append("<wiring>")
    for position, entry in enumerate(entries):
        last = position == len(entries) - 1
        connector = "`- " if last else "+- "
        child_prefix = prefix + ("   " if last else "|  ")
        if entry == "<wiring>":
            lines.append(f"{prefix}{connector}wiring:")
            for line in system.lines:
                dests = ", ".join(
                    f"{d.block.name}.in{d.index}" for d in line.destinations
                )
                lines.append(
                    f"{child_prefix}{line.source.block.name}."
                    f"out{line.source.index} -> {dests}"
                )
            continue
        block = entry
        lines.append(f"{prefix}{connector}{_describe(block)}")
        if isinstance(block, SubSystem):
            _render_system(block.system, lines, child_prefix, wiring)


def _describe(block: Block) -> str:
    if is_cpu_subsystem(block):
        return f"{block.name}  <<CPU-SS>>"
    if is_thread_subsystem(block):
        return (
            f"{block.name}  <<Thread-SS>>  "
            f"({block.num_inputs} in, {block.num_outputs} out)"
        )
    if is_channel(block):
        protocol = block.parameters.get("Protocol", "?")
        width = block.parameters.get("DataWidthBits", "?")
        return f"{block.name}  [CommChannel {protocol}, {width} bits]"
    if isinstance(block, SubSystem):
        return f"{block.name}  [SubSystem]"
    details = ""
    if block.block_type == "Gain":
        details = f" Gain={block.parameters.get('Gain')}"
    elif block.block_type == "Sum":
        details = f" {block.parameters.get('Inputs')!r}"
    elif block.block_type == "Constant":
        details = f" Value={block.parameters.get('Value')}"
    elif block.block_type == "S-Function":
        details = f" {block.parameters.get('FunctionName', '')}"
    elif block.block_type == "UnitDelay" and block.parameters.get(
        "AutoInserted"
    ):
        details = " (auto-inserted)"
    return f"{block.name}  [{block.block_type}{details}]"
