"""Simulink substrate.

A pure-Python replacement for the proprietary MATLAB/Simulink dependency:
block-diagram metamodel, CAAM architecture layer, executable block library,
``.mdl`` and E-core serialization, a fixed-step dataflow simulator, and
structural validation.
"""

from . import blocks_ext  # noqa: F401 - registers the extended library
from .blocks import (
    PLATFORM_BLOCKS,
    BlockSemantics,
    SemanticsError,
    has_semantics,
    is_feedthrough,
    platform_block_for,
    register,
    semantics_for,
)
from .caam import (
    CPU_ROLE,
    GFIFO,
    ROLE_PARAM,
    SWFIFO,
    THREAD_ROLE,
    CaamError,
    CaamModel,
    CaamSummary,
    CpuSubsystem,
    ThreadSubsystem,
    is_channel,
    is_cpu_subsystem,
    is_thread_subsystem,
    make_channel,
    validate_caam,
)
from .compare import diff_models, models_equivalent
from .ecore import (
    EcoreError,
    from_ecore_string,
    read_ecore,
    to_ecore_string,
    write_ecore,
)
from .layout import layout_model, layout_system, overlaps, positions
from .mdl import MdlError, from_mdl, read_mdl, to_mdl, write_mdl
from .render import render_tree
from .model import (
    Block,
    Line,
    Port,
    PortError,
    SimulinkError,
    SimulinkModel,
    SubSystem,
    System,
    flatten,
)
from .simulator import (
    AlgebraicLoopError,
    SimulationError,
    SimulationResult,
    Simulator,
    UnconnectedInputError,
    is_executable,
    run_model,
)
from .validate import find_cycles, unconnected_inputs, validate_model, validate_structure

__all__ = [
    "AlgebraicLoopError",
    "Block",
    "BlockSemantics",
    "CPU_ROLE",
    "CaamError",
    "CaamModel",
    "CaamSummary",
    "CpuSubsystem",
    "EcoreError",
    "GFIFO",
    "Line",
    "MdlError",
    "PLATFORM_BLOCKS",
    "Port",
    "PortError",
    "ROLE_PARAM",
    "SWFIFO",
    "SemanticsError",
    "SimulationError",
    "SimulationResult",
    "SimulinkError",
    "SimulinkModel",
    "Simulator",
    "SubSystem",
    "System",
    "THREAD_ROLE",
    "ThreadSubsystem",
    "UnconnectedInputError",
    "diff_models",
    "find_cycles",
    "flatten",
    "from_ecore_string",
    "from_mdl",
    "has_semantics",
    "is_channel",
    "is_cpu_subsystem",
    "is_executable",
    "is_feedthrough",
    "is_thread_subsystem",
    "layout_model",
    "layout_system",
    "overlaps",
    "positions",
    "make_channel",
    "models_equivalent",
    "platform_block_for",
    "read_ecore",
    "read_mdl",
    "render_tree",
    "register",
    "run_model",
    "semantics_for",
    "to_ecore_string",
    "to_mdl",
    "unconnected_inputs",
    "validate_caam",
    "validate_model",
    "validate_structure",
    "write_ecore",
    "write_mdl",
]
