"""The job manager: admission, scheduling, timeouts, retries, shutdown.

One :class:`JobManager` is the entire serving brain; the HTTP layer in
:mod:`repro.server.http` is a thin JSON shim over it.  Responsibilities:

- **admission control** — a bounded FIFO queue (``queue_depth``); a full
  queue rejects with :class:`QueueFull` (HTTP 429) instead of letting
  latency grow without bound, and a draining server rejects with
  :class:`ShuttingDown` (HTTP 503);
- **scheduling** — ``workers`` daemon threads pop jobs FIFO, honouring
  per-job retry backoff (``not_before``);
- **timeouts** — a monitor thread marks a job ``timed_out`` the moment
  its wall-clock deadline passes and trips its cancel hook; the executing
  thread notices at its next cooperative checkpoint and its late result
  is discarded;
- **retries** — transient failures (see :mod:`repro.server.retry`) are
  re-admitted with exponential backoff + jitter; deterministic
  :class:`~repro.core.flow.FlowError`\\ s fail immediately;
- **graceful shutdown** — :meth:`shutdown` stops admission, lets running
  jobs drain, journals the still-queued specs, and reaps the worker pool.

Everything the manager does is measured through :mod:`repro.obs` under
the ``server.*`` key family (queue-depth/inflight gauges, per-state and
per-kind counters, aggregate and per-kind latency histograms, a
queue-wait histogram), on the same registry the CLI's ``--metrics-out``
writes and ``GET /metrics`` serves.  Traces stitch: each job gets one
``server.job`` root span covering submission to terminal state (opened
at admission, closed from whichever thread finalizes the job), each
execution attempt opens a ``server.job.attempt`` child on the worker
thread, and the executor runs with that attempt attached as the
thread's span context — so flow passes and DSE pool worker windows all
land in the job's subtree instead of starting orphan roots.  Worker log
records carry ``job_id`` via :func:`repro.obs.log_fields`.

An :class:`~repro.obs.slo.SloEngine` (default:
:func:`~repro.obs.slo.default_server_targets`) evaluates availability
and latency targets against the same registry; ``GET /slo`` serves
:meth:`JobManager.slo_report` and the published ``slo.*`` gauges enrich
``/metrics``.
"""

from __future__ import annotations

import collections
import logging
import threading
import time
from typing import Any, Callable, Deque, Dict, List, Optional

from .. import obs
from ..obs import recorder as _obs
from ..obs.logsetup import log_fields
from ..obs.slo import RISK_LEVELS, SloEngine, default_server_targets
from ..parallel.pool import PoolCancelled, SharedEvaluationPool
from .executor import JobCancelled, execute
from .jobs import Job, JobOutcome, JobSpec, JobState
from .journal import consume_journal, write_journal
from .retry import RetryPolicy

log = logging.getLogger(__name__)

#: How often (seconds) the timeout monitor scans running jobs.
MONITOR_INTERVAL_S = 0.05


class AdmissionError(Exception):
    """Base of the admission-refusal errors."""


class QueueFull(AdmissionError):
    """The admission queue is at capacity (HTTP 429)."""


class ShuttingDown(AdmissionError):
    """The server is draining and admits no new jobs (HTTP 503)."""


class UnknownJob(KeyError):
    """No job with the requested id exists (HTTP 404)."""


#: Executor signature the manager dispatches to (injectable for tests).
Executor = Callable[..., JobOutcome]


class JobManager:
    """A bounded, retrying, observable batch-job scheduler."""

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_depth: int = 16,
        job_timeout_s: float = 60.0,
        retry: Optional[RetryPolicy] = None,
        dse_workers: int = 1,
        journal_path: Optional[str] = None,
        executor: Optional[Executor] = None,
        recorder: Optional["_obs.AnyRecorder"] = None,
        slo: Optional[SloEngine] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("JobManager needs at least 1 worker")
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        self.workers = workers
        self.queue_depth = queue_depth
        self.job_timeout_s = job_timeout_s
        self.retry = retry or RetryPolicy()
        self.dse_workers = dse_workers
        self.journal_path = journal_path
        self._executor: Executor = executor or execute
        # A live registry even outside any obs.use() scope, so /metrics
        # always has real numbers; under the CLI the ambient recorder is
        # picked up and --metrics-out sees the same registry.
        rec = recorder if recorder is not None else _obs.get()
        self._rec: "_obs.AnyRecorder" = (
            rec if rec.enabled else obs.Recorder()
        )
        self.slo = slo or SloEngine(default_server_targets())
        self.slo.attach(self._rec.metrics)
        self._rec.slo_engine = self.slo
        # Root anchor for job spans: the span open on the constructing
        # thread (under `repro serve` that is the `cli.serve` span), so
        # the whole serving session exports as one rooted tree.
        self._anchor = self._rec.current_span_id()
        self._lock = threading.RLock()
        self._ready = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._queue: Deque[Job] = collections.deque()
        self._jobs: Dict[str, Job] = {}
        self._running: Dict[str, Job] = {}
        self._threads: List[threading.Thread] = []
        self._monitor: Optional[threading.Thread] = None
        self._pool: Optional[SharedEvaluationPool] = None
        self._accepting = False
        self._stopping = False
        self._started_at: Optional[float] = None
        self._recovered = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "JobManager":
        """Spawn workers (+ the shared DSE pool), replay any journal."""
        with self._lock:
            if self._threads:
                return self
            self._accepting = True
            self._stopping = False
            self._started_at = time.time()
        if self.dse_workers >= 2:
            self._pool = SharedEvaluationPool(self.dse_workers)
        if self.journal_path:
            for spec in consume_journal(self.journal_path):
                job = self._admit(spec, enforce_depth=False)
                self._recovered += 1
                log.info("recovered journaled job %s (%s)", job.id, spec.kind)
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-server-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-server-monitor", daemon=True
        )
        self._monitor.start()
        self._metrics_snapshot()
        return self

    def shutdown(
        self, *, drain: bool = True, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Stop admission, drain running jobs, journal the queued ones.

        With ``drain`` (the default) the call blocks until every running
        job reaches a terminal state (or ``timeout`` elapses); without it,
        workers are abandoned mid-flight (their results are discarded) —
        either way no queued job is started once shutdown begins.
        Returns ``{"drained": ..., "journaled": ...}``.
        """
        with self._lock:
            self._accepting = False
            self._stopping = True
            draining_ids = list(self._running)
            self._ready.notify_all()
        drained = 0
        if drain:
            deadline = None if timeout is None else time.time() + timeout
            with self._idle:
                while self._running:
                    remaining = (
                        None if deadline is None else deadline - time.time()
                    )
                    if remaining is not None and remaining <= 0:
                        break
                    self._idle.wait(remaining if remaining is not None else 0.5)
                drained = sum(
                    1
                    for job_id in draining_ids
                    if self._jobs[job_id].state.terminal
                )
        for thread in self._threads:
            thread.join(timeout=1.0)
        self._threads.clear()
        if self._monitor is not None:
            self._monitor.join(timeout=1.0)
            self._monitor = None
        journaled = 0
        with self._lock:
            backlog = [job.spec for job in self._queue]
            self._queue.clear()
        if self.journal_path is not None:
            journaled = write_journal(self.journal_path, backlog)
            if journaled:
                log.info(
                    "journaled %d unfinished job spec(s) to %s",
                    journaled,
                    self.journal_path,
                )
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._metrics_snapshot()
        # Final SLO evaluation so --metrics-out written after shutdown
        # carries the session's closing slo.* gauges.
        self.slo.evaluate(self._rec.metrics, publish=True)
        return {"drained": drained, "journaled": journaled, "backlog": len(backlog)}

    @property
    def draining(self) -> bool:
        """Whether shutdown has begun (admission closed)."""
        return self._stopping or not self._accepting

    # -- admission ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Admit one validated spec; raises :class:`QueueFull` /
        :class:`ShuttingDown` when admission is refused."""
        return self._admit(spec.validate(), enforce_depth=True)

    def _admit(self, spec: JobSpec, *, enforce_depth: bool) -> Job:
        with self._lock:
            if not self._accepting:
                self._rec.incr("server.jobs.rejected.shutdown")
                raise ShuttingDown("server is shutting down")
            if enforce_depth and len(self._queue) >= self.queue_depth:
                self._rec.incr("server.jobs.rejected.full")
                raise QueueFull(
                    f"admission queue is full ({self.queue_depth} queued)"
                )
            job = Job(spec=spec)
            job.root_span = self._rec.open_span(
                "server.job",
                category="server",
                parent_id=self._anchor,
                start_wall=job.submitted_at,
                job=job.id,
                kind=spec.kind,
            )
            self._jobs[job.id] = job
            self._queue.append(job)
            self._rec.incr("server.jobs.submitted")
            self._metrics_snapshot()
            self._ready.notify()
            return job

    # -- inspection --------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The job with ``job_id`` or :class:`UnknownJob`."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJob(job_id) from None

    def jobs(self) -> List[Job]:
        """All known jobs, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def stats(self) -> Dict[str, Any]:
        """A JSON-ready health/utilization summary (``GET /healthz``)."""
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
            return {
                "state": "draining" if self.draining else "serving",
                "uptime_s": (
                    time.time() - self._started_at if self._started_at else 0.0
                ),
                "workers": self.workers,
                "queue_depth": self.queue_depth,
                "queued": len(self._queue),
                "running": len(self._running),
                "jobs": states,
                "recovered_from_journal": self._recovered,
                "dse_workers": self.dse_workers,
                "slo_risk": self._last_slo_risk(),
            }

    def _last_slo_risk(self) -> Optional[str]:
        """Overall risk from the last published SLO evaluation, if any."""
        value = self._rec.metrics.gauge_value("slo.risk")
        if value is None:
            return None
        return RISK_LEVELS[min(int(value), len(RISK_LEVELS) - 1)]

    def slo_report(self, *, publish: bool = True) -> Dict[str, Any]:
        """Evaluate the SLO engine against the live registry.

        The ``GET /slo`` document; with ``publish`` (the default) the
        per-objective burn/budget/risk gauges are also written back into
        the registry, enriching ``/metrics`` and ``--metrics-out``.
        """
        return self.slo.evaluate(self._rec.metrics, publish=publish)

    @property
    def metrics(self):
        """The metrics registry every server event lands in."""
        return self._rec.metrics

    # -- cancellation ------------------------------------------------------

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job (idempotent on terminal jobs).

        A queued job is cancelled immediately; a running one is marked
        ``cancelled`` and its cooperative hook is tripped — the executing
        thread abandons the work at its next checkpoint and the late
        result is discarded.
        """
        with self._lock:
            job = self.get(job_id)
            if job.state is JobState.QUEUED:
                job.advance(JobState.CANCELLED)
                job.finished_at = time.time()
                try:
                    self._queue.remove(job)
                except ValueError:
                    pass
                self._finalize_metrics(job)
            elif job.state is JobState.RUNNING:
                job.advance(JobState.CANCELLED)
                job.finished_at = time.time()
                job.cancel_event.set()
                self._finalize_metrics(job)
            return job

    # -- worker internals --------------------------------------------------

    def _next_job(self) -> Optional[Job]:
        """Block for the next runnable job; ``None`` means exit."""
        with self._ready:
            while True:
                if self._stopping:
                    return None
                now = time.time()
                wake_at: Optional[float] = None
                for job in self._queue:
                    if job.state is not JobState.QUEUED:
                        continue
                    if job.not_before <= now:
                        self._queue.remove(job)
                        job.advance(JobState.RUNNING)
                        job.attempts += 1
                        if job.attempts == 1:
                            # Pure admission-to-dispatch wait; retry
                            # backoff is intentional delay, not queueing.
                            self._rec.hist(
                                "server.job.queue_wait",
                                max(0.0, now - job.submitted_at),
                            )
                        job.started_at = job.started_at or now
                        job.deadline = now + (
                            job.spec.timeout_s or self.job_timeout_s
                        )
                        self._running[job.id] = job
                        self._metrics_snapshot()
                        return job
                    wake_at = (
                        job.not_before
                        if wake_at is None
                        else min(wake_at, job.not_before)
                    )
                self._ready.wait(
                    None if wake_at is None else max(0.01, wake_at - now)
                )

    def _worker_loop(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        cancelled = job.cancel_event.is_set
        root_id = job.root_span.id if job.root_span is not None else None
        try:
            # Adopt the job's root span as this worker thread's context
            # and stamp job correlation on every log record: the attempt
            # span — and everything the executor opens beneath it — now
            # stitches into the job's subtree.
            with self._rec.attach(root_id), log_fields(
                job_id=job.id, job_kind=job.spec.kind
            ):
                with self._rec.span(
                    "server.job.attempt",
                    "server",
                    job=job.id,
                    attempt=job.attempts,
                ):
                    outcome = self._executor(
                        job.spec, cancelled=cancelled, pool=self._pool
                    )
        except BaseException as exc:  # noqa: BLE001 — full fault barrier
            self._complete(job, error=exc)
        else:
            self._complete(job, outcome=outcome)

    def _complete(
        self,
        job: Job,
        *,
        outcome: Optional[JobOutcome] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Fold one finished execution attempt back into the job table."""
        now = time.time()
        with self._lock:
            self._running.pop(job.id, None)
            final = None
            if job.state is not JobState.RUNNING:
                # Timed out or cancelled while we were executing: the
                # state transition already happened; drop the late result.
                self._rec.incr("server.jobs.discarded_results")
            elif error is None:
                job.outcome = outcome
                job.advance(JobState.DONE)
                job.finished_at = now
                self._finalize_metrics(job)
                final = JobState.DONE
            elif isinstance(error, (JobCancelled, PoolCancelled)):
                job.advance(JobState.CANCELLED)
                job.finished_at = now
                self._finalize_metrics(job)
                final = JobState.CANCELLED
            elif self.retry.should_retry(error, job.attempts):
                delay = self.retry.delay_for(job.attempts)
                job.advance(JobState.QUEUED)
                job.not_before = now + delay
                job.error = f"retrying after {type(error).__name__}: {error}"
                self._queue.append(job)
                self._rec.incr("server.jobs.retried")
                log.warning(
                    "job %s attempt %d failed transiently (%s); retry in %.2fs",
                    job.id,
                    job.attempts,
                    type(error).__name__,
                    delay,
                )
                self._ready.notify()
            else:
                job.error = f"{type(error).__name__}: {error}"
                job.advance(JobState.FAILED)
                job.finished_at = now
                self._finalize_metrics(job)
                final = JobState.FAILED
            self._metrics_snapshot()
            self._idle.notify_all()

    def _monitor_loop(self) -> None:
        """Mark past-deadline running jobs ``timed_out`` and trip cancel."""
        while True:
            with self._lock:
                if self._stopping and not self._running:
                    return
                now = time.time()
                for job in list(self._running.values()):
                    if (
                        job.state is JobState.RUNNING
                        and job.deadline is not None
                        and now >= job.deadline
                    ):
                        job.advance(JobState.TIMED_OUT)
                        job.finished_at = now
                        job.error = (
                            f"timed out after "
                            f"{job.spec.timeout_s or self.job_timeout_s:.3g}s"
                        )
                        job.cancel_event.set()
                        self._finalize_metrics(job)
                        self._metrics_snapshot()
                        log.warning("job %s %s", job.id, job.error)
            time.sleep(MONITOR_INTERVAL_S)

    # -- metrics -----------------------------------------------------------

    def _finalize_metrics(self, job: Job) -> None:
        """Counters, latency histograms, and root-span close on terminal.

        Called from every path that moves a job to a terminal state —
        worker completion, client cancel, timeout monitor — so this is
        also where the job's submission-to-terminal root span closes
        (idempotently), whatever thread got there first.
        """
        state = job.state.value
        kind = job.spec.kind
        self._rec.incr(f"server.jobs.{state}")
        self._rec.incr(f"server.jobs.{state}.{kind}")
        if job.finished_at is not None:
            latency = job.finished_at - job.submitted_at
            self._rec.hist("server.job.latency", latency)
            self._rec.hist(f"server.job.latency.{kind}", latency)
        if job.root_span is not None:
            self._rec.close_span(
                job.root_span,
                error=job.error,
                end_wall=job.finished_at,
                state=state,
                attempts=job.attempts,
            )

    def _metrics_snapshot(self) -> None:
        self._rec.gauge("server.queue.depth", len(self._queue))
        self._rec.gauge("server.jobs.inflight", len(self._running))
