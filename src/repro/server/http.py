"""Stdlib JSON-over-HTTP front-end for the job manager.

Endpoints (all JSON unless noted):

========================  =====================================================
``POST /jobs``            submit a job spec; ``201`` + job document,
                          ``400`` bad spec, ``429`` queue full, ``503`` draining
``GET /jobs``             list all jobs (compact documents)
``GET /jobs/<id>``        one job's full status document (``404`` unknown)
``POST /jobs/<id>/cancel``  cancel a queued/running job
``GET /jobs/<id>/artifact``  the produced artifact (text/plain ``.mdl`` or
                          JSON Pareto front); ``409`` until the job is done
``GET /healthz``          liveness + utilization summary
``GET /metrics``          the full metrics-registry snapshot — the same
                          registry the CLI's ``--metrics-out`` writes
``GET /slo``              live SLO evaluation: attainment, error budget,
                          burn rate, and risk per declared objective
                          (``200`` while within budget, ``503`` on breach)
========================  =====================================================

Built on :class:`http.server.ThreadingHTTPServer` — no dependencies
beyond the standard library, matching the repo's constraint.  Request
handling is thread-per-connection; all shared state lives in the
(locked) :class:`~repro.server.manager.JobManager`.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from .jobs import JobSpec, JobState, SpecError
from .manager import JobManager, QueueFull, ShuttingDown, UnknownJob

log = logging.getLogger(__name__)

#: Largest request body accepted (a generous bound for inline XMI).
MAX_BODY_BYTES = 16 * 1024 * 1024


class JobServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`JobManager`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], manager: JobManager) -> None:
        super().__init__(address, _Handler)
        self.manager = manager


class _Handler(BaseHTTPRequestHandler):
    server: JobServer  # narrowed for type checkers

    # Keep the default wall-of-text access log out of stdout; route
    # through stdlib logging so ``repro -v serve`` shows it.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        log.info("%s %s", self.address_string(), format % args)

    @property
    def manager(self) -> JobManager:
        return self.server.manager

    # -- plumbing ----------------------------------------------------------

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        **headers: str,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name.replace("_", "-"), value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, document: Any, **headers: str) -> None:
        body = (json.dumps(document, indent=2) + "\n").encode("utf-8")
        self._send(status, body, **headers)

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Optional[bytes]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._send_error(400, "request body required")
            return None
        if length > MAX_BODY_BYTES:
            self._send_error(413, "request body too large")
            return None
        return self.rfile.read(length)

    # -- routes ------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["jobs"]:
            return self._post_job()
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            return self._post_cancel(parts[1])
        self._send_error(404, f"no such endpoint: POST {self.path}")

    def do_DELETE(self) -> None:  # noqa: N802
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            return self._post_cancel(parts[1])
        self._send_error(404, f"no such endpoint: DELETE {self.path}")

    def do_GET(self) -> None:  # noqa: N802
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["healthz"]:
            return self._get_healthz()
        if parts == ["metrics"]:
            return self._get_metrics()
        if parts == ["slo"]:
            return self._get_slo()
        if parts == ["jobs"]:
            return self._get_jobs()
        if len(parts) == 2 and parts[0] == "jobs":
            return self._get_job(parts[1])
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "artifact":
            return self._get_artifact(parts[1])
        self._send_error(404, f"no such endpoint: GET {self.path}")

    # -- handlers ----------------------------------------------------------

    def _post_job(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            spec = JobSpec.from_dict(json.loads(body.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return self._send_error(400, f"invalid JSON body: {exc}")
        except SpecError as exc:
            return self._send_error(400, str(exc))
        try:
            job = self.manager.submit(spec)
        except QueueFull as exc:
            return self._send_json(429, {"error": str(exc)}, Retry_After="1")
        except ShuttingDown as exc:
            return self._send_error(503, str(exc))
        self._send_json(201, job.to_dict(), Location=f"/jobs/{job.id}")

    def _post_cancel(self, job_id: str) -> None:
        try:
            job = self.manager.cancel(job_id)
        except UnknownJob:
            return self._send_error(404, f"no such job: {job_id}")
        self._send_json(200, job.to_dict())

    def _get_jobs(self) -> None:
        documents = [
            job.to_dict(with_payload=False) for job in self.manager.jobs()
        ]
        self._send_json(200, {"jobs": documents, "count": len(documents)})

    def _get_job(self, job_id: str) -> None:
        try:
            job = self.manager.get(job_id)
        except UnknownJob:
            return self._send_error(404, f"no such job: {job_id}")
        self._send_json(200, job.to_dict())

    def _get_artifact(self, job_id: str) -> None:
        try:
            job = self.manager.get(job_id)
        except UnknownJob:
            return self._send_error(404, f"no such job: {job_id}")
        if job.state is not JobState.DONE or job.outcome is None:
            return self._send_error(
                409,
                f"job {job_id} is {job.state.value}; artifact available "
                "only when done",
            )
        outcome = job.outcome
        content_type = (
            "application/json"
            if outcome.artifact_name.endswith(".json")
            else "text/plain; charset=utf-8"
        )
        self._send(
            200,
            outcome.artifact_text.encode("utf-8"),
            content_type=content_type,
            Content_Disposition=(
                f'attachment; filename="{outcome.artifact_name}"'
            ),
        )

    def _get_healthz(self) -> None:
        stats = self.manager.stats()
        status = 200 if stats["state"] == "serving" else 503
        self._send_json(status, stats)

    def _get_metrics(self) -> None:
        body = (self.manager.metrics.to_json() + "\n").encode("utf-8")
        self._send(200, body)

    def _get_slo(self) -> None:
        document = self.manager.slo_report()
        # Breach surfaces as 503 so a plain HTTP prober (or an alerting
        # rule keyed on status codes) needs no JSON parsing to page.
        status = 503 if document["risk"] == "breach" else 200
        self._send_json(status, document)


def make_server(
    manager: JobManager, host: str = "127.0.0.1", port: int = 8321
) -> JobServer:
    """Bind a :class:`JobServer`; port 0 picks an ephemeral port."""
    server = JobServer((host, port), manager)
    log.info("repro server listening on %s:%d", *server.server_address[:2])
    return server


def serve_until(
    manager: JobManager,
    server: JobServer,
    stop: threading.Event,
) -> None:
    """Run ``server`` until the ``stop`` event is set, then close it.

    The job manager itself is *not* shut down here — the caller decides
    whether to drain (the CLI does, so Ctrl-C/SIGTERM gives running jobs
    a chance to finish and queued specs land in the journal).
    """
    thread = threading.Thread(
        target=server.serve_forever, name="repro-server-http", daemon=True
    )
    thread.start()
    try:
        stop.wait()
    finally:
        server.shutdown()
        thread.join(timeout=2.0)
        server.server_close()
