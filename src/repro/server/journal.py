"""Shutdown journal: unfinished job specs, persisted and replayable.

When the server shuts down gracefully it drains the jobs already running
but does **not** start the ones still queued; their specs are written
here instead.  The journal is a single JSON document (atomic tmp+rename
write, same discipline as the cache's disk store), and the next server
started with the same ``--journal`` path re-admits every entry before
accepting new traffic — a queued job survives a restart with at-least-
once semantics.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Dict, List

from .jobs import JobSpec, SpecError

#: Journal schema version (bump on incompatible change).
VERSION = 1


def write_journal(path: str, specs: List[JobSpec]) -> int:
    """Atomically persist ``specs``; returns the number written.

    An empty list removes any stale journal instead of writing one, so a
    clean shutdown never leaves a file that would replay nothing.
    """
    if not specs:
        try:
            os.unlink(path)
        except OSError:
            pass
        return 0
    document = {
        "version": VERSION,
        "saved_unix": time.time(),
        "jobs": [spec.to_dict() for spec in specs],
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return len(specs)


def read_journal(path: str) -> List[JobSpec]:
    """Parse a journal into specs; missing file means no backlog.

    Entries that no longer validate (e.g. written by a future schema) are
    skipped rather than blocking startup — the journal is a best-effort
    recovery aid, not a source of truth.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document: Dict[str, Any] = json.load(handle)
    except FileNotFoundError:
        return []
    except (OSError, json.JSONDecodeError):
        return []
    specs: List[JobSpec] = []
    for raw in document.get("jobs", []):
        try:
            specs.append(JobSpec.from_dict(raw))
        except SpecError:
            continue
    return specs


def consume_journal(path: str) -> List[JobSpec]:
    """Read the journal and delete it (recovery is one-shot)."""
    specs = read_journal(path)
    if specs:
        try:
            os.unlink(path)
        except OSError:
            pass
    return specs
