"""Job execution: a :class:`~repro.server.jobs.JobSpec` in, an outcome out.

This is the seam between the serving layer and the library: everything
here calls the exact same front doors a library user would
(:func:`repro.core.flow.synthesize`, :func:`repro.dse.explore.explore`),
so an artifact produced through the server is byte-identical to one
produced directly — the differential tests in ``tests/server/`` pin this
down.  The synthesis cache engages exactly as it would for a library
call (process-wide configuration, ``use_cache`` override per spec), and
exploration jobs evaluate on the server's shared worker pool when one is
provided.

Cancellation is cooperative: the ``cancelled`` hook is checked between
the coarse stages here and polled continuously inside pool evaluation;
when it fires, :class:`JobCancelled` aborts the job.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional

from ..core.flow import FlowError, synthesize
from ..core.taskgraph import task_graph_from_model
from ..uml.model import Model
from ..uml.xmi import XmiError, from_xmi_string
from .jobs import JobOutcome, JobSpec

#: Optional hook polled at cancellation checkpoints.
CancelHook = Optional[Callable[[], bool]]


class JobCancelled(Exception):
    """The job's cancellation hook fired at a checkpoint."""


def _checkpoint(cancelled: CancelHook) -> None:
    if cancelled is not None and cancelled():
        raise JobCancelled("job cancelled")


def build_model(spec: JobSpec) -> Model:
    """Materialize the spec's model: a demo factory or inline XMI.

    Demo models are built by the same factories ``repro demo`` uses, so a
    demo job and the equivalent library call share every byte of input.
    """
    if spec.demo:
        from ..apps import crane, didactic, mjpeg, synthetic

        factories = {
            "didactic": didactic.build_model,
            "crane": crane.build_model,
            "synthetic": synthetic.build_model,
            "mjpeg": mjpeg.build_model,
        }
        factory = factories.get(spec.demo)
        if factory is None:
            raise FlowError(
                f"unknown demo model {spec.demo!r}; "
                f"pick one of {sorted(factories)}"
            )
        return factory()
    try:
        return from_xmi_string(spec.model_xmi or "")
    except XmiError as exc:
        raise FlowError(f"cannot parse model_xmi: {exc}") from exc


def _run_synthesize(
    spec: JobSpec, model: Model, cancelled: CancelHook
) -> JobOutcome:
    result = synthesize(model, **spec.options)
    _checkpoint(cancelled)
    payload: Dict[str, Any] = {
        "model": result.caam.name,
        "summary": str(result.summary),
        "blocks": result.caam.count_blocks(),
        "cpus": len(result.plan.cpus),
        "barriers_inserted": result.barriers_inserted,
        "warnings": list(result.warnings),
    }
    cache_info = result.obs.parallel.get("cache")
    if cache_info:
        payload["cache"] = cache_info
    return JobOutcome(
        artifact_name=f"{result.caam.name}.mdl",
        artifact_text=result.mdl_text,
        payload=payload,
    )


def _run_explore(
    spec: JobSpec, model: Model, cancelled: CancelHook, pool: Optional[object]
) -> JobOutcome:
    from ..dse.explore import explore, pareto_front

    graph = task_graph_from_model(model)
    _checkpoint(cancelled)
    options = dict(spec.options)
    objective = options.get("objective", "latency")
    bound = None
    if pool is not None:
        bound = pool.bind(  # type: ignore[attr-defined]
            graph,
            cycles_per_unit=options.get("cycles_per_unit", 50.0),
            objective=objective,
            cancelled=cancelled,
        )
    candidates = explore(
        graph,
        max_cpus=options.get("max_cpus"),
        objective=objective,
        exhaustive_threshold=options.get("exhaustive_threshold", 8),
        cycles_per_unit=options.get("cycles_per_unit", 50.0),
        pool=bound,
    )
    _checkpoint(cancelled)
    front = pareto_front(candidates, objective=objective)
    front_doc = [
        {
            "cpus": candidate.cpu_count,
            "metric": candidate.metric,
            "objective": objective,
            "plan": {
                cpu: sorted(candidate.plan.threads_on(cpu))
                for cpu in candidate.plan.cpus
            },
        }
        for candidate in front
    ]
    payload = {
        "model": model.name,
        "threads": len(graph.node_weights),
        "candidates": len(candidates),
        "pareto": front_doc,
    }
    return JobOutcome(
        artifact_name=f"{model.name}.pareto.json",
        artifact_text=json.dumps(front_doc, indent=2) + "\n",
        payload=payload,
    )


def _run_simulate(
    spec: JobSpec, model: Model, cancelled: CancelHook
) -> JobOutcome:
    """Synthesize, then execute the CAAM over a batch of stimuli.

    The batch goes through :meth:`Simulator.run_many`, so one compiled
    slot plan serves every episode; when NumPy is available (and neither
    the spec's ``engine`` option nor ``REPRO_SIM_ENGINE`` overrides it)
    the whole batch runs in one vectorized call on the ``batch`` engine,
    whose output is bit-identical to the looped scalar path.  Results
    are returned as a JSON artifact with one entry per stimulus
    (outputs + monitored signals).
    """
    import os

    from ..simulink import batch as libbatch
    from ..simulink.simulator import ENGINE_BATCH, Simulator

    options = dict(spec.options)
    steps = options.get("steps", 100)
    if not isinstance(steps, int) or isinstance(steps, bool) or steps < 0:
        raise FlowError("'steps' must be a non-negative integer")
    stimuli = options.get("stimuli", [{}])
    if not isinstance(stimuli, list) or not all(
        isinstance(s, dict) for s in stimuli
    ):
        raise FlowError("'stimuli' must be a list of stimulus objects")
    if not stimuli:
        raise FlowError("'stimuli' must name at least one episode")
    monitor = options.get("monitor", [])
    if not isinstance(monitor, list) or not all(
        isinstance(p, str) for p in monitor
    ):
        raise FlowError("'monitor' must be a list of block paths")

    synth_options = {
        key: options[key] for key in ("use_cache",) if key in options
    }
    result = synthesize(model, **synth_options)
    _checkpoint(cancelled)
    engine = options.get("engine")
    if (
        engine is None
        and os.environ.get("REPRO_SIM_ENGINE") is None
        and libbatch.numpy_available()
    ):
        engine = ENGINE_BATCH
    simulator = Simulator(result.caam, monitor=monitor, engine=engine)
    episodes = simulator.run_many(steps, stimuli)
    _checkpoint(cancelled)
    episodes_doc = [
        {"outputs": episode.outputs, "signals": episode.signals}
        for episode in episodes
    ]
    payload: Dict[str, Any] = {
        "model": result.caam.name,
        "engine": simulator.engine,
        "steps": steps,
        "episodes": len(episodes),
        "outputs": sorted(episodes[0].outputs),
        "signals": sorted(episodes[0].signals),
    }
    return JobOutcome(
        artifact_name=f"{result.caam.name}.sim.json",
        artifact_text=json.dumps(episodes_doc, indent=2) + "\n",
        payload=payload,
    )


def _run_analyze(
    spec: JobSpec, model: Model, cancelled: CancelHook
) -> JobOutcome:
    """Synthesize, run every analysis pass, return the SARIF artifact.

    The inline payload carries the counts/codes summary plus the SDF
    structured results; the full SARIF 2.1.0 log is the artifact, so a
    client can feed it straight to a code-scanning upload.
    """
    from ..analysis import AnalysisError, analyze_synthesized, pass_names

    options = dict(spec.options)
    suppress = options.get("suppress", [])
    if not isinstance(suppress, list) or not all(
        isinstance(p, str) for p in suppress
    ):
        raise FlowError("'suppress' must be a list of code patterns")
    passes = options.get("passes")
    if passes is not None:
        if not isinstance(passes, list) or not all(
            isinstance(p, str) for p in passes
        ):
            raise FlowError("'passes' must be a list of pass names")
        unknown = sorted(set(passes) - set(pass_names()))
        if unknown:
            raise FlowError(
                f"unknown analysis pass(es) {', '.join(map(repr, unknown))}; "
                f"registered: {', '.join(pass_names())}"
            )
    synth_options = {
        key: options[key] for key in ("use_cache",) if key in options
    }
    synth_options["validate"] = False
    try:
        report = analyze_synthesized(
            model,
            passes=passes,
            suppress=suppress,
            require_deployment=bool(options.get("require_deployment", False)),
            synthesize_options=synth_options,
        )
    except AnalysisError as exc:
        raise FlowError(str(exc)) from exc
    _checkpoint(cancelled)
    payload: Dict[str, Any] = {
        "model": model.name,
        "passes": list(report.passes),
        "counts": report.counts(),
        "codes": report.codes(),
        "max_severity": report.max_severity(),
        "suppressed": len(report.suppressed),
        "sdf": report.info.get("sdf", {}),
    }
    return JobOutcome(
        artifact_name=f"{model.name}.sarif",
        artifact_text=json.dumps(report.to_sarif(), indent=2, sort_keys=True)
        + "\n",
        payload=payload,
    )


def _run_codegen(
    spec: JobSpec, model: Model, cancelled: CancelHook
) -> JobOutcome:
    """Synthesize, then run the static-schedule backend.

    The artifact is the digital-thread trace manifest (the document an
    auditor starts from); the generated sources travel inline in the
    result payload keyed by filename, each already hash-pinned by the
    manifest.
    """
    from ..codegen import CodegenError, generate
    from ..codegen.backend import LANGUAGES
    from ..codegen.trace import flatten_artifacts

    options = dict(spec.options)
    languages = options.get("languages", ["c"])
    if (
        not isinstance(languages, list)
        or not languages
        or not all(isinstance(lang, str) for lang in languages)
    ):
        raise FlowError("'languages' must be a non-empty list of strings")
    unknown = sorted(set(languages) - set(LANGUAGES))
    if unknown:
        raise FlowError(
            f"unknown codegen language(s) {', '.join(map(repr, unknown))}; "
            f"valid languages are {', '.join(LANGUAGES)}"
        )
    synth_options = {
        key: options[key]
        for key in ("use_cache", "auto_allocate")
        if key in options
    }
    result = synthesize(model, **synth_options)
    _checkpoint(cancelled)
    try:
        generated = generate(
            result.caam,
            languages=tuple(languages),
            uml_trace=result.mapping.context.trace,
        )
    except CodegenError as exc:
        raise FlowError(str(exc)) from exc
    _checkpoint(cancelled)
    stats = generated.schedule.stats()
    payload: Dict[str, Any] = {
        "model": result.caam.name,
        "languages": sorted(generated.artifacts),
        "schedule": {
            "pes": stats["pes"],
            "blocks": stats["blocks"],
            "buffers": stats["buffers"],
            "firing_order": list(generated.schedule.firing_order),
        },
        "sources": flatten_artifacts(generated.artifacts),
        "artifact_hashes": {
            entry["file"]: entry["sha256"]
            for entry in generated.manifest["artifacts"]
        },
        "requirements": [
            requirement["id"]
            for requirement in generated.manifest["requirements"]
        ],
    }
    return JobOutcome(
        artifact_name=f"{result.caam.name}.trace_manifest.json",
        artifact_text=generated.manifest_text,
        payload=payload,
    )


def execute(
    spec: JobSpec,
    *,
    cancelled: CancelHook = None,
    pool: Optional[object] = None,
) -> JobOutcome:
    """Run one job spec to completion (the manager's default executor)."""
    _checkpoint(cancelled)
    model = build_model(spec)
    _checkpoint(cancelled)
    if spec.kind == "synthesize":
        return _run_synthesize(spec, model, cancelled)
    if spec.kind == "simulate":
        return _run_simulate(spec, model, cancelled)
    if spec.kind == "analyze":
        return _run_analyze(spec, model, cancelled)
    if spec.kind == "codegen":
        return _run_codegen(spec, model, cancelled)
    return _run_explore(spec, model, cancelled, pool)
