"""Batch synthesis service: the serving layer over the library flow.

The paper frames the UML front-end as the entry point of a persistent
*tool flow* — models in, CAAM/FSM/Java artifacts out.  ``repro.server``
turns the library calls (:func:`repro.core.flow.synthesize`,
:func:`repro.dse.explore.explore`) into a long-lived, load-shedding,
observable service:

- :mod:`.jobs` — the job model: :class:`JobSpec` (what to run),
  :class:`Job` (server-side bookkeeping), and the validated
  ``queued → running → done|failed|cancelled|timed_out`` state machine;
- :mod:`.manager` — :class:`JobManager`: bounded FIFO admission
  (:class:`QueueFull` → HTTP 429), worker threads, wall-clock timeouts
  with cooperative cancellation, transient-only retries with exponential
  backoff + jitter (:mod:`.retry`), graceful drain, and a shutdown
  journal of unfinished specs (:mod:`.journal`);
- :mod:`.executor` — runs specs through the *same* front doors a library
  user calls, so served artifacts are byte-identical to library ones;
  exploration jobs share one
  :class:`repro.parallel.pool.SharedEvaluationPool` primed at server
  start, not per request;
- :mod:`.http` — a stdlib-only JSON API (``POST /jobs``,
  ``GET /jobs/<id>``, ``GET /jobs/<id>/artifact``, ``GET /healthz``,
  ``GET /metrics``) behind ``repro serve``.

Minimal embedded use::

    from repro.server import JobManager, JobSpec, make_server

    manager = JobManager(workers=2, queue_depth=8).start()
    job = manager.submit(JobSpec(kind="synthesize", demo="crane"))
    ...
    manager.shutdown()          # drains, journals, reaps the pool

See ``docs/server.md`` for the full API reference and semantics.
"""

from .executor import JobCancelled, execute
from .http import JobServer, make_server, serve_until
from .jobs import Job, JobOutcome, JobSpec, JobState, SpecError, StateError
from .journal import consume_journal, read_journal, write_journal
from .manager import (
    AdmissionError,
    JobManager,
    QueueFull,
    ShuttingDown,
    UnknownJob,
)
from .retry import RetryPolicy

__all__ = [
    "AdmissionError",
    "Job",
    "JobCancelled",
    "JobManager",
    "JobOutcome",
    "JobServer",
    "JobSpec",
    "JobState",
    "QueueFull",
    "RetryPolicy",
    "ShuttingDown",
    "SpecError",
    "StateError",
    "UnknownJob",
    "consume_journal",
    "execute",
    "make_server",
    "read_journal",
    "serve_until",
    "write_journal",
]
