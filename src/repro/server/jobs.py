"""Job model for the batch synthesis service.

A *job* is one unit of admitted work: a :class:`JobSpec` describing what
to run (synthesize or explore, over which model, with which options) plus
the server-side bookkeeping — state, attempts, timestamps, errors — that
the HTTP API reports.  The state machine is::

    queued ──> running ──> done
       │          │ ├────> failed       (deterministic error, retries spent)
       │          │ ├────> cancelled    (client cancel observed)
       │          │ ├────> timed_out    (wall-clock deadline passed)
       │          │ └────> queued       (transient failure, retry scheduled)
       └────────> cancelled             (cancelled before it ever ran)

``done`` / ``failed`` / ``cancelled`` / ``timed_out`` are terminal.  All
transitions are validated by :meth:`Job.advance`; an illegal transition is
a programming error and raises :class:`StateError` rather than corrupting
the table.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional


class JobState(str, enum.Enum):
    """Lifecycle states of a job (string-valued for direct JSON use)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMED_OUT = "timed_out"

    @property
    def terminal(self) -> bool:
        """Whether no further transition can leave this state."""
        return self in _TERMINAL


_TERMINAL: FrozenSet[JobState] = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.TIMED_OUT}
)

#: Legal transitions (see the module diagram).
TRANSITIONS: Dict[JobState, FrozenSet[JobState]] = {
    JobState.QUEUED: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset(
        {
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.TIMED_OUT,
            JobState.QUEUED,  # transient failure re-admitted for retry
        }
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
    JobState.TIMED_OUT: frozenset(),
}


class SpecError(ValueError):
    """A job specification that cannot be admitted (HTTP 400)."""


class StateError(RuntimeError):
    """An illegal job state transition was attempted."""


#: Job kinds the executor understands.
KINDS = ("synthesize", "explore", "simulate", "analyze", "codegen")

#: ``synthesize`` options a spec may forward (mirrors the keyword-only
#: signature of :func:`repro.core.flow.synthesize`; ``behaviors`` is
#: excluded — callables don't travel over JSON).
SYNTHESIZE_OPTIONS = frozenset(
    {
        "auto_allocate",
        "infer_channels",
        "insert_barriers",
        "layout",
        "validate",
        "strict",
        "name",
        "use_cache",
    }
)

#: ``explore`` options a spec may forward.
EXPLORE_OPTIONS = frozenset(
    {"max_cpus", "objective", "exhaustive_threshold", "cycles_per_unit"}
)

#: ``simulate`` options a spec may forward.  ``stimuli`` is a list of
#: stimulus objects (Inport name -> sample list), one batch episode each;
#: ``engine`` selects the simulator engine (slot-compiled by default).
SIMULATE_OPTIONS = frozenset(
    {"steps", "stimuli", "monitor", "engine", "use_cache"}
)

#: ``analyze`` options a spec may forward.  ``suppress`` is a list of
#: diagnostic-code patterns (``RA203``, ``RA2xx``, ``RA2*``); ``passes``
#: restricts which registered passes run.
ANALYZE_OPTIONS = frozenset(
    {"passes", "suppress", "require_deployment", "use_cache"}
)

#: ``codegen`` options a spec may forward.  ``languages`` selects the
#: static-schedule backend's targets (subset of ``("c", "java")``);
#: ``auto_allocate`` is forwarded to synthesis.  The job's artifact is
#: the digital-thread trace manifest; the generated sources travel in
#: the result payload.
CODEGEN_OPTIONS = frozenset({"languages", "auto_allocate", "use_cache"})


@dataclass(frozen=True)
class JobSpec:
    """What a job should run — pure data, JSON- and journal-serializable."""

    kind: str
    demo: Optional[str] = None
    model_xmi: Optional[str] = None
    options: Dict[str, Any] = field(default_factory=dict)
    #: Per-job wall-clock budget; ``None`` uses the server default.
    timeout_s: Optional[float] = None

    def validate(self) -> "JobSpec":
        """Return ``self`` if admissible, else raise :class:`SpecError`."""
        if self.kind not in KINDS:
            raise SpecError(
                f"unknown job kind {self.kind!r}; expected one of {KINDS}"
            )
        if bool(self.demo) == bool(self.model_xmi):
            raise SpecError(
                "a job needs exactly one model source: 'demo' or 'model_xmi'"
            )
        if not isinstance(self.options, dict):
            raise SpecError("'options' must be an object")
        allowed = {
            "synthesize": SYNTHESIZE_OPTIONS,
            "explore": EXPLORE_OPTIONS,
            "simulate": SIMULATE_OPTIONS,
            "analyze": ANALYZE_OPTIONS,
            "codegen": CODEGEN_OPTIONS,
        }[self.kind]
        unknown = sorted(set(self.options) - allowed)
        if unknown:
            raise SpecError(
                f"unknown {self.kind} option(s) {', '.join(map(repr, unknown))}; "
                f"valid options are {', '.join(sorted(allowed))}"
            )
        if self.timeout_s is not None and (
            not isinstance(self.timeout_s, (int, float)) or self.timeout_s <= 0
        ):
            raise SpecError("'timeout_s' must be a positive number")
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (what the journal persists)."""
        spec: Dict[str, Any] = {"kind": self.kind, "options": dict(self.options)}
        if self.demo:
            spec["demo"] = self.demo
        if self.model_xmi:
            spec["model_xmi"] = self.model_xmi
        if self.timeout_s is not None:
            spec["timeout_s"] = self.timeout_s
        return spec

    @classmethod
    def from_dict(cls, raw: Any) -> "JobSpec":
        """Parse and validate a client/journal payload."""
        if not isinstance(raw, dict):
            raise SpecError("job spec must be a JSON object")
        unknown = sorted(
            set(raw) - {"kind", "demo", "model_xmi", "options", "timeout_s"}
        )
        if unknown:
            raise SpecError(
                f"unknown job field(s) {', '.join(map(repr, unknown))}"
            )
        return cls(
            kind=raw.get("kind", ""),
            demo=raw.get("demo"),
            model_xmi=raw.get("model_xmi"),
            options=raw.get("options") or {},
            timeout_s=raw.get("timeout_s"),
        ).validate()


@dataclass
class JobOutcome:
    """What a successful execution produced."""

    #: Suggested artifact filename (``crane.mdl``, ``crane.pareto.json``).
    artifact_name: str
    #: The artifact text itself (``.mdl`` or exploration JSON).
    artifact_text: str
    #: JSON-ready result summary served inline by ``GET /jobs/<id>``.
    payload: Dict[str, Any] = field(default_factory=dict)


_seq = itertools.count(1)


def _new_job_id() -> str:
    """Short, unique, monotonically sortable job ids."""
    return f"job-{next(_seq):06d}-{uuid.uuid4().hex[:8]}"


@dataclass
class Job:
    """One admitted job and all its server-side bookkeeping."""

    spec: JobSpec
    id: str = field(default_factory=_new_job_id)
    state: JobState = JobState.QUEUED
    #: Execution attempts started so far (1 after the first pop).
    attempts: int = 0
    #: Human-readable failure description (state ``failed``/``timed_out``).
    error: Optional[str] = None
    #: Earliest wall-clock time the queue may hand this job out (retry
    #: backoff); 0.0 means immediately.
    not_before: float = 0.0
    #: Wall-clock deadline of the current attempt (set when running).
    deadline: Optional[float] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    outcome: Optional[JobOutcome] = None
    #: Cooperative cancellation flag polled by the executor.
    cancel_event: threading.Event = field(default_factory=threading.Event)
    #: The job's submission-to-terminal root span (a
    #: :class:`repro.obs.Span`, set by the manager at admission).  Every
    #: execution-attempt span stitches under it, so one job is one
    #: subtree in the exported Chrome trace.
    root_span: Optional[Any] = field(default=None, repr=False)

    def advance(self, target: JobState) -> None:
        """Transition to ``target``, enforcing the state machine."""
        if target not in TRANSITIONS[self.state]:
            raise StateError(
                f"job {self.id}: illegal transition {self.state.value} -> "
                f"{target.value}"
            )
        self.state = target

    def to_dict(self, *, with_payload: bool = True) -> Dict[str, Any]:
        """The status document ``GET /jobs/<id>`` serves."""
        doc: Dict[str, Any] = {
            "id": self.id,
            "kind": self.spec.kind,
            "state": self.state.value,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }
        if self.spec.demo:
            doc["demo"] = self.spec.demo
        if self.state is JobState.DONE and self.outcome is not None:
            doc["artifact"] = self.outcome.artifact_name
            if with_payload:
                doc["result"] = dict(self.outcome.payload)
        return doc
