"""Retry policy: exponential backoff with jitter, transient-only.

The classification side leans on the error taxonomy of
:mod:`repro.core.flow`: a deterministic :class:`~repro.core.flow.FlowError`
(a bad model, an impossible allocation, a strict-mode escalation) will
fail identically on every attempt and is **never** retried; substrate
failures — a crashed worker process, a cache I/O error, a
:class:`~repro.core.flow.TransientFlowError` — are retried up to
``max_retries`` times with exponentially growing, jittered delays.

Jitter exists to de-synchronize retry storms when many jobs fail at once
(e.g. a pool respawn); tests that need determinism construct the policy
with ``jitter=0``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.flow import is_transient


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule + the transient/deterministic classifier."""

    #: Retries after the first attempt (2 = up to 3 executions total).
    max_retries: int = 2
    #: Delay before the first retry; doubles each further retry.
    base_delay_s: float = 0.1
    #: Backoff ceiling.
    max_delay_s: float = 5.0
    #: Fractional jitter: each delay is scaled by ``1 ± jitter``.
    jitter: float = 0.2

    def classify(self, exc: BaseException) -> bool:
        """Whether ``exc`` is transient (see :func:`repro.core.flow.is_transient`)."""
        return is_transient(exc)

    def should_retry(self, exc: BaseException, attempts: int) -> bool:
        """Whether a job that failed with ``exc`` on attempt number
        ``attempts`` (1-based) deserves another execution."""
        return attempts <= self.max_retries and self.classify(exc)

    def delay_for(self, attempts: int) -> float:
        """Seconds to wait before the retry following attempt ``attempts``."""
        exponent = max(0, attempts - 1)
        delay = min(self.max_delay_s, self.base_delay_s * (2.0 ** exponent))
        if self.jitter:
            delay *= 1.0 + random.uniform(-self.jitter, self.jitter)
        return max(0.0, delay)
