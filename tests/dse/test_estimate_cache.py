"""Plan-independent table caching in repro.dse.estimate.

``estimate_allocation`` caches the graph condensation, topological order,
and per-``cycles_per_unit`` duration tables keyed by graph identity plus
a content fingerprint; the cache must be invisible (same numbers warm or
cold) and must invalidate when the graph mutates in place.
"""

import pytest

from repro import obs
from repro.core import TaskGraph
from repro.dse import estimate_allocation
from repro.dse.estimate import _TABLE_CACHE, _list_schedule, _tables_for
from repro.uml import DeploymentPlan


def _graph():
    graph = TaskGraph()
    graph.add_node("A", 1)
    graph.add_node("B", 2)
    graph.add_node("C", 1)
    graph.add_edge("A", "B", 32)
    graph.add_edge("B", "C", 64)
    return graph


def _plan(**mapping):
    return DeploymentPlan.from_mapping(mapping)


class TestTableCache:
    def test_warm_cache_returns_identical_estimate(self):
        graph = _graph()
        plan = _plan(A="CPU0", B="CPU0", C="CPU1")
        cold = estimate_allocation(graph, plan, cycles_per_unit=50)
        warm = estimate_allocation(graph, plan, cycles_per_unit=50)
        assert warm == cold

    def test_cache_matches_fresh_graph(self):
        graph = _graph()
        plan = _plan(A="CPU0", B="CPU1", C="CPU1")
        estimate_allocation(graph, plan, cycles_per_unit=50)
        cached = estimate_allocation(graph, plan, cycles_per_unit=50)
        fresh = estimate_allocation(_graph(), plan, cycles_per_unit=50)
        assert cached == fresh

    def test_mutated_graph_invalidates_fingerprint(self):
        graph = _graph()
        plan = _plan(A="CPU0", B="CPU0", C="CPU0")
        before = estimate_allocation(graph, plan, cycles_per_unit=50)
        graph.add_node("D", 3)
        after = estimate_allocation(
            graph, _plan(A="CPU0", B="CPU0", C="CPU0", D="CPU0"), cycles_per_unit=50
        )
        assert after.makespan_cycles > before.makespan_cycles
        expected = estimate_allocation(
            graph, _plan(A="CPU0", B="CPU0", C="CPU0", D="CPU0"), cycles_per_unit=50
        )
        assert after == expected

    def test_distinct_cycles_per_unit_cached_independently(self):
        graph = _graph()
        plan = _plan(A="CPU0", B="CPU0", C="CPU0")
        fast = estimate_allocation(graph, plan, cycles_per_unit=10)
        slow = estimate_allocation(graph, plan, cycles_per_unit=100)
        assert slow.makespan_cycles > fast.makespan_cycles
        assert estimate_allocation(graph, plan, cycles_per_unit=10) == fast

    def test_cache_entry_evicted_when_graph_collected(self):
        import gc

        graph = _graph()
        _tables_for(graph)
        key = id(graph)
        assert key in _TABLE_CACHE
        del graph
        gc.collect()
        assert key not in _TABLE_CACHE

    def test_hit_and_miss_counters(self):
        recorder = obs.Recorder()
        with obs.use(recorder):
            graph = _graph()
            plan = _plan(A="CPU0", B="CPU0", C="CPU0")
            estimate_allocation(graph, plan, cycles_per_unit=50)
            estimate_allocation(graph, plan, cycles_per_unit=50)
        metrics = recorder.metrics
        assert metrics.counter("dse.estimate.table_misses") == 1
        assert metrics.counter("dse.estimate.table_hits") == 1


class TestListScheduleWrapper:
    def test_wrapper_matches_estimate(self):
        # The compatibility wrapper recomputes super-node durations from
        # the caller's table and must agree with the cached fast path.
        from repro.dse.estimate import default_platform

        graph = _graph()
        plan = _plan(A="CPU0", B="CPU1", C="CPU0")
        platform = default_platform(plan.cpus)
        duration = {name: weight * 50 for name, weight in graph.node_weights.items()}
        delays = {}
        for (src, dst), bits in graph.edges.items():
            protocol = "SWFIFO" if plan.co_located(src, dst) else "GFIFO"
            delays[(src, dst)] = platform.channel_cost(protocol, int(bits))
        makespan = _list_schedule(graph, plan, duration, delays)
        estimate = estimate_allocation(graph, plan, cycles_per_unit=50)
        assert makespan == estimate.makespan_cycles
