"""Unit + property tests for design-space exploration (repro.dse.explore)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TaskGraph
from repro.dse import (
    ExplorationError,
    exhaustive_explore,
    explore,
    greedy_explore,
    pareto_front,
)
from repro.dse.explore import _set_partitions


def _two_chain_graph():
    graph = TaskGraph()
    graph.add_edge("A", "B", 320)
    graph.add_edge("C", "D", 320)
    return graph


class TestSetPartitions:
    def test_bell_numbers(self):
        assert len(list(_set_partitions(["a"]))) == 1
        assert len(list(_set_partitions(["a", "b"]))) == 2
        assert len(list(_set_partitions(["a", "b", "c"]))) == 5
        assert len(list(_set_partitions(list("abcd")))) == 15

    def test_each_partition_covers_all(self):
        for partition in _set_partitions(list("abc")):
            flat = sorted(x for group in partition for x in group)
            assert flat == ["a", "b", "c"]

    def test_empty(self):
        assert list(_set_partitions([])) == [[]]


class TestExhaustive:
    def test_best_first_ordering(self):
        candidates = exhaustive_explore(_two_chain_graph())
        makespans = [c.makespan for c in candidates]
        assert makespans == sorted(makespans)

    def test_parallel_chains_best_on_two_cpus(self):
        best = exhaustive_explore(_two_chain_graph())[0]
        assert best.cpu_count == 2
        assert best.plan.co_located("A", "B")
        assert best.plan.co_located("C", "D")
        assert not best.plan.co_located("A", "C")

    def test_max_cpus_respected(self):
        candidates = exhaustive_explore(_two_chain_graph(), max_cpus=1)
        assert all(c.cpu_count == 1 for c in candidates)

    def test_large_graph_rejected(self):
        graph = TaskGraph()
        for i in range(12):
            graph.add_node(f"T{i}")
        with pytest.raises(ExplorationError):
            exhaustive_explore(graph)


class TestGreedy:
    def test_seeded_with_linear_clustering(self):
        from repro.apps.synthetic import task_graph

        candidates = greedy_explore(task_graph())
        assert candidates  # at least the seed
        best = candidates[0]
        # The critical path must remain co-located in the best solution.
        for a, b in zip("ABCDF", "BCDFJ"):
            assert best.plan.co_located(a, b)

    def test_improves_or_equals_seed(self):
        from repro.apps.synthetic import task_graph
        from repro.core import allocate_threads
        from repro.dse import estimate_allocation

        graph = task_graph()
        seed_estimate = estimate_allocation(
            graph, allocate_threads(graph).plan
        )
        best = greedy_explore(graph)[0]
        assert best.makespan <= seed_estimate.makespan_cycles

    def test_max_cpus_budget(self):
        from repro.apps.synthetic import task_graph

        candidates = greedy_explore(task_graph(), max_cpus=2)
        assert all(c.cpu_count <= 2 for c in candidates)


class TestPareto:
    def test_front_has_no_dominated_points(self):
        candidates = exhaustive_explore(_two_chain_graph())
        front = pareto_front(candidates)
        for a in front:
            for b in front:
                assert not a.estimate.dominates(b.estimate) or a is b

    def test_front_sorted_by_cpu_count(self):
        front = pareto_front(exhaustive_explore(_two_chain_graph()))
        counts = [c.cpu_count for c in front]
        assert counts == sorted(counts)

    def test_front_covers_extremes(self):
        candidates = exhaustive_explore(_two_chain_graph())
        front = pareto_front(candidates)
        best_makespan = min(c.makespan for c in candidates)
        assert any(c.makespan == best_makespan for c in front)
        assert any(c.cpu_count == 1 for c in front)


class TestFrontDoor:
    def test_small_graph_goes_exhaustive(self):
        candidates = explore(_two_chain_graph())
        # Exhaustive of 4 nodes = bell(4) = 15 partitions.
        assert len(candidates) == 15

    def test_large_graph_goes_greedy(self):
        from repro.apps.synthetic import task_graph

        candidates = explore(task_graph())
        assert len(candidates) < 100  # visited optima only


_node_pool = [f"N{i}" for i in range(6)]


@st.composite
def _random_small_dags(draw):
    graph = TaskGraph()
    count = draw(st.integers(min_value=2, max_value=6))
    names = _node_pool[:count]
    for name in names:
        graph.add_node(name, draw(st.integers(1, 3)))
    for i in range(count):
        for j in range(i + 1, count):
            if draw(st.booleans()):
                graph.add_edge(names[i], names[j], draw(st.integers(1, 10)) * 32)
    return graph


class TestExplorationProperties:
    @given(_random_small_dags())
    @settings(max_examples=25, deadline=None)
    def test_greedy_never_beats_exhaustive(self, graph):
        """The exhaustive optimum lower-bounds every heuristic."""
        best_exhaustive = exhaustive_explore(graph)[0]
        best_greedy = greedy_explore(graph)[0]
        assert best_exhaustive.makespan <= best_greedy.makespan

    @given(_random_small_dags())
    @settings(max_examples=25, deadline=None)
    def test_every_candidate_is_a_full_partition(self, graph):
        for candidate in exhaustive_explore(graph):
            assert sorted(candidate.plan.threads) == sorted(graph.nodes)


class TestThroughputObjective:
    def _pipeline_graph(self):
        from repro.core import TaskGraph

        graph = TaskGraph()
        for index in range(4):
            graph.add_node(f"S{index}", 2.0)
        for index in range(3):
            graph.add_edge(f"S{index}", f"S{index + 1}", 32)
        return graph

    def test_throughput_objective_spreads_pipeline(self):
        """A serial pipeline collapses to 1 CPU under the latency
        objective but spreads across CPUs under throughput."""
        graph = self._pipeline_graph()
        latency_best = exhaustive_explore(graph, objective="latency")[0]
        throughput_best = exhaustive_explore(graph, objective="throughput")[0]
        assert latency_best.cpu_count == 1
        assert throughput_best.cpu_count > 1
        assert throughput_best.interval < latency_best.interval

    def test_metric_property_follows_objective(self):
        graph = self._pipeline_graph()
        candidate = exhaustive_explore(graph, objective="throughput")[0]
        assert candidate.metric == candidate.interval

    def test_unknown_objective_rejected(self):
        from repro.dse import EstimationError, estimate_allocation
        from repro.uml import DeploymentPlan

        graph = self._pipeline_graph()
        plan = DeploymentPlan.from_mapping(
            {n: "CPU0" for n in graph.nodes}
        )
        estimate = estimate_allocation(graph, plan)
        with pytest.raises(EstimationError):
            estimate.metric("power")

    def test_pareto_front_per_objective(self):
        graph = self._pipeline_graph()
        candidates = exhaustive_explore(graph, objective="throughput")
        front = pareto_front(candidates, objective="throughput")
        intervals = [c.interval for c in front]
        # More CPUs on the front must strictly improve the interval.
        assert intervals == sorted(intervals, reverse=True)
