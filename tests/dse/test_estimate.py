"""Unit tests for allocation-cost estimation (repro.dse.estimate)."""

import pytest

from repro.core import TaskGraph
from repro.dse import CostEstimate, EstimationError, estimate_allocation
from repro.uml import DeploymentPlan


def _graph():
    graph = TaskGraph()
    graph.add_node("A", 1)
    graph.add_node("B", 1)
    graph.add_edge("A", "B", 32)
    return graph


def _plan(**mapping):
    return DeploymentPlan.from_mapping(mapping)


class TestEstimate:
    def test_single_cpu_serializes(self):
        estimate = estimate_allocation(
            _graph(), _plan(A="CPU0", B="CPU0"), cycles_per_unit=50
        )
        # A then B on one CPU: 50 + 1 (SWFIFO word) + 50.
        assert estimate.makespan_cycles == 101
        assert estimate.cpu_count == 1
        assert estimate.intra_cpu_cycles == 1
        assert estimate.inter_cpu_cycles == 0

    def test_two_cpus_pay_bus_latency(self):
        estimate = estimate_allocation(
            _graph(), _plan(A="CPU0", B="CPU1"), cycles_per_unit=50
        )
        # A finishes at 50, GFIFO costs 20+10, B runs 50 -> 130.
        assert estimate.makespan_cycles == 130
        assert estimate.inter_cpu_cycles == 30
        assert estimate.cpu_count == 2

    def test_parallel_threads_overlap(self):
        graph = TaskGraph()
        graph.add_node("A", 1)
        graph.add_node("B", 1)
        estimate = estimate_allocation(
            graph, _plan(A="CPU0", B="CPU1"), cycles_per_unit=50
        )
        assert estimate.makespan_cycles == 50
        same = estimate_allocation(
            graph, _plan(A="CPU0", B="CPU0"), cycles_per_unit=50
        )
        assert same.makespan_cycles == 100

    def test_missing_thread_rejected(self):
        with pytest.raises(EstimationError):
            estimate_allocation(_graph(), _plan(A="CPU0"))

    def test_cyclic_graph_condensed(self):
        graph = TaskGraph()
        graph.add_node("A", 1)
        graph.add_node("B", 1)
        graph.add_edge("A", "B", 32)
        graph.add_edge("B", "A", 32)
        estimate = estimate_allocation(
            graph, _plan(A="CPU0", B="CPU0"), cycles_per_unit=50
        )
        assert estimate.makespan_cycles == 100

    def test_dominates(self):
        fast_small = CostEstimate(100, 0, 0, 0, 1)
        slow_small = CostEstimate(200, 0, 0, 0, 1)
        fast_big = CostEstimate(100, 0, 0, 0, 2)
        assert fast_small.dominates(slow_small)
        assert fast_small.dominates(fast_big)
        assert not fast_big.dominates(fast_small)
        assert not fast_small.dominates(fast_small)

    def test_agrees_with_full_caam_schedule_ordering(self):
        """The estimator must rank allocations like the full CAAM schedule
        (on the paper's synthetic example)."""
        from repro.apps import synthetic
        from repro.core import plan_from_clusters, round_robin_clusters, synthesize
        from repro.mpsoc import platform_for_caam, schedule_caam

        graph = synthetic.task_graph()
        model = synthetic.build_model()
        clustered = synthesize(model, auto_allocate=True)
        rr_plan = plan_from_clusters(round_robin_clusters(graph, 4))
        scattered = synthesize(model, rr_plan)

        est_lc = estimate_allocation(graph, clustered.plan)
        est_rr = estimate_allocation(graph, rr_plan)
        full_lc = schedule_caam(
            clustered.caam, platform_for_caam(clustered.caam)
        ).makespan
        full_rr = schedule_caam(
            scattered.caam, platform_for_caam(scattered.caam)
        ).makespan
        assert (est_lc.makespan_cycles <= est_rr.makespan_cycles) == (
            full_lc <= full_rr
        )
