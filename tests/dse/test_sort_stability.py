"""Regression tests: explorer rankings never depend on the wall clock.

Earlier revisions ranked tied candidates by enumeration/evaluation order,
which made the result sensitive to timing and to parallel batch
boundaries.  The fix (``candidate_sort_key``) breaks ties by
``(metric, cpu_count, plan_signature)`` — pure candidate content.  These
tests pin that down by feeding the explorer a *poisoned clock* and by
checking tie ordering on a deliberately symmetric graph.
"""

import itertools
import time

from repro.core.taskgraph import TaskGraph
from repro.dse.explore import (
    candidate_sort_key,
    exhaustive_explore,
    greedy_explore,
    pareto_front,
    plan_signature,
)


def symmetric_graph(threads=4):
    """Identical weights, no edges: every k-way split of a size is a tie."""
    graph = TaskGraph()
    for i in range(threads):
        graph.add_node(f"T{i}", 2.0)
    return graph


def chain_graph(threads=5):
    graph = TaskGraph()
    names = [f"T{i}" for i in range(threads)]
    for name in names:
        graph.add_node(name, 3.0)
    for src, dst in zip(names, names[1:]):
        graph.add_edge(src, dst, 64.0)
    return graph


class PoisonedClock:
    """A perf_counter stand-in returning erratic, non-monotonic values."""

    def __init__(self):
        self._values = itertools.cycle([1e9, 0.0, 42.0, -7.5])

    def __call__(self):
        return next(self._values)


class TestClockIndependence:
    def test_exhaustive_ranking_survives_poisoned_clock(self, monkeypatch):
        graph = chain_graph()
        baseline = [
            candidate_sort_key(c) for c in exhaustive_explore(graph)
        ]
        # explore.py reads the clock through the time module, so patching
        # it here poisons every timer read the explorer makes.
        monkeypatch.setattr(time, "perf_counter", PoisonedClock())
        poisoned = [
            candidate_sort_key(c) for c in exhaustive_explore(graph)
        ]
        assert poisoned == baseline

    def test_greedy_ranking_survives_poisoned_clock(self, monkeypatch):
        graph = chain_graph()
        baseline = [candidate_sort_key(c) for c in greedy_explore(graph)]
        monkeypatch.setattr(time, "perf_counter", PoisonedClock())
        poisoned = [candidate_sort_key(c) for c in greedy_explore(graph)]
        assert poisoned == baseline


class TestContentTieBreaking:
    def test_tied_candidates_order_by_plan_signature(self):
        # Symmetric graph: many candidates share (metric, cpu_count);
        # within each tie group the order must follow plan content.
        candidates = exhaustive_explore(symmetric_graph())
        for _, group in itertools.groupby(
            candidates, key=lambda c: (c.metric, c.cpu_count)
        ):
            signatures = [plan_signature(c.plan) for c in group]
            assert signatures == sorted(signatures)

    def test_sort_key_ignores_candidate_identity(self):
        candidates = exhaustive_explore(symmetric_graph(3))
        keys = [candidate_sort_key(c) for c in candidates]
        assert keys == sorted(keys)
        # Re-running yields the exact same key sequence.
        rerun = [
            candidate_sort_key(c)
            for c in exhaustive_explore(symmetric_graph(3))
        ]
        assert rerun == keys

    def test_pareto_front_is_deterministic_under_ties(self):
        candidates = exhaustive_explore(symmetric_graph())
        front_a = pareto_front(candidates)
        front_b = pareto_front(list(reversed(candidates)))
        assert [plan_signature(c.plan) for c in front_a] == [
            plan_signature(c.plan) for c in front_b
        ]

    def test_plan_signature_is_naming_independent(self):
        from repro.uml.deployment import DeploymentPlan

        a = DeploymentPlan.from_mapping(
            {"T1": "CPU0", "T2": "CPU0", "T3": "CPU1"}
        )
        b = DeploymentPlan.from_mapping(
            {"T3": "CPUx", "T2": "CPUy", "T1": "CPUy"}
        )
        assert plan_signature(a) == plan_signature(b)
