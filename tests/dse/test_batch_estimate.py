"""The vectorized batch estimator vs the scalar loop, bit for bit.

``estimate_allocations`` replays ``estimate_allocation``'s exact IEEE op
order across a plans axis; these tests pin that equivalence (struct-packed
float comparison, not approximate), the explorer wiring that uses it, and
the ``REPRO_DSE_BATCH`` kill switch.
"""

import random
import struct

import pytest

from repro.core.taskgraph import TaskGraph
from repro.dse.estimate import (
    EstimationError,
    estimate_allocation,
    estimate_allocations,
)
from repro.dse.explore import (
    DSE_BATCH_MIN,
    exhaustive_explore,
    greedy_explore,
)
from repro.uml.deployment import DeploymentPlan

pytest.importorskip("numpy")

FIELDS = (
    "makespan_cycles",
    "computation_cycles",
    "inter_cpu_cycles",
    "intra_cpu_cycles",
    "interval_cycles",
)


def _bits(value):
    return struct.pack("<d", value)


def assert_estimates_identical(got, want):
    for field in FIELDS:
        assert _bits(getattr(got, field)) == _bits(getattr(want, field)), field
    assert got.cpu_count == want.cpu_count


def _random_graph(rng, cyclic=False):
    graph = TaskGraph()
    names = [f"t{i}" for i in range(rng.randint(2, 9))]
    for name in names:
        graph.add_node(name, rng.choice([0.5, 1.0, 2.0, 3.25, 7.5]))
    for _ in range(rng.randint(0, 14)):
        a, b = rng.sample(names, 2)
        if not cyclic and names.index(a) > names.index(b):
            a, b = b, a
        if (a, b) not in graph.edges:
            graph.add_edge(a, b, rng.choice([8, 32, 64, 96, 128]))
    return graph, names


def _random_plans(rng, names, count):
    plans = []
    for _ in range(count):
        plan = DeploymentPlan()
        cpus = rng.randint(1, len(names))
        for name in names:
            plan.assign(name, f"cpu{rng.randrange(cpus)}")
        plans.append(plan)
    return plans


def _candidate_key(candidate):
    return (
        tuple(_bits(getattr(candidate.estimate, field)) for field in FIELDS),
        candidate.estimate.cpu_count,
        candidate.objective,
        tuple(sorted(candidate.plan.as_mapping().items())),
        tuple(candidate.plan.cpus),
    )


class TestBatchedEstimates:
    def test_random_graphs_bit_identical_to_loop(self):
        rng = random.Random(7)
        for trial in range(30):
            graph, names = _random_graph(rng, cyclic=(trial % 3 == 0))
            plans = _random_plans(rng, names, rng.randint(2, 25))
            unit = rng.choice([50.0, 1.0, 13.7])
            batched = estimate_allocations(
                graph, plans, cycles_per_unit=unit
            )
            for estimate, plan in zip(batched, plans):
                assert_estimates_identical(
                    estimate,
                    estimate_allocation(graph, plan, cycles_per_unit=unit),
                )

    def test_empty_plan_list(self):
        graph, _ = _random_graph(random.Random(1))
        assert estimate_allocations(graph, []) == []

    def test_single_plan_matches_scalar(self):
        rng = random.Random(2)
        graph, names = _random_graph(rng)
        (plan,) = _random_plans(rng, names, 1)
        (batched,) = estimate_allocations(graph, [plan])
        assert_estimates_identical(batched, estimate_allocation(graph, plan))

    def test_partial_plan_rejected(self):
        rng = random.Random(3)
        graph, names = _random_graph(rng)
        (good,) = _random_plans(rng, names, 1)
        partial = DeploymentPlan()
        partial.assign(names[0], "cpu0")
        with pytest.raises(EstimationError, match="has no CPU"):
            estimate_allocations(graph, [good, partial])


class TestExplorerWiring:
    def _graph(self):
        graph, _ = _random_graph(random.Random(11))
        return graph

    def test_exhaustive_identical_with_batching_disabled(self, monkeypatch):
        graph = self._graph()
        batched = exhaustive_explore(graph)
        monkeypatch.setenv("REPRO_DSE_BATCH", "0")
        looped = exhaustive_explore(graph)
        assert len(batched) >= DSE_BATCH_MIN  # the batch path engaged
        assert list(map(_candidate_key, batched)) == list(
            map(_candidate_key, looped)
        )

    def test_greedy_identical_with_batching_disabled(self, monkeypatch):
        graph = self._graph()
        batched = greedy_explore(graph)
        monkeypatch.setenv("REPRO_DSE_BATCH", "0")
        looped = greedy_explore(graph)
        assert list(map(_candidate_key, batched)) == list(
            map(_candidate_key, looped)
        )

    def test_throughput_objective_identical(self, monkeypatch):
        graph = self._graph()
        batched = exhaustive_explore(graph, objective="throughput")
        monkeypatch.setenv("REPRO_DSE_BATCH", "0")
        looped = exhaustive_explore(graph, objective="throughput")
        assert list(map(_candidate_key, batched)) == list(
            map(_candidate_key, looped)
        )

    def test_candidate_counter_totals_unchanged(self):
        from repro import obs

        graph = self._graph()
        recorder = obs.Recorder()
        with obs.use(recorder):
            candidates = exhaustive_explore(graph)
        metrics = recorder.metrics
        assert metrics.counter("dse.candidates") == len(candidates)
        timer = metrics.to_dict()["timers"]["dse.evaluate"]
        assert timer["count"] == len(candidates)
