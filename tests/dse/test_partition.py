"""Unit tests for automatic thread partitioning (repro.dse.partition)."""

import pytest

from repro.core import synthesize
from repro.dse import PartitionError, partition_thread
from repro.simulink import run_model
from repro.uml import ModelBuilder


def _monolithic_model(ops: int = 4):
    b = ModelBuilder("mono")
    b.thread("T")
    b.io_device("Dev")
    sd = b.interaction("main")
    sd.call("T", "Dev", "getIn", result="v0")
    for index in range(ops):
        sd.call("T", "T", f"f{index}", args=[f"v{index}"], result=f"v{index + 1}")
    sd.call("T", "Dev", "setOut", args=[f"v{ops}"])
    return b.build()


class TestPartitioning:
    def test_new_threads_created(self):
        model = partition_thread(_monolithic_model(), "T", 2)
        threads = {
            i.name
            for i in model.all_instances()
            if i.has_stereotype("SASchedRes")
        }
        assert {"T_p0", "T_p1"} <= threads

    def test_original_interaction_replaced(self):
        model = partition_thread(_monolithic_model(), "T", 2)
        names = [i.name for i in model.interactions]
        assert "main" not in names
        assert "main_partitioned" in names

    def test_handoff_messages_inserted(self):
        model = partition_thread(_monolithic_model(), "T", 2)
        interaction = model.interaction("main_partitioned")
        sends = [m for m in interaction.messages() if m.is_send and m.is_inter_thread]
        assert len(sends) == 1
        assert sends[0].sender.name == "T_p0"
        assert sends[0].receiver.name == "T_p1"

    def test_original_model_untouched(self):
        original = _monolithic_model()
        before = [i.name for i in original.interactions]
        partition_thread(original, "T", 3)
        assert [i.name for i in original.interactions] == before

    def test_balanced_segment_sizes(self):
        model = partition_thread(_monolithic_model(ops=5), "T", 3)
        interaction = model.interaction("main_partitioned")
        counts = {}
        for message in interaction.messages():
            if not (message.is_send and message.is_inter_thread):
                counts[message.sender.name] = counts.get(message.sender.name, 0) + 1
        sizes = sorted(counts.values())
        assert max(sizes) - min(sizes) <= 1

    def test_partitioned_model_synthesizes_and_runs(self):
        model = partition_thread(_monolithic_model(ops=3), "T", 3)
        behaviors = {f"f{i}": (lambda v, inc=i: v + inc + 1) for i in range(3)}
        result = synthesize(model, auto_allocate=True, behaviors=behaviors)
        assert result.warnings == []
        trace = run_model(result.caam, 2, inputs={"In1": [10.0, 20.0]})
        # f0 adds 1, f1 adds 2, f2 adds 3 -> +6 overall.
        assert trace.output("Out1") == [16.0, 26.0]

    def test_numeric_equivalence_with_monolith(self):
        behaviors = {f"f{i}": (lambda v, k=i: 2.0 * v - k) for i in range(4)}
        mono = synthesize(
            _monolithic_model(), auto_allocate=True, behaviors=behaviors
        )
        split = synthesize(
            partition_thread(_monolithic_model(), "T", 2),
            auto_allocate=True,
            behaviors=behaviors,
        )
        stim = {"In1": [1.0, 2.0, 3.0]}
        assert (
            run_model(mono.caam, 3, inputs=stim).output("Out1")
            == run_model(split.caam, 3, inputs=stim).output("Out1")
        )


class TestErrors:
    def test_bad_count(self):
        with pytest.raises(PartitionError):
            partition_thread(_monolithic_model(), "T", 0)

    def test_more_parts_than_operations(self):
        with pytest.raises(PartitionError, match="cannot split"):
            partition_thread(_monolithic_model(ops=1), "T", 9)

    def test_multi_sender_interaction_rejected(self):
        b = ModelBuilder("multi")
        b.thread("T")
        b.thread("U")
        sd = b.interaction("main")
        sd.call("T", "T", "f")
        sd.call("U", "U", "g")
        with pytest.raises(PartitionError, match="other senders"):
            partition_thread(b.build(), "T", 1, interaction_name="main")

    def test_ambiguous_interaction_needs_name(self):
        b = ModelBuilder("two")
        b.thread("T")
        sd1 = b.interaction("one")
        sd1.call("T", "T", "f")
        sd2 = b.interaction("two")
        sd2.call("T", "T", "g")
        with pytest.raises(PartitionError, match="appears in 2"):
            partition_thread(b.build(), "T", 1)
