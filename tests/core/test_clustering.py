"""Unit + property tests for linear clustering (repro.core.clustering)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    TaskGraph,
    TaskGraphError,
    critical_path,
    inter_cluster_communication,
    linear_clustering,
    random_clusters,
    round_robin_clusters,
)


def _chain(*weights):
    graph = TaskGraph()
    for index, weight in enumerate(weights):
        graph.add_edge(f"n{index}", f"n{index + 1}", weight)
    return graph


class TestCriticalPath:
    def test_simple_chain(self):
        graph = _chain(5, 5)
        path, length = critical_path(graph)
        assert path == ["n0", "n1", "n2"]
        assert length == 3 * 1.0 + 10  # three unit nodes + edges

    def test_branching_picks_heavier(self):
        graph = TaskGraph()
        graph.add_edge("A", "B", 10)
        graph.add_edge("A", "C", 2)
        path, _ = critical_path(graph)
        assert path == ["A", "B"]

    def test_allowed_restricts_search(self):
        graph = TaskGraph()
        graph.add_edge("A", "B", 10)
        graph.add_edge("C", "D", 5)
        path, _ = critical_path(graph, allowed={"C", "D"})
        assert path == ["C", "D"]

    def test_node_weights_count(self):
        graph = TaskGraph()
        graph.add_node("heavy", 100)
        graph.add_edge("A", "B", 10)
        path, _ = critical_path(graph)
        assert path == ["heavy"]

    def test_cyclic_graph_rejected(self):
        graph = TaskGraph()
        graph.add_edge("A", "B", 1)
        graph.add_edge("B", "A", 1)
        with pytest.raises(TaskGraphError):
            critical_path(graph)

    def test_empty_graph(self):
        path, length = critical_path(TaskGraph())
        assert path == [] and length == 0.0


class TestLinearClustering:
    def test_chain_collapses_to_one_cluster(self):
        result = linear_clustering(_chain(5, 5, 5))
        assert len(result.clusters) == 1
        assert set(result.clusters[0]) == {"n0", "n1", "n2", "n3"}

    def test_parallel_branches_separated(self):
        graph = TaskGraph()
        graph.add_edge("A", "B", 10)
        graph.add_edge("C", "D", 9)
        result = linear_clustering(graph)
        assert result.as_sets() == [
            frozenset({"A", "B"}),
            frozenset({"C", "D"}),
        ]

    def test_critical_path_recorded(self):
        graph = TaskGraph()
        graph.add_edge("A", "B", 10)
        graph.add_edge("C", "D", 1)
        result = linear_clustering(graph)
        assert result.critical_path == ["A", "B"]

    def test_cyclic_threads_co_clustered(self):
        graph = TaskGraph()
        graph.add_edge("A", "B", 1)
        graph.add_edge("B", "A", 1)
        graph.add_edge("X", "Y", 5)
        result = linear_clustering(graph)
        cluster_of_a = result.cluster_of("A")
        assert result.cluster_of("B") == cluster_of_a

    def test_isolated_nodes_get_own_clusters(self):
        graph = TaskGraph()
        graph.add_node("lonely1")
        graph.add_node("lonely2")
        result = linear_clustering(graph)
        assert len(result.clusters) == 2

    def test_cluster_of_unknown_raises(self):
        result = linear_clustering(_chain(1))
        with pytest.raises(TaskGraphError):
            result.cluster_of("ghost")

    def test_paper_synthetic_example(self):
        """Fig. 7: the 12-thread graph clusters exactly as published."""
        from repro.apps.synthetic import EXPECTED_CLUSTERS, task_graph

        result = linear_clustering(task_graph())
        assert set(result.as_sets()) == set(EXPECTED_CLUSTERS)
        assert result.critical_path == ["A", "B", "C", "D", "F", "J"]


class TestInterClusterCommunication:
    def test_counts_crossing_edges_only(self):
        graph = TaskGraph()
        graph.add_edge("A", "B", 10)
        graph.add_edge("B", "C", 5)
        assert inter_cluster_communication(graph, [["A", "B"], ["C"]]) == 5
        assert inter_cluster_communication(graph, [["A", "B", "C"]]) == 0

    def test_duplicate_membership_rejected(self):
        graph = TaskGraph()
        graph.add_edge("A", "B", 1)
        with pytest.raises(TaskGraphError):
            inter_cluster_communication(graph, [["A"], ["A", "B"]])


class TestBaselines:
    def test_round_robin_partitions_everything(self):
        graph = _chain(1, 1, 1)
        clusters = round_robin_clusters(graph, 2)
        flattened = sorted(t for c in clusters for t in c)
        assert flattened == sorted(graph.nodes)

    def test_random_is_seeded(self):
        graph = _chain(1, 1, 1)
        assert random_clusters(graph, 2, seed=7) == random_clusters(
            graph, 2, seed=7
        )

    def test_bad_count_rejected(self):
        graph = _chain(1)
        with pytest.raises(TaskGraphError):
            round_robin_clusters(graph, 0)
        with pytest.raises(TaskGraphError):
            random_clusters(graph, 0)


_node_names = [f"t{i}" for i in range(8)]


@st.composite
def _random_dags(draw):
    graph = TaskGraph()
    count = draw(st.integers(min_value=2, max_value=8))
    names = _node_names[:count]
    for name in names:
        graph.add_node(name, draw(st.integers(1, 5)))
    # Edges only forward in index order => acyclic.
    for i in range(count):
        for j in range(i + 1, count):
            if draw(st.booleans()):
                graph.add_edge(names[i], names[j], draw(st.integers(1, 20)))
    return graph


class TestClusteringProperties:
    @given(_random_dags())
    @settings(max_examples=60, deadline=None)
    def test_clusters_partition_the_nodes(self, graph):
        result = linear_clustering(graph)
        flattened = sorted(t for c in result.clusters for t in c)
        assert flattened == sorted(graph.nodes)

    @given(_random_dags())
    @settings(max_examples=60, deadline=None)
    def test_critical_path_stays_in_one_cluster(self, graph):
        """The paper's §4.2.3 observation: 'this algorithm allocates all
        threads that are in the system critical path to the same
        processor'."""
        result = linear_clustering(graph)
        if not result.critical_path:
            return
        clusters = {result.cluster_of(t) for t in result.critical_path}
        assert len(clusters) == 1

    @given(_random_dags())
    @settings(max_examples=40, deadline=None)
    def test_never_worse_than_no_clustering(self, graph):
        """Inter-cluster traffic is at most the total traffic (sanity) and
        zero when everything landed in one cluster."""
        result = linear_clustering(graph)
        crossing = inter_cluster_communication(graph, result.clusters)
        assert 0 <= crossing <= graph.total_communication()
        if len(result.clusters) == 1:
            assert crossing == 0
