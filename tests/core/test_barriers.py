"""Unit tests for temporal-barrier insertion §4.2.2 (repro.core.barriers)."""

import pytest

from repro.core import insert_temporal_barriers
from repro.simulink import (
    Block,
    SimulinkModel,
    SubSystem,
    find_cycles,
    is_executable,
    run_model,
)


def _looped_model():
    model = SimulinkModel("m")
    a = model.root.add(Block("a", "Gain", parameters={"Gain": 0.5}))
    b = model.root.add(Block("b", "Gain", parameters={"Gain": 1.0}))
    model.root.connect(a.output(), b.input())
    model.root.connect(b.output(), a.input())
    return model


class TestInsertion:
    def test_single_cycle_broken_with_one_delay(self):
        model = _looped_model()
        report = insert_temporal_barriers(model)
        assert report.count == 1
        assert find_cycles(model) == []
        assert is_executable(model)[0]
        assert model.count_blocks("UnitDelay") == 1

    def test_clean_model_untouched(self):
        model = SimulinkModel("m")
        a = model.root.add(Block("a", "Constant", inputs=0))
        b = model.root.add(Block("b", "Gain"))
        model.root.connect(a.output(), b.input())
        report = insert_temporal_barriers(model)
        assert report.count == 0
        assert report.cycles_found == 0

    def test_inserted_delay_marked_auto(self):
        model = _looped_model()
        insert_temporal_barriers(model)
        delay = model.blocks_of_type("UnitDelay")[0]
        assert delay.parameters["AutoInserted"] is True

    def test_initial_condition_parameter(self):
        model = _looped_model()
        insert_temporal_barriers(model, initial_condition=2.5)
        delay = model.blocks_of_type("UnitDelay")[0]
        assert delay.parameters["InitialCondition"] == 2.5

    def test_self_loop_broken(self):
        model = SimulinkModel("m")
        a = model.root.add(Block("a", "Gain"))
        model.root.connect(a.output(), a.input())
        report = insert_temporal_barriers(model)
        assert report.count == 1
        assert is_executable(model)[0]

    def test_two_independent_cycles(self):
        model = SimulinkModel("m")
        for prefix in ("x", "y"):
            a = model.root.add(Block(f"{prefix}a", "Gain"))
            b = model.root.add(Block(f"{prefix}b", "Gain"))
            model.root.connect(a.output(), b.input())
            model.root.connect(b.output(), a.input())
        report = insert_temporal_barriers(model)
        assert report.count == 2
        assert is_executable(model)[0]

    def test_nested_cycles_converge(self):
        # a -> b -> a  and  a -> b -> c -> a share edges.
        model = SimulinkModel("m")
        a = model.root.add(Block("a", "Gain"))
        b = model.root.add(Block("b", "Gain"))
        c = model.root.add(Block("c", "Gain"))
        s = model.root.add(Block("s", "Sum", inputs=2, parameters={"Inputs": "++"}))
        model.root.connect(a.output(), b.input())
        model.root.connect(b.output(), c.input())
        model.root.connect(c.output(), s.input(1))
        model.root.connect(b.output(), s.input(2))
        model.root.connect(s.output(), a.input())
        report = insert_temporal_barriers(model)
        assert is_executable(model)[0]
        assert report.count >= 1

    def test_branched_line_keeps_other_destinations(self):
        model = SimulinkModel("m")
        a = model.root.add(Block("a", "Gain"))
        b = model.root.add(Block("b", "Gain"))
        watcher = model.root.add(Block("w", "Gain"))
        line = model.root.connect(a.output(), b.input(), watcher.input())
        model.root.connect(b.output(), a.input())
        insert_temporal_barriers(model)
        assert is_executable(model)[0]
        # the watcher is still driven by something
        assert model.root.driver_of(watcher.input()) is not None


class TestHierarchicalInsertion:
    def test_delay_lands_in_consumer_system(self):
        """The crane case: the cycle lives inside a Thread-SS — so must the
        inserted Delay (paper Fig. 5 shows it inside T3)."""
        model = SimulinkModel("m")
        sub = SubSystem("T3")
        model.root.add(sub)
        f = sub.system.add(Block("control", "Gain"))
        g = sub.system.add(Block("limiter", "Gain"))
        sub.system.connect(f.output(), g.input())
        sub.system.connect(g.output(), f.input())
        report = insert_temporal_barriers(model)
        assert report.count == 1
        assert report.inserted[0].system_name == "T3"
        assert sub.system.has_block("Delay")

    def test_cross_boundary_cycle_broken(self):
        model = SimulinkModel("m")
        sub = SubSystem("S")
        model.root.add(sub)
        sin = sub.add_inport("in")
        sout = sub.add_outport("out")
        g = sub.system.add(Block("g", "Gain"))
        sub.system.connect(sin.output(), g.input())
        sub.system.connect(g.output(), sout.input())
        back = model.root.add(Block("back", "Gain"))
        model.root.connect(sub.output(1), back.input())
        model.root.connect(back.output(), sub.input(1))
        report = insert_temporal_barriers(model)
        assert report.count == 1
        assert is_executable(model)[0]

    def test_delay_names_unique(self):
        model = SimulinkModel("m")
        # Pre-existing manual Delay block forces a fresh name.
        model.root.add(Block("Delay", "UnitDelay"))
        a = model.root.add(Block("a", "Gain"))
        model.root.connect(a.output(), a.input())
        insert_temporal_barriers(model)
        assert model.root.has_block("Delay2")


class TestBehaviourAfterInsertion:
    def test_feedback_computes_expected_series(self):
        # y[t] = 0.5 * y[t-1] + 1  via inserted delay
        model = SimulinkModel("m")
        c = model.root.add(Block("c", "Constant", inputs=0, parameters={"Value": 1.0}))
        s = model.root.add(Block("s", "Sum", inputs=2, parameters={"Inputs": "++"}))
        g = model.root.add(Block("g", "Gain", parameters={"Gain": 0.5}))
        o = model.root.add(
            Block("Out1", "Outport", inputs=1, outputs=0, parameters={"Port": 1})
        )
        model.root.connect(c.output(), s.input(1))
        model.root.connect(s.output(), g.input(), o.input())
        model.root.connect(g.output(), s.input(2))
        assert not is_executable(model)[0]
        insert_temporal_barriers(model)
        trace = run_model(model, 3)
        assert trace.output("Out1") == [1.0, 1.5, 1.75]

    def test_crane_delay_in_t3(self, crane_result):
        """Paper Fig. 5: exactly one automatically inserted Delay, inside
        thread T3."""
        barriers = crane_result.optimization.barriers
        assert barriers.count == 1
        assert barriers.inserted[0].delay_path == "crane/CPU1/T3/Delay"
