"""Unit tests for task-graph extraction (repro.core.taskgraph)."""

import pytest

from repro.core import TaskGraph, build_task_graph, producer_consumer, task_graph_from_model
from repro.uml import ModelBuilder


class TestTaskGraph:
    def test_add_edge_accumulates(self):
        graph = TaskGraph()
        graph.add_edge("A", "B", 10)
        graph.add_edge("A", "B", 5)
        assert graph.edge_weight("A", "B") == 15

    def test_self_edges_dropped(self):
        graph = TaskGraph()
        graph.add_edge("A", "A", 10)
        assert graph.edges == {}

    def test_successors_predecessors(self):
        graph = TaskGraph()
        graph.add_edge("A", "B", 1)
        graph.add_edge("A", "C", 1)
        assert set(graph.successors("A")) == {"B", "C"}
        assert graph.predecessors("B") == ["A"]

    def test_topological_order_of_dag(self):
        graph = TaskGraph()
        graph.add_edge("A", "B", 1)
        graph.add_edge("B", "C", 1)
        order = graph.topological_order()
        assert order.index("A") < order.index("B") < order.index("C")
        assert graph.is_dag()

    def test_cyclic_graph_has_no_topological_order(self):
        graph = TaskGraph()
        graph.add_edge("A", "B", 1)
        graph.add_edge("B", "A", 1)
        assert graph.topological_order() is None
        assert not graph.is_dag()

    def test_total_communication(self):
        graph = TaskGraph()
        graph.add_edge("A", "B", 3)
        graph.add_edge("B", "C", 4)
        assert graph.total_communication() == 7


class TestCondensation:
    def test_scc_merged(self):
        graph = TaskGraph()
        graph.add_edge("A", "B", 1)
        graph.add_edge("B", "A", 1)
        graph.add_edge("B", "C", 5)
        dag, member_of = graph.condensation()
        assert dag.is_dag()
        assert member_of["A"] == member_of["B"]
        assert member_of["C"] != member_of["A"]
        # inter-SCC edge survives with its weight
        assert dag.edge_weight(member_of["B"], member_of["C"]) == 5

    def test_node_weights_summed(self):
        graph = TaskGraph()
        graph.add_node("A", 2)
        graph.add_node("B", 3)
        graph.add_edge("A", "B", 1)
        graph.add_edge("B", "A", 1)
        dag, member_of = graph.condensation()
        assert dag.node_weights[member_of["A"]] == 5


class TestProducerConsumer:
    def _messages(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.thread("T2")
        b.instance("Obj")
        sd = b.interaction("main")
        get = sd.call("T1", "T2", "getValue", result="x")
        set_ = sd.call("T1", "T2", "setOther", args=["x"])
        local = sd.call("T1", "Obj", "calc", args=["x"])
        return get, set_, local

    def test_get_reverses_direction(self):
        get, _, _ = self._messages()
        assert producer_consumer(get) == ("T2", "T1")

    def test_set_keeps_direction(self):
        _, set_, _ = self._messages()
        assert producer_consumer(set_) == ("T1", "T2")

    def test_local_call_is_not_communication(self):
        _, _, local = self._messages()
        assert producer_consumer(local) is None


class TestExtraction:
    def test_edges_weighted_by_width_and_multiplicity(self):
        b = ModelBuilder("m")
        b.thread("A")
        b.thread("B")
        sd = b.interaction("main")
        loop = sd.loop(iterations=10)
        loop.call("A", "B", "setX", args=["v"])  # 32 bits * 10
        graph = build_task_graph(b.model.interactions)
        assert graph.edge_weight("A", "B") == 320

    def test_both_directions_accumulate_separately(self):
        b = ModelBuilder("m")
        b.thread("A")
        b.thread("B")
        sd = b.interaction("main")
        sd.call("A", "B", "setX", args=["v"])
        sd.call("A", "B", "getY", result="w")
        graph = build_task_graph(b.model.interactions)
        assert graph.edge_weight("A", "B") == 32
        assert graph.edge_weight("B", "A") == 32  # untyped get: one result

    def test_node_weight_counts_local_operations(self):
        b = ModelBuilder("m")
        b.thread("A")
        b.instance("Obj")
        sd = b.interaction("main")
        sd.call("A", "Obj", "f1", result="a")
        sd.call("A", "Obj", "f2", args=["a"])
        graph = build_task_graph(b.model.interactions)
        assert graph.node_weights["A"] == 2

    def test_threads_without_messages_still_nodes(self):
        b = ModelBuilder("m")
        b.thread("A")
        b.thread("B")
        sd = b.interaction("main")
        sd.call("A", "A", "noop")
        # B appears on no message but was declared in the interaction? No -
        # lifelines only exist if referenced, so B is absent.
        graph = build_task_graph(b.model.interactions)
        assert "B" not in graph.node_weights

    def test_from_model_wrapper(self, synthetic_model):
        graph = task_graph_from_model(synthetic_model)
        assert len(graph.nodes) == 12

    def test_synthetic_matches_figure(self, synthetic_model):
        from repro.apps.synthetic import EDGES

        graph = task_graph_from_model(synthetic_model)
        for producer, consumer, weight in EDGES:
            assert graph.edge_weight(producer, consumer) == weight * 32
