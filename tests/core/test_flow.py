"""Unit tests for the end-to-end synthesis flow (repro.core.flow)."""

import pytest

from repro.core import FlowError, resolve_plan, synthesize, synthesize_to_mdl
from repro.simulink import from_mdl, validate_caam
from repro.uml import DeploymentPlan, ModelBuilder, ValidationError


def _simple_model():
    b = ModelBuilder("simple")
    b.thread("T1")
    b.thread("T2")
    b.io_device("Dev")
    b.processor("CPU1", threads=["T1", "T2"])
    sd = b.interaction("main")
    sd.call("T1", "Dev", "getIn", result="x")
    sd.call("T1", "Platform", "gain", args=["x"], result="y")
    sd.call("T1", "T2", "setValue", args=["y"])
    sd.call("T2", "Dev", "setOut", args=["value"])
    return b.build()


class TestResolvePlan:
    def test_explicit_plan_wins(self):
        model = _simple_model()
        explicit = DeploymentPlan.from_mapping({"T1": "X", "T2": "X"})
        plan, allocation = resolve_plan(model, explicit)
        assert plan is explicit
        assert allocation is None

    def test_deployment_diagram_used_by_default(self):
        plan, allocation = resolve_plan(_simple_model())
        assert plan.as_mapping() == {"T1": "CPU1", "T2": "CPU1"}
        assert allocation is None

    def test_auto_allocate_ignores_diagram(self):
        plan, allocation = resolve_plan(_simple_model(), auto_allocate=True)
        assert allocation is not None
        assert set(plan.threads) == {"T1", "T2"}

    def test_no_deployment_no_threads_fails(self):
        b = ModelBuilder("empty")
        b.instance("Obj")
        sd = b.interaction("main")
        with pytest.raises(FlowError):
            resolve_plan(b.build())


class TestSynthesize:
    def test_full_pipeline_produces_valid_caam(self):
        result = synthesize(_simple_model())
        assert validate_caam(result.caam) == []
        assert result.summary.cpus == 1
        assert result.summary.threads == 2
        assert result.summary.intra_cpu_channels == 1

    def test_intermediate_xml_is_pre_optimization(self):
        result = synthesize(_simple_model())
        assert "CommChannel" not in result.intermediate_xml
        assert "caam:Model" in result.intermediate_xml

    def test_mdl_text_parses_back(self):
        result = synthesize(_simple_model())
        loaded = from_mdl(result.mdl_text)
        assert loaded.summary() == result.caam.summary()

    def test_write_mdl(self, tmp_path):
        path = tmp_path / "out.mdl"
        result = synthesize_to_mdl(_simple_model(), str(path))
        assert path.read_text() == result.mdl_text

    def test_write_mdl_rejects_mistyped_keyword(self, tmp_path):
        path = tmp_path / "out.mdl"
        with pytest.raises(TypeError, match="auto_alocate"):
            synthesize_to_mdl(_simple_model(), str(path), auto_alocate=True)
        # The error names the valid options, so the typo is self-correcting.
        with pytest.raises(TypeError, match="auto_allocate"):
            synthesize_to_mdl(_simple_model(), str(path), auto_alocate=True)
        assert not path.exists()

    def test_channels_pass_can_be_disabled(self):
        result = synthesize(_simple_model(), infer_channels=False)
        assert result.caam.channels() == []
        assert result.optimization.channels is None

    def test_barriers_pass_can_be_disabled(self, crane_model):
        from repro.simulink import is_executable

        result = synthesize(crane_model, insert_barriers=False)
        assert result.optimization.barriers is None
        assert not is_executable(result.caam)[0]

    def test_validation_rejects_broken_model(self):
        b = ModelBuilder("bad")
        b.passive_class("C").op("f")
        b.thread("T1")
        b.instance("Obj", "C")
        b.processor("CPU1", threads=["T1"])
        sd = b.interaction("main")
        sd.call("T1", "Obj", "no_such_op")
        with pytest.raises(ValidationError):
            synthesize(b.build())

    def test_validation_can_be_skipped(self):
        b = ModelBuilder("bad")
        b.passive_class("C").op("f")
        b.thread("T1")
        b.instance("Obj", "C")
        b.processor("CPU1", threads=["T1"])
        sd = b.interaction("main")
        sd.call("T1", "Obj", "no_such_op")
        result = synthesize(b.build(), validate=False)
        assert result.caam is not None

    def test_custom_name(self):
        result = synthesize(_simple_model(), name="renamed")
        assert result.caam.name == "renamed"
        assert 'Name "renamed"' in result.mdl_text

    def test_warnings_surface(self):
        b = ModelBuilder("w")
        b.thread("T1")
        b.instance("Obj")
        b.processor("CPU1", threads=["T1"])
        sd = b.interaction("main")
        sd.call("T1", "Obj", "f", args=["ghost"])
        result = synthesize(b.build())
        assert any("ghost" in w for w in result.warnings)

    def test_allocation_result_attached_when_auto(self):
        result = synthesize(_simple_model(), auto_allocate=True)
        assert result.allocation is not None
        assert result.allocation.plan.as_mapping() == result.plan.as_mapping()

    def test_barriers_counted_in_result(self, crane_result):
        assert crane_result.barriers_inserted == 1


class TestMappingReport:
    def test_report_lists_every_trace_link(self, didactic_result):
        report = didactic_result.mapping_report()
        assert "mapping report for 'didactic'" in report
        assert "thread2subsystem" in report
        assert "call2block" in report
        assert "trace links" in report

    def test_report_shows_message_sources(self, didactic_result):
        report = didactic_result.mapping_report()
        assert "T1->Platform.mult" in report
        assert "didactic/CPU1/T1/mult" in report
