"""Unit tests for the §4.1 mapping rules (repro.core.mapping)."""

import pytest

from repro.core import MappingError, map_model
from repro.simulink import GFIFO, SWFIFO
from repro.uml import DeploymentPlan, ModelBuilder


def _plan(**mapping):
    return DeploymentPlan.from_mapping(mapping)


def _single_thread_model():
    b = ModelBuilder("m")
    b.thread("T1")
    b.instance("Obj")
    sd = b.interaction("main")
    return b, sd


class TestStructureRules:
    def test_cpu_and_thread_subsystems_created(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.thread("T2")
        sd = b.interaction("main")
        sd.call("T1", "T1", "f")
        sd.call("T2", "T2", "g")
        result = map_model(b.build(), _plan(T1="CPU1", T2="CPU2"))
        assert [c.name for c in result.caam.cpus()] == ["CPU1", "CPU2"]
        assert result.caam.cpu_of_thread("T1").name == "CPU1"
        assert result.caam.cpu_of_thread("T2").name == "CPU2"

    def test_thread_subsystem_created_once_across_interactions(self):
        b = ModelBuilder("m")
        b.thread("T1")
        sd1 = b.interaction("a")
        sd1.call("T1", "T1", "f")
        sd2 = b.interaction("b")
        sd2.call("T1", "T1", "g")
        result = map_model(b.build(), _plan(T1="CPU1"))
        assert len(result.caam.threads()) == 1
        thread = result.caam.thread("T1")
        assert thread.system.has_block("f") and thread.system.has_block("g")

    def test_model_without_interactions_rejected(self):
        b = ModelBuilder("m")
        b.thread("T1")
        with pytest.raises(MappingError, match="no interactions"):
            map_model(b.build(), _plan(T1="CPU1"))

    def test_empty_cpu_still_materialized(self):
        b, sd = _single_thread_model()
        sd.call("T1", "T1", "f")
        plan = _plan(T1="CPU1")
        plan.add_cpu("CPU_SPARE")
        result = map_model(b.build(), plan)
        assert {c.name for c in result.caam.cpus()} == {"CPU1", "CPU_SPARE"}


class TestBlockRules:
    def test_passive_object_call_becomes_sfunction(self):
        b, sd = _single_thread_model()
        sd.call("T1", "Obj", "process", args=["x"], result="y")
        result = map_model(b.build(), _plan(T1="CPU1"))
        block = result.caam.thread("T1").system.block("process")
        assert block.block_type == "S-Function"
        assert block.parameters["FunctionName"] == "process"

    def test_platform_predefined_becomes_library_block(self):
        b, sd = _single_thread_model()
        sd.call("T1", "T1", "src", result="a")
        sd.call("T1", "T1", "src2", result="b")
        sd.call("T1", "Platform", "mult", args=["a", "b"], result="c")
        result = map_model(b.build(), _plan(T1="CPU1"))
        block = result.caam.thread("T1").system.block("mult")
        assert block.block_type == "Product"

    def test_platform_unknown_method_becomes_sfunction(self):
        """Paper: 'When the method name does not match the pre-defined
        component names, a user-defined Simulink block called S-function is
        instantiated.'"""
        b, sd = _single_thread_model()
        sd.call("T1", "Platform", "fancyDsp", args=[1.0], result="y")
        result = map_model(b.build(), _plan(T1="CPU1"))
        block = result.caam.thread("T1").system.block("fancyDsp")
        assert block.block_type == "S-Function"

    def test_sum_sign_string_stretched_to_arity(self):
        b, sd = _single_thread_model()
        sd.call("T1", "Platform", "add", args=[1.0, 2.0, 3.0], result="s")
        result = map_model(b.build(), _plan(T1="CPU1"))
        block = result.caam.thread("T1").system.block("add")
        assert block.parameters["Inputs"] == "+++"
        assert block.num_inputs == 3

    def test_repeated_operation_names_uniquified(self):
        b, sd = _single_thread_model()
        sd.call("T1", "Obj", "f", result="a")
        sd.call("T1", "Obj", "f", result="b")
        result = map_model(b.build(), _plan(T1="CPU1"))
        system = result.caam.thread("T1").system
        assert system.has_block("f") and system.has_block("f_2")

    def test_operation_body_carried_as_source(self):
        b = ModelBuilder("m")
        b.passive_class("C").op("f", inputs=["x:int"], returns="int").body(
            "return x * 2;", "c"
        )
        b.thread("T1")
        b.instance("Obj", "C")
        sd = b.interaction("main")
        sd.call("T1", "T1", "src", result="x")
        sd.call("T1", "Obj", "f", args=["x"], result="y")
        result = map_model(b.build(), _plan(T1="CPU1"))
        block = result.caam.thread("T1").system.block("f")
        assert block.parameters["Source"] == "return x * 2;"

    def test_behavior_callback_attached(self):
        b, sd = _single_thread_model()
        sd.call("T1", "Obj", "f", result="y")
        fn = lambda: 3.0  # noqa: E731
        result = map_model(b.build(), _plan(T1="CPU1"), behaviors={"f": fn})
        block = result.caam.thread("T1").system.block("f")
        assert block.parameters["callback"] is fn


class TestWiringRules:
    def test_parameter_directions_become_ports(self):
        """Paper: 'The direction of method parameters (in/out) and the
        return are translated to input and output ports.'"""
        b = ModelBuilder("m")
        b.passive_class("C").op(
            "f", inputs=["a:int", "b:int"], returns="int"
        )
        b.thread("T1")
        b.instance("Obj", "C")
        sd = b.interaction("main")
        sd.call("T1", "T1", "s1", result="x")
        sd.call("T1", "T1", "s2", result="y")
        sd.call("T1", "Obj", "f", args=["x", "y"], result="z")
        result = map_model(b.build(), _plan(T1="CPU1"))
        block = result.caam.thread("T1").system.block("f")
        assert block.num_inputs == 2
        assert block.num_outputs == 1

    def test_shared_variable_becomes_data_link(self):
        """Paper: 'The r1 argument is passed from calc to mult, thus a
        connection is instantiated between these ports.'"""
        b, sd = _single_thread_model()
        sd.call("T1", "Obj", "calc", result="r1")
        sd.call("T1", "Obj", "use", args=["r1"])
        result = map_model(b.build(), _plan(T1="CPU1"))
        system = result.caam.thread("T1").system
        calc = system.block("calc")
        use = system.block("use")
        line = system.driver_of(use.input(1))
        assert line is not None
        assert line.source.block is calc

    def test_variable_consumed_twice_branches(self):
        b, sd = _single_thread_model()
        sd.call("T1", "Obj", "calc", result="r")
        sd.call("T1", "Obj", "u1", args=["r"])
        sd.call("T1", "Obj", "u2", args=["r"])
        result = map_model(b.build(), _plan(T1="CPU1"))
        system = result.caam.thread("T1").system
        lines = system.lines_from(system.block("calc"))
        assert len(lines) == 1
        assert len(lines[0].destinations) == 2

    def test_literal_argument_becomes_constant(self):
        b, sd = _single_thread_model()
        sd.call("T1", "Obj", "f", args=[3.5])
        result = map_model(b.build(), _plan(T1="CPU1"))
        system = result.caam.thread("T1").system
        constants = system.blocks_of_type("Constant")
        assert len(constants) == 1
        assert constants[0].parameters["Value"] == 3.5

    def test_unproduced_variable_becomes_inport_with_warning(self):
        b, sd = _single_thread_model()
        sd.call("T1", "Obj", "f", args=["ghost"])
        result = map_model(b.build(), _plan(T1="CPU1"))
        thread = result.caam.thread("T1")
        assert any(
            block.name == "ghost" for block in thread.inport_blocks()
        )
        assert any("ghost" in w for w in result.warnings)

    def test_strict_mode_escalates_warnings(self):
        b, sd = _single_thread_model()
        sd.call("T1", "Obj", "f", args=["ghost"])
        with pytest.raises(MappingError, match="ghost"):
            map_model(b.build(), _plan(T1="CPU1"), strict=True)


class TestChannelRules:
    def test_set_records_request_and_ports(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.thread("T2")
        sd = b.interaction("main")
        sd.call("T1", "T1", "src", result="v")
        sd.call("T1", "T2", "setValue", args=["v"])
        result = map_model(b.build(), _plan(T1="CPU1", T2="CPU1"))
        requests = result.unique_channel_requests()
        assert len(requests) == 1
        assert (requests[0].producer, requests[0].consumer) == ("T1", "T2")
        assert requests[0].channel == "value"
        assert "value" in result.scope("T1").send_ports
        assert "value" in result.scope("T2").receive_ports

    def test_get_records_reverse_request(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.thread("T2")
        sd = b.interaction("main")
        sd.call("T1", "T2", "getValue", result="x")
        result = map_model(b.build(), _plan(T1="CPU1", T2="CPU2"))
        request = result.unique_channel_requests()[0]
        assert (request.producer, request.consumer) == ("T2", "T1")

    def test_matching_set_get_deduplicated(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.thread("T2")
        sd = b.interaction("main")
        sd.call("T1", "T1", "src", result="v")
        sd.call("T1", "T2", "setValue", args=["v"])
        sd.call("T2", "T1", "getValue", result="w")
        result = map_model(b.build(), _plan(T1="CPU1", T2="CPU1"))
        assert len(result.channel_requests) == 2
        assert len(result.unique_channel_requests()) == 1

    def test_non_prefixed_inter_thread_message_warns(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.thread("T2")
        sd = b.interaction("main")
        sd.call("T1", "T2", "compute", args=[1.0])
        result = map_model(b.build(), _plan(T1="CPU1", T2="CPU1"))
        assert result.unique_channel_requests() == []
        assert any("Set/Get" in w for w in result.warnings)


class TestIoRules:
    def test_get_on_io_requests_system_input(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.io_device("Dev")
        sd = b.interaction("main")
        sd.call("T1", "Dev", "getSample", result="x")
        result = map_model(b.build(), _plan(T1="CPU1"))
        assert len(result.io_requests) == 1
        request = result.io_requests[0]
        assert request.direction == "in"
        assert request.channel == "sample"
        assert request.variable == "x"

    def test_set_on_io_requests_system_output(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.io_device("Dev")
        sd = b.interaction("main")
        sd.call("T1", "T1", "src", result="y")
        sd.call("T1", "Dev", "setActuator", args=["y"])
        result = map_model(b.build(), _plan(T1="CPU1"))
        request = result.io_requests[0]
        assert request.direction == "out"
        assert request.variable == "y"

    def test_io_without_prefix_warns(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.io_device("Dev")
        sd = b.interaction("main")
        sd.call("T1", "Dev", "toggle")
        result = map_model(b.build(), _plan(T1="CPU1"))
        assert result.io_requests == []
        assert any("get/set naming" in w for w in result.warnings)


class TestUnmappedThreads:
    def test_message_from_unmapped_thread_skipped_with_warning(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.thread("Ghost")
        sd = b.interaction("main")
        sd.call("T1", "T1", "f")
        sd.call("Ghost", "Ghost", "g")
        result = map_model(b.build(), _plan(T1="CPU1"))
        assert len(result.caam.threads()) == 1
        assert any("Ghost" in w for w in result.warnings)

    def test_channel_to_unmapped_thread_skipped(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.thread("Ghost")
        sd = b.interaction("main")
        sd.call("T1", "Ghost", "setX", args=[1.0])
        result = map_model(b.build(), _plan(T1="CPU1"))
        assert result.unique_channel_requests() == []


class TestPlatformParameterArguments:
    """Trailing literal arguments of pre-defined blocks become block
    parameters (``gain(x, 2.5)`` → Gain with Gain=2.5)."""

    def test_gain_parameter(self):
        b, sd = _single_thread_model()
        sd.call("T1", "T1", "src", result="x")
        sd.call("T1", "Platform", "gain", args=["x", 2.5], result="y")
        result = map_model(b.build(), _plan(T1="CPU1"))
        gain = result.caam.thread("T1").system.block("gain")
        assert gain.parameters["Gain"] == 2.5
        assert gain.num_inputs == 1
        # No Constant block was created for the literal.
        assert result.caam.thread("T1").system.blocks_of_type("Constant") == []

    def test_saturation_limits(self):
        b, sd = _single_thread_model()
        sd.call("T1", "T1", "src", result="x")
        sd.call("T1", "Platform", "saturation", args=["x", -3.0, 3.0], result="y")
        result = map_model(b.build(), _plan(T1="CPU1"))
        sat = result.caam.thread("T1").system.block("saturation")
        assert sat.parameters["LowerLimit"] == -3.0
        assert sat.parameters["UpperLimit"] == 3.0

    def test_delay_initial_condition(self):
        b, sd = _single_thread_model()
        sd.call("T1", "T1", "src", result="x")
        sd.call("T1", "Platform", "delay", args=["x", 7.0], result="y")
        result = map_model(b.build(), _plan(T1="CPU1"))
        delay = result.caam.thread("T1").system.block("delay")
        assert delay.parameters["InitialCondition"] == 7.0

    def test_variable_extra_args_stay_inputs(self):
        # Product has no parameter convention: both args remain inputs.
        b, sd = _single_thread_model()
        sd.call("T1", "T1", "s1", result="a")
        sd.call("T1", "Platform", "mult", args=["a", 4.0], result="y")
        result = map_model(b.build(), _plan(T1="CPU1"))
        product = result.caam.thread("T1").system.block("mult")
        assert product.num_inputs == 2
        constants = result.caam.thread("T1").system.blocks_of_type("Constant")
        assert len(constants) == 1  # literal wired through a Constant


class TestBehaviorSubsystems:
    """Operations whose body references a UML interaction map to
    hierarchical subsystems (the crane Fig. 5 'control' case)."""

    def _model(self):
        from repro.uml import ModelBuilder

        b = ModelBuilder("m")
        b.passive_class("C").op(
            "twice_plus", inputs=["x:double"], returns="double"
        ).body("beh", "uml")
        b.thread("T1")
        b.instance("Obj", "C")
        sd = b.interaction("main")
        sd.call("T1", "T1", "src", result="x")
        sd.call("T1", "Obj", "twice_plus", args=["x"], result="y")
        sd.call("T1", "Platform", "abs", args=["y"], result="z")
        beh = b.interaction("beh")
        beh.call("Obj", "Platform", "gain", args=["x", 2.0], result="t")
        beh.call("Obj", "Platform", "add", args=["t", "t"], result="result")
        return b.build()

    def test_subsystem_created_with_signature_ports(self):
        result = map_model(self._model(), _plan(T1="CPU1"))
        block = result.caam.thread("T1").system.block("twice_plus")
        assert block.block_type == "SubSystem"
        assert block.num_inputs == 1
        assert block.num_outputs == 1

    def test_inner_blocks_generated(self):
        result = map_model(self._model(), _plan(T1="CPU1"))
        sub = result.caam.thread("T1").system.block("twice_plus")
        assert len(sub.system.blocks_of_type("Gain")) == 1
        assert len(sub.system.blocks_of_type("Sum")) == 1

    def test_executes_with_block_semantics(self):
        from repro.core import infer_channels, insert_temporal_barriers
        from repro.simulink import Simulator

        result = map_model(
            self._model(), _plan(T1="CPU1"), behaviors={"src": lambda: 3.0}
        )
        infer_channels(result)
        insert_temporal_barriers(result.caam)
        simulator = Simulator(result.caam, monitor=["m/CPU1/T1/abs"])
        trace = simulator.run(1)
        # twice_plus(3) = 2*3 + 2*3 = 12; abs(12) = 12.
        assert trace.signal("m/CPU1/T1/abs") == [12.0]

    def test_missing_behaviour_interaction_falls_back_to_sfunction(self):
        from repro.uml import ModelBuilder

        b = ModelBuilder("m")
        b.passive_class("C").op("f", returns="double").body("ghost", "uml")
        b.thread("T1")
        b.instance("Obj", "C")
        sd = b.interaction("main")
        sd.call("T1", "Obj", "f", result="y")
        result = map_model(b.build(), _plan(T1="CPU1"))
        block = result.caam.thread("T1").system.block("f")
        assert block.block_type == "S-Function"


class TestAlternativeFragments:
    """alt/opt combined fragments → Switch-selected dataflow."""

    def _alt_model(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.instance("Obj")
        sd = b.interaction("main")
        sd.call("T1", "Obj", "sense", result="cond")
        sd.call("T1", "Obj", "base", result="x")
        then_branch, else_branch = sd.alt("cond", "else")
        then_branch.call("T1", "Platform", "gain", args=["x", 2.0], result="y")
        else_branch.call("T1", "Platform", "gain", args=["x", 3.0], result="y")
        sd.call("T1", "Obj", "consume", args=["y"])
        return b.build()

    def test_switch_created_for_conflicting_variable(self):
        result = map_model(self._alt_model(), _plan(T1="CPU1"))
        system = result.caam.thread("T1").system
        switches = system.blocks_of_type("Switch")
        assert len(switches) == 1
        assert switches[0].name == "select_y"

    def test_switch_wiring(self):
        result = map_model(self._alt_model(), _plan(T1="CPU1"))
        system = result.caam.thread("T1").system
        switch = system.blocks_of_type("Switch")[0]
        first = system.driver_of(switch.input(1)).source.block
        control = system.driver_of(switch.input(2)).source.block
        fallback = system.driver_of(switch.input(3)).source.block
        assert first.block_type == "Gain" and first.parameters["Gain"] == 2.0
        assert control.name == "sense"
        assert fallback.parameters["Gain"] == 3.0

    def test_consumer_reads_switch_output(self):
        result = map_model(self._alt_model(), _plan(T1="CPU1"))
        system = result.caam.thread("T1").system
        consume = system.block("consume")
        driver = system.driver_of(consume.input(1))
        assert driver.source.block.block_type == "Switch"

    def test_alt_executes_both_ways(self):
        from repro.core import infer_channels, insert_temporal_barriers
        from repro.simulink import Simulator

        behaviors = {
            "sense": lambda: 1.0,
            "base": lambda: 10.0,
            "consume": lambda y: y,
        }
        result = map_model(
            self._alt_model(), _plan(T1="CPU1"), behaviors=behaviors
        )
        infer_channels(result)
        insert_temporal_barriers(result.caam)
        simulator = Simulator(result.caam, monitor=["m/CPU1/T1/consume"])
        assert simulator.run(1).signal("m/CPU1/T1/consume") == [20.0]

        behaviors["sense"] = lambda: 0.0
        result2 = map_model(
            self._alt_model(), _plan(T1="CPU1"), behaviors=behaviors
        )
        infer_channels(result2)
        simulator2 = Simulator(result2.caam, monitor=["m/CPU1/T1/consume"])
        assert simulator2.run(1).signal("m/CPU1/T1/consume") == [30.0]

    def test_opt_merges_with_previous_binding(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.instance("Obj")
        sd = b.interaction("main")
        sd.call("T1", "Obj", "sense", result="cond")
        sd.call("T1", "Obj", "base", result="x")
        branch = sd.opt("cond")
        branch.call("T1", "Platform", "gain", args=["x", 5.0], result="x")
        sd.call("T1", "Obj", "consume", args=["x"])
        result = map_model(b.build(), _plan(T1="CPU1"))
        system = result.caam.thread("T1").system
        switch = system.blocks_of_type("Switch")[0]
        fallback = system.driver_of(switch.input(3)).source.block
        assert fallback.name == "base"  # prior producer of x

    def test_missing_fallback_grounded_with_warning(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.instance("Obj")
        sd = b.interaction("main")
        sd.call("T1", "Obj", "sense", result="cond")
        branch = sd.opt("cond")
        branch.call("T1", "Obj", "maybe", result="fresh")
        sd.call("T1", "Obj", "consume", args=["fresh"])
        result = map_model(b.build(), _plan(T1="CPU1"))
        assert any("grounding the fallback" in w for w in result.warnings)
        system = result.caam.thread("T1").system
        switch = system.blocks_of_type("Switch")[0]
        fallback = system.driver_of(switch.input(3)).source.block
        assert fallback.block_type == "Constant"

    def test_multi_sender_alt_falls_back_with_warning(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.thread("T2")
        b.instance("Obj")
        sd = b.interaction("main")
        then_branch, else_branch = sd.alt("c", "else")
        then_branch.call("T1", "Obj", "f", result="v")
        else_branch.call("T2", "Obj", "g", result="w")
        result = map_model(b.build(), _plan(T1="CPU1", T2="CPU1"))
        assert any("spans multiple sender threads" in w for w in result.warnings)
        assert result.caam.thread("T1").system.has_block("f")
        assert result.caam.thread("T2").system.has_block("g")

    def test_three_way_alt_chains_switches(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.instance("Obj")
        sd = b.interaction("main")
        sd.call("T1", "Obj", "c1", result="g1")
        sd.call("T1", "Obj", "c2", result="g2")
        sd.call("T1", "Obj", "base", result="x")
        b1, b2, b3 = sd.alt("g1", "g2", "else")
        b1.call("T1", "Platform", "gain", args=["x", 1.0], result="y")
        b2.call("T1", "Platform", "gain", args=["x", 2.0], result="y")
        b3.call("T1", "Platform", "gain", args=["x", 3.0], result="y")
        result = map_model(b.build(), _plan(T1="CPU1"))
        system = result.caam.thread("T1").system
        assert len(system.blocks_of_type("Switch")) == 2


class TestOutParameterWiring:
    """Arguments aligned with *out* parameters bind to output ports."""

    def _model(self):
        b = ModelBuilder("m")
        b.passive_class("C").op(
            "split",
            inputs=["x:double"],
            outputs=["hi:double", "lo:double"],
            returns="double",
        )
        b.thread("T1")
        b.instance("Obj", "C")
        sd = b.interaction("main")
        sd.call("T1", "T1", "src", result="x")
        sd.call("T1", "Obj", "split", args=["x", "h", "l"], result="avg")
        sd.call("T1", "Platform", "sub", args=["h", "l"], result="d")
        return b.build()

    def test_block_has_ports_for_outs_and_return(self):
        result = map_model(self._model(), _plan(T1="CPU1"))
        block = result.caam.thread("T1").system.block("split")
        assert block.num_inputs == 1
        assert block.num_outputs == 3  # return + hi + lo

    def test_out_variables_bound_to_output_ports(self):
        result = map_model(self._model(), _plan(T1="CPU1"))
        scope = result.scope("T1")
        split = result.caam.thread("T1").system.block("split")
        assert scope.producer_of("avg") == split.output(1)  # return
        assert scope.producer_of("h") == split.output(2)
        assert scope.producer_of("l") == split.output(3)

    def test_consumers_wired_from_out_ports(self):
        result = map_model(self._model(), _plan(T1="CPU1"))
        system = result.caam.thread("T1").system
        sub = system.block("sub")
        assert system.driver_of(sub.input(1)).source.index == 2
        assert system.driver_of(sub.input(2)).source.index == 3

    def test_literal_out_argument_warns(self):
        b = ModelBuilder("m")
        b.passive_class("C").op("f", inputs=["x:int"], outputs=["y:int"])
        b.thread("T1")
        b.instance("Obj", "C")
        sd = b.interaction("main")
        sd.call("T1", "T1", "src", result="x")
        sd.call("T1", "Obj", "f", args=["x", 42])
        result = map_model(b.build(), _plan(T1="CPU1"))
        assert any("out-argument" in w for w in result.warnings)

    def test_inputs_only_call_still_accepted(self):
        b = ModelBuilder("m")
        b.passive_class("C").op("f", inputs=["x:int"], outputs=["y:int"])
        b.thread("T1")
        b.instance("Obj", "C")
        sd = b.interaction("main")
        sd.call("T1", "T1", "src", result="x")
        sd.call("T1", "Obj", "f", args=["x"])  # out param not mentioned
        result = map_model(b.build(), _plan(T1="CPU1"))
        block = result.caam.thread("T1").system.block("f")
        assert block.num_inputs == 1

    def test_validation_accepts_both_arities(self):
        from repro.uml import validate_model

        issues = validate_model(self._model())
        assert not [i for i in issues if i.severity == "error"]
