"""Unit tests for automatic thread allocation (repro.core.allocation)."""

import pytest

from repro.core import (
    TaskGraph,
    allocate_from_interactions,
    allocate_from_model,
    allocate_threads,
    critical_path_cpu,
    plan_from_clusters,
)


def _graph():
    graph = TaskGraph()
    graph.add_edge("A", "B", 10)
    graph.add_edge("C", "D", 9)
    return graph


class TestPlanFromClusters:
    def test_deterministic_naming(self):
        plan = plan_from_clusters([["C"], ["A", "B"]])
        # bigger cluster first -> CPU0
        assert plan.cpu_of("A") == "CPU0"
        assert plan.cpu_of("C") == "CPU1"

    def test_ties_broken_by_first_thread(self):
        plan = plan_from_clusters([["Z"], ["A"]])
        assert plan.cpu_of("A") == "CPU0"
        assert plan.cpu_of("Z") == "CPU1"


class TestAllocateThreads:
    def test_result_carries_everything(self):
        result = allocate_threads(_graph())
        assert result.cpu_count == 2
        assert set(result.plan.threads) == {"A", "B", "C", "D"}
        assert result.graph is not None

    def test_inter_cpu_traffic_computed(self):
        result = allocate_threads(_graph())
        assert result.inter_cpu_traffic == 0  # both chains intact

    def test_summary_mentions_groups(self):
        text = allocate_threads(_graph()).summary()
        assert "CPU0" in text and "bits/iteration" in text

    def test_critical_path_cpu(self):
        result = allocate_threads(_graph())
        assert critical_path_cpu(result) == result.plan.cpu_of("A")


class TestFromModel:
    def test_synthetic_model_allocation(self, synthetic_model):
        from repro.apps.synthetic import EXPECTED_CLUSTERS

        result = allocate_from_model(synthetic_model)
        grouped = {
            frozenset(result.plan.threads_on(cpu)) for cpu in result.plan.cpus
        }
        assert grouped == set(EXPECTED_CLUSTERS)

    def test_from_interactions_equivalent(self, synthetic_model):
        direct = allocate_from_interactions(synthetic_model.interactions)
        via_model = allocate_from_model(synthetic_model)
        assert direct.plan.as_mapping() == via_model.plan.as_mapping()

    def test_crane_single_chain_lands_on_few_cpus(self, crane_model):
        result = allocate_from_model(crane_model)
        # T1/T2 both feed T3 heavily; the critical chain shares a CPU.
        assert result.plan.co_located("T1", "T3") or result.plan.co_located(
            "T2", "T3"
        )
