"""Unit tests for channel inference §4.2.1 (repro.core.channels)."""

import pytest

from repro.core import infer_channels, map_model
from repro.simulink import GFIFO, SWFIFO
from repro.uml import DeploymentPlan, ModelBuilder


def _plan(**mapping):
    return DeploymentPlan.from_mapping(mapping)


def _two_thread_model(op_on_t1="setValue"):
    b = ModelBuilder("m")
    b.thread("T1")
    b.thread("T2")
    sd = b.interaction("main")
    sd.call("T1", "T1", "src", result="v")
    sd.call("T1", "T2", op_on_t1, args=["v"])
    return b.build()


class TestProtocolSelection:
    def test_same_cpu_gives_swfifo(self):
        result = map_model(_two_thread_model(), _plan(T1="CPU1", T2="CPU1"))
        report = infer_channels(result)
        assert report.intra_count == 1
        assert report.inter_count == 0
        channel = result.caam.channels()[0]
        assert channel.parameters["Protocol"] == SWFIFO
        assert channel.parent is result.caam.cpu("CPU1").system

    def test_different_cpus_gives_gfifo_at_top(self):
        result = map_model(_two_thread_model(), _plan(T1="CPU1", T2="CPU2"))
        report = infer_channels(result)
        assert report.inter_count == 1
        channel = result.caam.channels()[0]
        assert channel.parameters["Protocol"] == GFIFO
        assert channel.parent is result.caam.root

    def test_didactic_has_one_of_each(self, didactic_result):
        """Fig. 3(c): one inter-SS and one intra-SS channel."""
        assert len(didactic_result.caam.inter_cpu_channels()) == 1
        assert len(didactic_result.caam.intra_cpu_channels()) == 1

    def test_channel_width_carried(self):
        result = map_model(_two_thread_model(), _plan(T1="CPU1", T2="CPU1"))
        infer_channels(result)
        channel = result.caam.channels()[0]
        assert channel.parameters["DataWidthBits"] == 32


class TestWiring:
    def test_intra_channel_connects_thread_ports(self):
        result = map_model(_two_thread_model(), _plan(T1="CPU1", T2="CPU1"))
        infer_channels(result)
        cpu = result.caam.cpu("CPU1")
        channel = cpu.system.blocks_of_type("CommChannel")[0]
        driver = cpu.system.driver_of(channel.input(1))
        assert driver.source.block.name == "T1"
        consumers = [
            dest.block.name
            for line in cpu.system.lines_from(channel)
            for dest in line.destinations
        ]
        assert consumers == ["T2"]

    def test_inter_channel_punches_cpu_boundaries(self):
        result = map_model(_two_thread_model(), _plan(T1="CPU1", T2="CPU2"))
        infer_channels(result)
        caam = result.caam
        cpu1 = caam.cpu("CPU1")
        cpu2 = caam.cpu("CPU2")
        assert cpu1.num_outputs == 1
        assert cpu2.num_inputs == 1
        # The boundary ports are wired through inside the CPUs.
        boundary_out = cpu1.outport_blocks()[0]
        assert cpu1.system.driver_of(boundary_out.input(1)) is not None

    def test_flattened_dataflow_reaches_consumer(self):
        from repro.simulink import flatten

        result = map_model(_two_thread_model(), _plan(T1="CPU1", T2="CPU2"))
        infer_channels(result)
        _, edges = flatten(result.caam)
        # src (in T1) -> channel -> (nothing, T2 receive port unconsumed)
        names = {(s.block.name, d.block.name) for s, d in edges}
        assert any(src == "src" for src, _ in names)


class TestProducerInference:
    def test_get_only_channel_uses_single_candidate(self):
        """Consumer Gets; producer never Sets: its only produced variable
        is inferred as the channel source (the paper's 'inference')."""
        b = ModelBuilder("m")
        b.thread("T1")
        b.thread("T2")
        sd = b.interaction("main")
        sd.call("T2", "T2", "work", result="data")
        sd.call("T1", "T2", "getValue", result="x")
        result = map_model(b.build(), _plan(T1="CPU1", T2="CPU1"))
        infer_channels(result)
        t2 = result.caam.thread("T2")
        outport = t2.outport_blocks()[0]
        line = t2.system.driver_of(outport.input(1))
        assert line is not None
        assert line.source.block.name == "work"

    def test_variable_named_after_channel_preferred(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.thread("T2")
        sd = b.interaction("main")
        sd.call("T2", "T2", "w1", result="value")
        sd.call("T2", "T2", "w2", result="other")
        sd.call("T1", "T2", "getValue", result="x")
        result = map_model(b.build(), _plan(T1="CPU1", T2="CPU1"))
        infer_channels(result)
        t2 = result.caam.thread("T2")
        outport = t2.outport_blocks()[0]
        line = t2.system.driver_of(outport.input(1))
        assert line.source.block.name == "w1"

    def test_ambiguous_producer_warns(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.thread("T2")
        sd = b.interaction("main")
        sd.call("T2", "T2", "w1", result="a")
        sd.call("T2", "T2", "w2", result="b")
        sd.call("T1", "T2", "getValue", result="x")
        result = map_model(b.build(), _plan(T1="CPU1", T2="CPU1"))
        infer_channels(result)
        assert any("cannot infer" in w for w in result.warnings)


class TestSystemIo:
    def test_system_input_chain(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.io_device("Dev")
        sd = b.interaction("main")
        sd.call("T1", "Dev", "getSample", result="x")
        result = map_model(b.build(), _plan(T1="CPU1"))
        report = infer_channels(result)
        assert len(report.system_inputs) == 1
        root_inports = result.caam.root.blocks_of_type("Inport")
        assert [b_.name for b_ in root_inports] == ["In1"]
        cpu = result.caam.cpu("CPU1")
        assert cpu.num_inputs == 1

    def test_system_output_chain(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.io_device("Dev")
        sd = b.interaction("main")
        sd.call("T1", "T1", "src", result="y")
        sd.call("T1", "Dev", "setActuator", args=["y"])
        result = map_model(b.build(), _plan(T1="CPU1"))
        report = infer_channels(result)
        assert len(report.system_outputs) == 1
        root_outports = result.caam.root.blocks_of_type("Outport")
        assert [b_.name for b_ in root_outports] == ["Out1"]

    def test_multiple_ios_numbered(self, crane_result):
        root = crane_result.caam.root
        inports = sorted(b.name for b in root.blocks_of_type("Inport"))
        assert inports == ["In1", "In2", "In3"]
        assert [b.name for b in root.blocks_of_type("Outport")] == ["Out1"]

    def test_io_executes_end_to_end(self):
        from repro.simulink import run_model

        b = ModelBuilder("m")
        b.thread("T1")
        b.io_device("Dev")
        sd = b.interaction("main")
        sd.call("T1", "Dev", "getSample", result="x")
        sd.call("T1", "Platform", "gain", args=["x"], result="y")
        sd.call("T1", "Dev", "setOut", args=["y"])
        result = map_model(b.build(), _plan(T1="CPU1"))
        infer_channels(result)
        trace = run_model(result.caam, 3, inputs={"In1": [1, 2, 3]})
        assert trace.output("Out1") == [1.0, 2.0, 3.0]
