"""CLI tests for ``repro analyze`` (and validate's severity gate)."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def crane_xmi(tmp_path):
    path = tmp_path / "crane.xmi"
    assert main(["demo", "crane", str(path)]) == 0
    return str(path)


@pytest.fixture()
def didactic_xmi(tmp_path):
    path = tmp_path / "didactic.xmi"
    assert main(["demo", "didactic", str(path)]) == 0
    return str(path)


class TestAnalyzeExitCodes:
    def test_clean_model_exits_zero(self, crane_xmi, capsys):
        assert main(["analyze", crane_xmi]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_warnings_pass_at_default_threshold(self, didactic_xmi):
        # didactic's dead mult/calc chain is RA404 (warning), below the
        # default --min-severity error
        assert main(["analyze", didactic_xmi]) == 0

    def test_warnings_fail_at_warning_threshold(self, didactic_xmi, capsys):
        assert (
            main(["analyze", didactic_xmi, "--min-severity", "warning"]) == 1
        )
        assert "RA404" in capsys.readouterr().out

    def test_suppression_clears_the_gate(self, didactic_xmi):
        code = main(
            [
                "analyze",
                didactic_xmi,
                "--min-severity",
                "warning",
                "--suppress",
                "RA404",
            ]
        )
        assert code == 0

    def test_missing_file_is_usage_error(self, capsys):
        assert main(["analyze", "/nonexistent.xmi"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_pass_is_usage_error(self, crane_xmi, capsys):
        assert main(["analyze", crane_xmi, "--passes", "nope"]) == 2
        assert "unknown" in capsys.readouterr().err


class TestAnalyzeFormats:
    def test_json_format(self, didactic_xmi, capsys):
        assert main(["analyze", didactic_xmi, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        (report,) = doc["reports"]
        assert report["subject"] == "didactic"
        assert report["codes"] == ["RA404"]

    def test_json_format_carries_sdf_info(self, crane_xmi, capsys):
        # The structured SDF results ride in the report's "info" mapping —
        # the schema documented in docs/analysis.md and consumed by the
        # static-schedule backend.
        assert main(["analyze", crane_xmi, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        (report,) = doc["reports"]
        sdf = report["info"]["sdf"]
        assert set(sdf) == {
            "level",
            "actors",
            "channels",
            "consistent",
            "deadlocked",
            "capped",
            "repetition",
            "buffer_bounds",
            "blocked",
            "conflicts",
        }
        assert sdf["level"] == "uml"
        assert sdf["consistent"] and not sdf["deadlocked"]
        assert sdf["repetition"] == {"T1": 1, "T2": 1, "T3": 1}
        assert set(sdf["buffer_bounds"]) == {"alpha", "ref", "xc"}
        assert all(bound >= 1 for bound in sdf["buffer_bounds"].values())

    def test_sarif_format(self, crane_xmi, didactic_xmi, capsys):
        code = main(
            ["analyze", crane_xmi, didactic_xmi, "--format", "sarif"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert {r["ruleId"] for r in run["results"]} == {"RA404"}
        # physical locations point back at the analyzed files
        uris = {
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for r in run["results"]
        }
        assert uris == {didactic_xmi}

    def test_output_file(self, crane_xmi, tmp_path, capsys):
        out = tmp_path / "crane.sarif"
        code = main(
            ["analyze", crane_xmi, "--format", "sarif", "-o", str(out)]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        assert json.loads(out.read_text())["version"] == "2.1.0"

    def test_pass_selection(self, didactic_xmi, capsys):
        # without the dataflow pass didactic is clean
        code = main(
            [
                "analyze",
                didactic_xmi,
                "--passes",
                "structure,channels,sdf",
                "--min-severity",
                "warning",
            ]
        )
        assert code == 0
        assert "0 warning(s)" in capsys.readouterr().out


class TestValidateSeverityGate:
    def test_default_still_passes_on_warnings(self, crane_xmi):
        assert main(["validate", crane_xmi]) == 0

    def test_min_severity_warning_fails(self, crane_xmi):
        assert (
            main(["validate", crane_xmi, "--min-severity", "warning"]) == 1
        )

    def test_clean_model_passes_any_threshold(self, didactic_xmi):
        assert (
            main(["validate", didactic_xmi, "--min-severity", "note"]) == 0
        )
