"""SARIF 2.1.0 emission tests (repro.analysis.sarif)."""

from repro.analysis import AnalysisReport, make_diagnostic, to_sarif
from repro.analysis.sarif import SARIF_SCHEMA, SARIF_VERSION


def _report(subject="m", uri=None):
    report = AnalysisReport(subject=subject)
    if uri:
        report.info["uri"] = uri
    return report


def test_log_shape_and_version():
    report = _report()
    report.extend([make_diagnostic("RA101", "no op f")], [])
    doc = to_sarif([report])
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert doc["$schema"] == SARIF_SCHEMA
    (run,) = doc["runs"]
    assert run["tool"]["driver"]["name"] == "repro-analyze"
    assert run["columnKind"] == "unicodeCodePoints"


def test_rules_built_from_used_codes_only():
    report = _report()
    report.extend(
        [
            make_diagnostic("RA203", "read early"),
            make_diagnostic("RA101", "no op"),
            make_diagnostic("RA101", "no op either"),
        ],
        [],
    )
    run = to_sarif([report])["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    assert [rule["id"] for rule in rules] == ["RA101", "RA203"]
    for rule in rules:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in (
            "note",
            "warning",
            "error",
        )


def test_result_rule_index_points_into_the_rule_table():
    report = _report()
    report.extend(
        [make_diagnostic("RA203", "w"), make_diagnostic("RA101", "e")], []
    )
    run = to_sarif([report])["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]


def test_levels_follow_severity():
    report = _report()
    report.extend(
        [
            make_diagnostic("RA101", "e"),
            make_diagnostic("RA203", "w"),
            make_diagnostic("RA304", "n"),
        ],
        [],
    )
    run = to_sarif([report])["runs"][0]
    assert [r["level"] for r in run["results"]] == [
        "error",
        "warning",
        "note",
    ]


def test_logical_location_is_subject_and_location():
    report = _report(subject="crane")
    report.extend(
        [make_diagnostic("RA101", "x", location="interaction 'main'")], []
    )
    (result,) = to_sarif([report])["runs"][0]["results"]
    logical = result["locations"][0]["logicalLocations"][0]
    assert logical["fullyQualifiedName"] == "crane::interaction 'main'"


def test_physical_location_from_report_uri():
    report = _report(uri="models/crane.xmi")
    report.extend([make_diagnostic("RA101", "x")], [])
    (result,) = to_sarif([report])["runs"][0]["results"]
    physical = result["locations"][0]["physicalLocation"]
    assert physical["artifactLocation"]["uri"] == "models/crane.xmi"
    no_uri = _report()
    no_uri.extend([make_diagnostic("RA101", "x")], [])
    (bare,) = to_sarif([no_uri])["runs"][0]["results"]
    assert "physicalLocation" not in bare["locations"][0]


def test_element_ids_become_partial_fingerprints():
    report = _report()
    report.extend(
        [make_diagnostic("RA101", "x", element_ids=("id1", "id2"))], []
    )
    (result,) = to_sarif([report])["runs"][0]["results"]
    assert result["partialFingerprints"] == {"repro/elementIds": "id1,id2"}


def test_fix_hint_becomes_markdown_message():
    report = _report()
    report.extend([make_diagnostic("RA101", "x", fix_hint="declare it")], [])
    (result,) = to_sarif([report])["runs"][0]["results"]
    assert "**Fix:** declare it" in result["message"]["markdown"]


def test_suppressed_diagnostics_carry_suppressions():
    report = _report()
    report.extend(
        [make_diagnostic("RA203", "w"), make_diagnostic("RA101", "e")],
        ["RA2xx"],
    )
    run = to_sarif([report])["runs"][0]
    by_rule = {r["ruleId"]: r for r in run["results"]}
    assert by_rule["RA203"]["suppressions"] == [{"kind": "external"}]
    assert "suppressions" not in by_rule["RA101"]
    # suppressed codes still appear in the rule table
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
        "RA101",
        "RA203",
    ]


def test_multiple_reports_share_one_run():
    first, second = _report(subject="a"), _report(subject="b")
    first.extend([make_diagnostic("RA101", "x")], [])
    second.extend([make_diagnostic("RA203", "y")], [])
    doc = to_sarif([first, second])
    assert len(doc["runs"]) == 1
    assert len(doc["runs"][0]["results"]) == 2
