"""Unit tests for the SDF solver (repro.analysis.sdf)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    SdfEdge,
    SdfGraph,
    analyze_graph,
    repetition_vector,
    schedule_bounds,
    sdf_from_caam,
    sdf_from_uml,
)
from repro.core import synthesize
from repro.uml import ModelBuilder


def _graph(*edges):
    graph = SdfGraph()
    for edge in edges:
        graph.add_edge(edge)
    return graph


class TestRepetitionVector:
    def test_single_rate_chain_is_all_ones(self):
        graph = _graph(
            SdfEdge("A", "B", "c1"), SdfEdge("B", "C", "c2")
        )
        repetition, conflicts = repetition_vector(graph)
        assert conflicts == []
        assert repetition == {"A": 1, "B": 1, "C": 1}

    def test_multirate_chain_smallest_integers(self):
        # A fires 3x per B firing (A produces 2, B consumes 6).
        graph = _graph(SdfEdge("A", "B", "c", produce=2, consume=6))
        repetition, conflicts = repetition_vector(graph)
        assert conflicts == []
        assert repetition == {"A": 3, "B": 1}

    def test_classic_three_actor_example(self):
        # Lee/Messerschmitt shape: rates 2->3, 1->2 give r = (3, 2, 1).
        graph = _graph(
            SdfEdge("A", "B", "ab", produce=2, consume=3),
            SdfEdge("B", "C", "bc", produce=1, consume=2),
        )
        repetition, conflicts = repetition_vector(graph)
        assert conflicts == []
        assert repetition == {"A": 3, "B": 2, "C": 1}

    def test_inconsistent_diamond_reports_the_conflict_edge(self):
        graph = _graph(
            SdfEdge("A", "B", "c1", produce=2, consume=1),
            SdfEdge("A", "B", "c2", produce=1, consume=1),
        )
        repetition, conflicts = repetition_vector(graph)
        assert repetition == {}
        assert len(conflicts) == 1

    def test_disconnected_components_solved_independently(self):
        graph = _graph(
            SdfEdge("A", "B", "c1", produce=2, consume=1),
            SdfEdge("X", "Y", "c2", produce=1, consume=3),
        )
        repetition, conflicts = repetition_vector(graph)
        assert conflicts == []
        assert repetition == {"A": 1, "B": 2, "X": 3, "Y": 1}


class TestScheduleBounds:
    def test_acyclic_graph_has_buffer_bounds(self):
        graph = _graph(SdfEdge("A", "B", "c", produce=2, consume=1))
        analysis = analyze_graph(graph)
        assert analysis.consistent and not analysis.deadlocked
        assert analysis.repetition == {"A": 1, "B": 2}
        assert analysis.buffer_bounds == {"c": 2}

    def test_cycle_without_delay_deadlocks(self):
        graph = _graph(
            SdfEdge("A", "B", "ab"), SdfEdge("B", "A", "ba")
        )
        analysis = analyze_graph(graph)
        assert analysis.deadlocked
        assert analysis.blocked == ["A", "B"]
        assert analysis.buffer_bounds == {}

    def test_initial_token_breaks_the_cycle(self):
        graph = _graph(
            SdfEdge("A", "B", "ab"), SdfEdge("B", "A", "ba", delay=1)
        )
        analysis = analyze_graph(graph)
        assert analysis.consistent and not analysis.deadlocked
        assert analysis.buffer_bounds["ab"] >= 1

    def test_firing_cap_reports_capped(self):
        graph = _graph(SdfEdge("A", "B", "c", produce=2, consume=1))
        analysis = schedule_bounds(graph, {"A": 1, "B": 2}, max_firings=2)
        assert analysis.capped
        assert analysis.buffer_bounds == {}

    def test_zero_rate_edge_is_a_conflict_not_a_crash(self):
        # An SDF edge moves a positive token count per firing; a zero
        # rate used to divide by zero in the balance equations.
        for produce, consume in ((0, 1), (1, 0), (0, 0)):
            graph = _graph(
                SdfEdge("A", "B", "c", produce=produce, consume=consume)
            )
            repetition, conflicts = repetition_vector(graph)
            assert repetition == {}
            assert [e.channel for e in conflicts] == ["c"]
            analysis = analyze_graph(graph)
            assert not analysis.consistent
            assert analysis.buffer_bounds == {}

    def test_negative_delay_is_a_conflict(self):
        graph = _graph(SdfEdge("A", "B", "c", delay=-1))
        repetition, conflicts = repetition_vector(graph)
        assert repetition == {} and len(conflicts) == 1

    def test_self_loop_with_enough_initial_tokens_fires(self):
        # A consistent self-loop (produce == consume) is live exactly
        # when its initial tokens cover one firing's consumption; the
        # bound is the initial marking (net token change is zero).
        graph = _graph(
            SdfEdge("A", "A", "self", produce=2, consume=2, delay=2)
        )
        analysis = analyze_graph(graph)
        assert analysis.consistent and not analysis.deadlocked
        assert analysis.repetition == {"A": 1}
        assert analysis.buffer_bounds == {"self": 2}

    def test_self_loop_starved_of_initial_tokens_deadlocks(self):
        graph = _graph(
            SdfEdge("A", "A", "self", produce=2, consume=2, delay=1)
        )
        analysis = analyze_graph(graph)
        assert analysis.consistent and analysis.deadlocked
        assert analysis.blocked == ["A"]

    def test_rate_inconsistent_self_loop_is_a_conflict(self):
        graph = _graph(SdfEdge("A", "A", "self", produce=1, consume=2))
        repetition, conflicts = repetition_vector(graph)
        assert repetition == {} and len(conflicts) == 1

    def test_repetition_overflowing_small_ints_still_exact_and_capped(self):
        # A 10-deep 10:1 downsampling... upsampling chain drives the last
        # actor's repetition to 10^10 (past any 32-bit int).  The solver
        # works in exact fractions, so the vector is still right, and the
        # PASS simulation refuses to run it (capped, no bounds).
        edges = [
            SdfEdge(f"A{i}", f"A{i + 1}", f"c{i}", produce=10, consume=1)
            for i in range(10)
        ]
        analysis = analyze_graph(_graph(*edges))
        assert analysis.consistent
        assert analysis.repetition["A10"] == 10**10
        assert analysis.capped
        assert analysis.buffer_bounds == {}

    @settings(max_examples=60, deadline=None)
    @given(
        produce=st.integers(min_value=1, max_value=12),
        consume=st.integers(min_value=1, max_value=12),
        delay=st.integers(min_value=0, max_value=12),
    )
    def test_bound_covers_one_firing_each_way(self, produce, consume, delay):
        # Property: for any live single-edge graph the computed FIFO
        # capacity accommodates at least one producer burst and one
        # consumer demand: bound >= max(produce, consume).
        graph = _graph(
            SdfEdge("A", "B", "c", produce=produce, consume=consume, delay=delay)
        )
        analysis = analyze_graph(graph)
        assert analysis.consistent
        assert not analysis.deadlocked
        bound = analysis.buffer_bounds["c"]
        assert bound >= max(produce, consume)
        # and the bound is never looser than burst + initial marking
        assert bound <= produce * analysis.repetition["A"] + delay

    def test_to_dict_is_json_shaped(self):
        doc = analyze_graph(
            _graph(SdfEdge("A", "B", "c", produce=2, consume=1))
        ).to_dict()
        assert doc["consistent"] is True
        assert doc["repetition"] == {"A": 1, "B": 2}
        assert doc["buffer_bounds"] == {"c": 2}


def _uml_pair(*, explicit, weight=1):
    """Two threads with one channel; explicit get or implicit read."""
    b = ModelBuilder("m")
    b.thread("P")
    b.thread("C")
    sd = b.interaction("main")
    sd.call("P", "P", "mk", result="v")
    if weight > 1:
        loop = sd.loop(iterations=weight)
        loop.call("P", "C", "setD", args=["v"])
    else:
        sd.call("P", "C", "setD", args=["v"])
    if explicit:
        sd.call("C", "P", "getD", result="x")
        sd.call("C", "C", "use", args=["x"], result="y")
    else:
        sd.call("C", "C", "use", args=["d"], result="y")
    return b.build()


class TestUmlLift:
    def test_explicit_get_is_one_token_per_call(self):
        graph = sdf_from_uml(_uml_pair(explicit=True, weight=3))
        (edge,) = graph.edges
        assert (edge.produce, edge.consume) == (3, 1)
        repetition, _ = repetition_vector(graph)
        assert repetition == {"P": 1, "C": 3}

    def test_implicit_consumption_absorbs_the_burst(self):
        # A loop weight on an implicitly consumed channel is the task
        # graph's communication cost, not a token rate: the CAAM realizes
        # it single-rate, so consumption matches production.
        graph = sdf_from_uml(_uml_pair(explicit=False, weight=3))
        (edge,) = graph.edges
        assert (edge.produce, edge.consume) == (3, 3)
        repetition, _ = repetition_vector(graph)
        assert repetition == {"P": 1, "C": 1}

    def test_actors_are_thread_lifelines(self):
        graph = sdf_from_uml(_uml_pair(explicit=True))
        assert sorted(graph.actors) == ["C", "P"]


class TestCaamLift:
    def test_channels_become_single_rate_edges(self):
        model = _uml_pair(explicit=True)
        caam = synthesize(model, validate=False).caam
        graph = sdf_from_caam(caam)
        assert sorted(graph.actors) == ["C", "P"]
        assert [
            (e.src, e.dst, e.produce, e.consume) for e in graph.edges
        ] == [("P", "C", 1, 1)]

    def test_channel_adjacent_unit_delay_counts_as_initial_token(self):
        # A UnitDelay wired between a CommChannel and its consumer is
        # the §4.2.2 barrier idiom at the communication level; the SDF
        # lift must count it as an initial token on the edge.
        from repro.simulink.caam import SWFIFO, CaamModel, make_channel
        from repro.simulink.model import Block

        caam = CaamModel("m")
        caam.add_cpu("CPU1")
        prod = caam.add_thread("CPU1", "P")
        cons = caam.add_thread("CPU1", "C")
        src = prod.system.add(Block("k", "Constant", inputs=0))
        prod.system.connect(src.output(1), prod.add_outport("o").input(1))
        sink = cons.system.add(Block("t", "Terminator", outputs=0))
        cons.system.connect(cons.add_inport("i").output(1), sink.input(1))
        cpu = caam.cpu("CPU1")
        chan = cpu.system.add(make_channel("ch", SWFIFO))
        delay = cpu.system.add(Block("z", "UnitDelay"))
        cpu.system.connect(prod.output(1), chan.input(1))
        cpu.system.connect(chan.output(1), delay.input(1))
        cpu.system.connect(delay.output(1), cons.input(1))

        graph = sdf_from_caam(caam)
        assert [
            (e.src, e.dst, e.channel, e.delay) for e in graph.edges
        ] == [("P", "C", "ch", 1)]
        analysis = analyze_graph(graph)
        assert analysis.consistent and not analysis.deadlocked
