"""Unit tests for the diagnostic model (repro.analysis.diagnostics)."""

import pytest

from repro.analysis import (
    CODES,
    SEVERITIES,
    AnalysisError,
    AnalysisReport,
    Diagnostic,
    code_severity,
    is_suppressed,
    make_diagnostic,
    severity_rank,
)


class TestSeverities:
    def test_order_is_note_warning_error(self):
        assert SEVERITIES == ("note", "warning", "error")
        assert severity_rank("note") < severity_rank("warning")
        assert severity_rank("warning") < severity_rank("error")

    def test_unknown_severity_rejected(self):
        with pytest.raises(AnalysisError, match="unknown severity"):
            severity_rank("fatal")


class TestCodeRegistry:
    def test_every_code_has_a_valid_default_severity(self):
        for code, (severity, description) in CODES.items():
            assert severity in SEVERITIES, code
            assert description, code

    def test_code_families_cover_the_four_pass_groups(self):
        families = {code[:3] for code in CODES}
        assert families == {"RA1", "RA2", "RA3", "RA4"}

    def test_code_severity_lookup(self):
        assert code_severity("RA101") == "error"
        assert code_severity("RA203") == "warning"
        assert code_severity("RA304") == "note"
        with pytest.raises(AnalysisError, match="unknown diagnostic code"):
            code_severity("RA999")


class TestMakeDiagnostic:
    def test_defaults_severity_from_the_registry(self):
        diagnostic = make_diagnostic("RA201", "ch is never written")
        assert diagnostic.severity == "warning"
        assert diagnostic.code == "RA201"

    def test_explicit_severity_override(self):
        diagnostic = make_diagnostic("RA201", "boom", severity="error")
        assert diagnostic.severity == "error"

    def test_str_carries_code_severity_and_location(self):
        diagnostic = make_diagnostic(
            "RA101", "no operation f", location="interaction 'main'"
        )
        assert (
            str(diagnostic)
            == "RA101 [error] interaction 'main': no operation f"
        )

    def test_empty_element_ids_dropped(self):
        diagnostic = make_diagnostic("RA101", "x", element_ids=("", "id1"))
        assert diagnostic.element_ids == ("id1",)

    def test_to_dict_omits_empty_optionals(self):
        bare = make_diagnostic("RA101", "x").to_dict()
        assert "element_ids" not in bare and "fix_hint" not in bare
        rich = make_diagnostic(
            "RA101", "x", element_ids=("e",), fix_hint="fix it"
        ).to_dict()
        assert rich["element_ids"] == ["e"]
        assert rich["fix_hint"] == "fix it"


class TestSuppression:
    def test_exact_code(self):
        assert is_suppressed("RA203", ["RA203"])
        assert not is_suppressed("RA203", ["RA204"])

    def test_family_wildcard(self):
        assert is_suppressed("RA203", ["RA2xx"])
        assert is_suppressed("RA203", ["RA2XX"])
        assert not is_suppressed("RA303", ["RA2xx"])

    def test_prefix_glob(self):
        assert is_suppressed("RA203", ["RA2*"])
        assert is_suppressed("RA203", ["RA*"])
        assert not is_suppressed("RA203", ["RA3*"])

    def test_case_insensitive_and_whitespace_tolerant(self):
        assert is_suppressed("RA203", [" ra203 "])

    def test_empty_patterns_match_nothing(self):
        assert not is_suppressed("RA203", ["", "  "])


def _report(*severities):
    report = AnalysisReport(subject="m")
    for number, severity in enumerate(severities):
        code = {"note": "RA304", "warning": "RA203", "error": "RA101"}[severity]
        report.diagnostics.append(
            Diagnostic(code=code, severity=severity, message=f"d{number}")
        )
    return report


class TestAnalysisReport:
    def test_counts_and_max_severity(self):
        report = _report("note", "warning", "warning", "error")
        assert report.counts() == {"note": 1, "warning": 2, "error": 1}
        assert report.max_severity() == "error"
        assert not report.clean

    def test_clean_report(self):
        report = _report()
        assert report.clean
        assert report.max_severity() is None
        assert report.counts() == {"note": 0, "warning": 0, "error": 0}

    def test_at_or_above_threshold(self):
        report = _report("note", "warning", "error")
        assert len(report.at_or_above("note")) == 3
        assert len(report.at_or_above("warning")) == 2
        assert len(report.at_or_above("error")) == 1

    def test_extend_routes_suppressed_codes(self):
        report = AnalysisReport(subject="m")
        report.extend(
            [
                make_diagnostic("RA203", "read early"),
                make_diagnostic("RA101", "bad op"),
            ],
            ["RA2xx"],
        )
        assert [d.code for d in report.diagnostics] == ["RA101"]
        assert [d.code for d in report.suppressed] == ["RA203"]

    def test_render_text_lists_findings_and_summary(self):
        report = _report("warning")
        text = report.render_text()
        assert "m: RA203 [warning]" in text
        assert "0 error(s), 1 warning(s), 0 note(s)" in text

    def test_render_text_counts_suppressed(self):
        report = AnalysisReport(subject="m")
        report.extend([make_diagnostic("RA203", "x")], ["RA203"])
        assert "1 suppressed" in report.render_text()

    def test_to_json_shape(self):
        report = _report("error")
        report.passes.append("structure")
        doc = report.to_json()
        assert doc["subject"] == "m"
        assert doc["passes"] == ["structure"]
        assert doc["codes"] == ["RA101"]
        assert doc["diagnostics"][0]["code"] == "RA101"
