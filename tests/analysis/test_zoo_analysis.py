"""Analyzer contracts over the model zoo and the case studies.

The corpus-wide gate: generated scenarios are lint-clean at error
severity, every pathological kind maps to its documented diagnostic
code, and the shipped case studies have a pinned analysis verdict.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import analyze, analyze_synthesized
from repro.apps import crane, didactic, mjpeg, synthetic
from repro.core import synthesize
from repro.zoo import (
    PATHOLOGICAL_EXPECTED_CODES,
    PATHOLOGICAL_KINDS,
    generate_pathological,
    run_corpus,
)
from repro.zoo.strategies import scenarios


class TestCaseStudies:
    @pytest.mark.parametrize("app", [crane, mjpeg, synthetic])
    def test_app_analyzes_clean_at_error(self, app):
        report = analyze_synthesized(app.build_model())
        assert report.at_or_above("error") == []

    def test_crane_is_fully_clean(self):
        assert analyze_synthesized(crane.build_model()).clean

    def test_didactic_has_exactly_the_dead_chain_warnings(self):
        report = analyze_synthesized(didactic.build_model())
        assert report.codes() == ["RA404"]
        assert report.counts()["warning"] == 2


class TestPathologicalKinds:
    def test_every_kind_has_an_expected_code(self):
        assert set(PATHOLOGICAL_EXPECTED_CODES) == set(PATHOLOGICAL_KINDS)

    @pytest.mark.parametrize(
        "kind,code", sorted(PATHOLOGICAL_EXPECTED_CODES.items())
    )
    def test_kind_triggers_its_code(self, kind, code):
        model = generate_pathological(1, kind)
        report = analyze_synthesized(model, subject=kind)
        assert code in report.codes(), report.render_text()


@settings(
    max_examples=int(os.environ.get("REPRO_ZOO_EXAMPLES", "15")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(scenario=scenarios())
def test_generated_scenarios_are_error_clean(scenario):
    result = synthesize(
        scenario.model,
        auto_allocate=scenario.params.auto_allocate,
        behaviors=scenario.behaviors,
    )
    report = analyze(
        scenario.model, result.caam, subject=scenario.params.name
    )
    assert report.at_or_above("error") == [], report.render_text()
    sdf = report.info["sdf"]
    assert sdf["consistent"] and not sdf["deadlocked"]


@pytest.mark.zoo
def test_corpus_sweep_includes_the_analyzer_checks():
    report = run_corpus(seed=7, count=18)
    report.raise_on_failure()
    for scenario in report.scenarios:
        assert "analyze" in scenario.checks
        assert "analyze-sdf" in scenario.checks
