"""One fixture model per diagnostic code.

Every RA code in the registry (except the RA100 fallback) has a minimal
model that triggers it exactly once — the living documentation of what
each code means, and a regression net for the pass implementations.
"""

import pytest

from repro.analysis import CODES, analyze, analyze_synthesized, fsm_diagnostics
from repro.fsm.model import Fsm
from repro.simulink.caam import CaamModel
from repro.simulink.model import Block
from repro.uml import ModelBuilder
from repro.uml.sequence import Lifeline, Message
from repro.uml.statemachine import State, StateMachine
from repro.zoo import FsmSpec, build_state_machine


def _codes(model=None, caam=None, **kw):
    report = analyze(model, caam, subject="m", **kw)
    return [d.code for d in report.diagnostics]


def _base():
    b = ModelBuilder("m")
    b.passive_class("C").op("f", inputs=["x:int"], returns="int")
    b.thread("T1")
    b.thread("T2")
    b.instance("Obj", "C")
    return b


def _machine_model(spec):
    b = ModelBuilder("m")
    b.thread("T1")
    b.interaction("main").call("T1", "T1", "tick", result="x")
    model = b.build()
    model.add_state_machine(build_state_machine(spec))
    return model


def _caam_thread():
    caam = CaamModel("m")
    caam.add_cpu("CPU1")
    return caam, caam.add_thread("CPU1", "T")


# -- RA1xx: structure -------------------------------------------------------


def ra101_unknown_operation():
    b = _base()
    b.interaction("main").call("T1", "Obj", "missing_op")
    return _codes(b.build())


def ra102_bad_arity():
    b = _base()
    # literal args: variable names would add an RA203 on top
    b.interaction("main").call("T1", "Obj", "f", args=[1, 2])
    return _codes(b.build())


def ra103_lifeline_without_instance():
    b = _base()
    b.interaction("main").call("T1", "T1", "tick", result="x")
    model = b.build()
    interaction = model.interactions[0]
    ghost = interaction.add_lifeline(Lifeline("Ghost"))
    interaction.add_message(Message(interaction.lifeline("T1"), ghost, "f"))
    return _codes(model)


def ra104_bad_stereotype():
    b = _base()
    b.model.instance("T1").apply_stereotype("NotAProfile")
    b.interaction("main").call("T1", "T2", "setX", args=[1])
    return _codes(b.build())


def ra105_missing_behavior():
    b = _base()
    b.passive_class("D").op("g").body("ghost_beh", "uml")
    b.instance("Od", "D")
    b.interaction("main").call("T1", "Od", "g")
    return _codes(b.build())


def ra106_undeployed_thread():
    b = _base()
    b.processor("CPU1", threads=["T1"])  # T2 left undeployed
    b.interaction("main").call("T1", "T2", "setX", args=[1])
    return _codes(b.build(), options={"require_deployment": True})


def ra107_setget_on_passive():
    b = _base()
    b.instance("Plain")
    b.interaction("main").call("T1", "Plain", "setThing", args=[1])
    return _codes(b.build())


def ra108_synthesis_failure():
    b = ModelBuilder("m")
    b.thread("T1")  # no interaction: nothing to cluster or deploy
    report = analyze_synthesized(b.build(), subject="m")
    return [d.code for d in report.diagnostics]


# -- RA2xx: channels --------------------------------------------------------


def ra201_dangling_get():
    b = _base()
    sd = b.interaction("main")
    sd.call("T1", "T2", "getD", result="x")
    sd.call("T1", "T1", "use", args=["x"], result="y")
    return _codes(b.build())


def _cycle_model():
    b = ModelBuilder("m")
    b.thread("A")
    b.thread("B")
    sd = b.interaction("main")
    sd.call("A", "A", "mk", result="p")
    sd.call("A", "B", "setC1", args=["p"])
    sd.call("B", "A", "getC1", result="x")
    sd.call("B", "B", "mk2", args=["x"], result="q")
    sd.call("B", "A", "setC2", args=["q"])
    sd.call("A", "B", "getC2", result="z")
    sd.call("A", "A", "use", args=["z"], result="w")
    return b.build()


def ra202_channel_cycle():
    return _codes(_cycle_model())


def ra203_read_before_produce():
    b = _base()
    b.interaction("main").call("T1", "T2", "setX", args=["ghost"])
    return _codes(b.build())


def ra204_concurrent_write():
    b = ModelBuilder("m")
    for thread in ("A", "B", "C", "D"):
        b.thread(thread)
    sd = b.interaction("main")
    sd.call("A", "A", "mkA", result="x")
    sd.call("A", "B", "setData", args=["x"])
    sd.call("C", "C", "mkC", result="y")
    sd.call("C", "D", "setData", args=["y"])
    return _codes(b.build())


# -- RA3xx: state machines --------------------------------------------------


def ra301_unreachable_state():
    spec = FsmSpec(
        name="ctl",
        states=("s0", "s1", "orphan"),
        initial="s0",
        events=("go",),
        transitions=(("s0", "s1", "go", "", ""), ("s1", "s0", "go", "", "")),
    )
    return _codes(_machine_model(spec))


def ra302_shadowed_transition():
    spec = FsmSpec(
        name="ctl",
        states=("s0", "s1"),
        initial="s0",
        events=("go",),
        transitions=(
            ("s0", "s1", "go", "", ""),  # unconditional: always wins
            ("s0", "s1", "go", "n > 1", ""),
        ),
    )
    return _codes(_machine_model(spec))


def ra303_overlapping_guards():
    spec = FsmSpec(
        name="ctl",
        states=("s0", "s1"),
        initial="s0",
        events=("go",),
        transitions=(
            ("s0", "s1", "go", "n < 1", ""),
            ("s0", "s0", "go", "n > 2", ""),  # shares the variable n
        ),
    )
    return _codes(_machine_model(spec))


def ra304_unused_variable():
    # UML machines carry no variable declarations; exercise the check on
    # a hand-built flat machine through the public fsm_diagnostics API.
    fsm = Fsm("ctl")
    fsm.add_state("s0")
    fsm.add_transition("s0", "s0", event="go")
    fsm.add_variable("unused", 0.0)
    return [d.code for d in fsm_diagnostics(fsm)]


def ra305_no_initial_state():
    machine = StateMachine("broken")
    machine.main_region().add_vertex(State("s0"))  # no initial pseudostate
    b = ModelBuilder("m")
    b.thread("T1")
    b.interaction("main").call("T1", "T1", "tick", result="x")
    model = b.build()
    model.add_state_machine(machine)
    return _codes(model)


# -- RA4xx: dataflow / SDF --------------------------------------------------


def ra401_rate_inconsistency():
    b = ModelBuilder("m")
    b.thread("A")
    b.thread("B")
    sd = b.interaction("main")
    sd.call("A", "A", "mkP", result="p")
    loop = sd.loop(iterations=2)
    loop.call("A", "B", "setC1", args=["p"])
    sd.call("A", "B", "setC2", args=["p"])
    sd.call("B", "A", "getC1", result="x1")
    sd.call("B", "A", "getC2", result="x2")
    sd.call("B", "B", "useB", args=["x1", "x2"], result="z")
    return _codes(b.build())


def ra402_deadlock():
    return _codes(_cycle_model())


def ra403_unconnected_input():
    caam, thread = _caam_thread()
    thread.system.add(Block("g", "Gain"))  # input port never driven
    return _codes(caam=caam)


def ra404_dead_block():
    caam, thread = _caam_thread()
    src = thread.system.add(Block("s1", "Sine", inputs=0))
    gain = thread.system.add(Block("g1", "Gain"))
    scope = thread.system.add(Block("sc", "Scope", outputs=0))
    thread.system.connect(src.output(1), gain.input(1))
    thread.system.connect(gain.output(1), scope.input(1))
    thread.system.add(Block("s2", "Sine", inputs=0))  # reaches no sink
    return _codes(caam=caam)


def ra405_constant_subgraph():
    caam, thread = _caam_thread()
    const = thread.system.add(Block("k", "Constant", inputs=0))
    gain = thread.system.add(Block("g1", "Gain"))
    scope = thread.system.add(Block("sc", "Scope", outputs=0))
    thread.system.connect(const.output(1), gain.input(1))
    thread.system.connect(gain.output(1), scope.input(1))
    return _codes(caam=caam)


def ra406_repetition_too_large():
    b = ModelBuilder("m")
    for thread in ("A", "B", "C"):
        b.thread(thread)
    sd = b.interaction("main")
    sd.call("A", "A", "mk", result="p")
    sd.loop(iterations=1000).call("A", "B", "setC1", args=["p"])
    sd.call("B", "A", "getC1", result="x")
    sd.call("B", "B", "m2", args=["x"], result="q")
    sd.loop(iterations=1000).call("B", "C", "setC2", args=["q"])
    sd.call("C", "B", "getC2", result="z")
    sd.call("C", "C", "use", args=["z"], result="w")
    return _codes(b.build())


FIXTURES = {
    "RA101": ra101_unknown_operation,
    "RA102": ra102_bad_arity,
    "RA103": ra103_lifeline_without_instance,
    "RA104": ra104_bad_stereotype,
    "RA105": ra105_missing_behavior,
    "RA106": ra106_undeployed_thread,
    "RA107": ra107_setget_on_passive,
    "RA108": ra108_synthesis_failure,
    "RA201": ra201_dangling_get,
    "RA202": ra202_channel_cycle,
    "RA203": ra203_read_before_produce,
    "RA204": ra204_concurrent_write,
    "RA301": ra301_unreachable_state,
    "RA302": ra302_shadowed_transition,
    "RA303": ra303_overlapping_guards,
    "RA304": ra304_unused_variable,
    "RA305": ra305_no_initial_state,
    "RA401": ra401_rate_inconsistency,
    "RA402": ra402_deadlock,
    "RA403": ra403_unconnected_input,
    "RA404": ra404_dead_block,
    "RA405": ra405_constant_subgraph,
    "RA406": ra406_repetition_too_large,
}

#: Codes a fixture legitimately co-triggers (a channel cycle without
#: initial tokens is both RA202 and an SDF deadlock RA402).
ALLOWED_EXTRAS = {
    "RA202": {"RA402"},
    "RA402": {"RA202"},
}


def test_every_registered_code_has_a_fixture():
    assert set(FIXTURES) == set(CODES) - {"RA100"}


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_fixture_triggers_its_code_exactly_once(code):
    observed = FIXTURES[code]()
    assert observed.count(code) == 1, observed
    extras = set(observed) - {code} - ALLOWED_EXTRAS.get(code, set())
    assert not extras, f"unexpected co-triggered codes: {sorted(extras)}"
