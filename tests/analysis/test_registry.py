"""Pass registry and driver tests (repro.analysis.registry)."""

import pytest

from repro import obs
from repro.analysis import (
    AnalysisError,
    analyze,
    analyze_synthesized,
    make_diagnostic,
    pass_names,
    register_pass,
    registered_passes,
)
from repro.analysis import registry as registry_module
from repro.uml import ModelBuilder


def _clean_model():
    b = ModelBuilder("demo")
    b.thread("T1")
    b.thread("T2")
    sd = b.interaction("main")
    sd.call("T1", "T1", "mk", result="v")
    sd.call("T1", "T2", "setX", args=["v"])
    return b.build()


class TestRegistry:
    def test_default_pass_order(self):
        assert pass_names() == [
            "structure",
            "channels",
            "fsm",
            "sdf",
            "dataflow",
        ]

    def test_registered_passes_carry_code_families(self):
        families = {entry.name: entry.codes for entry in registered_passes()}
        assert families["structure"] == "RA1xx"
        assert families["channels"] == "RA2xx"
        assert families["fsm"] == "RA3xx"

    def test_custom_pass_runs_everywhere(self):
        def nag(context):
            return [make_diagnostic("RA304", "custom pass says hi")]

        register_pass("nag", "RA3xx", nag)
        try:
            assert "nag" in pass_names()
            report = analyze(_clean_model())
            assert "nag" in report.passes
            assert "RA304" in report.codes()
        finally:
            del registry_module._REGISTRY["nag"]
        assert "nag" not in pass_names()


class TestAnalyze:
    def test_needs_model_or_caam(self):
        with pytest.raises(AnalysisError, match="needs a UML model"):
            analyze()

    def test_unknown_pass_rejected(self):
        with pytest.raises(AnalysisError, match="unknown analysis pass"):
            analyze(_clean_model(), passes=["structure", "nope"])

    def test_subject_defaults_to_model_name(self):
        assert analyze(_clean_model()).subject == "demo"
        assert analyze(_clean_model(), subject="other").subject == "other"

    def test_pass_subset_runs_only_selected(self):
        report = analyze(_clean_model(), passes=["structure", "sdf"])
        assert report.passes == ["structure", "sdf"]
        assert "sdf" in report.info

    def test_suppress_routes_to_suppressed(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.thread("T2")
        b.interaction("main").call("T1", "T2", "setX", args=["ghost"])
        report = analyze(b.build(), suppress=["RA2xx"])
        assert report.clean
        assert [d.code for d in report.suppressed] == ["RA203"]

    def test_obs_spans_and_counters(self):
        rec = obs.Recorder()
        with obs.use(rec):
            analyze(_clean_model())
        names = [span.name for span in rec.finished_spans()]
        assert "analysis.analyze" in names
        for name in pass_names():
            assert f"analysis.pass.{name}" in names
        assert rec.metrics.counter("analysis.runs") == 1.0


class TestAnalyzeSynthesized:
    def test_clean_model_gets_both_levels(self):
        report = analyze_synthesized(_clean_model())
        assert report.clean
        assert "RA108" not in report.codes()
        # the dataflow pass only runs with a CAAM; its info block proves
        # synthesis happened and the CAAM-side passes saw it
        assert report.info["dataflow"]["blocks"] > 0

    def test_synthesis_failure_degrades_to_ra108(self):
        b = ModelBuilder("m")
        b.thread("T1")  # nothing to synthesize
        report = analyze_synthesized(b.build())
        assert report.codes() == ["RA108"]
        assert "dataflow" not in report.info

    def test_pass_selection_is_forwarded(self):
        report = analyze_synthesized(_clean_model(), passes=["structure"])
        assert report.passes == ["structure"]
