"""Unit tests for the analyzer-facing validators in ``tools/``."""

import json
import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "..", "tools")
)
from validate_sarif import validate_sarif  # noqa: E402
from validate_sarif import main as sarif_main  # noqa: E402
from validate_trace import validate_bench_analysis  # noqa: E402

from repro.analysis import AnalysisReport, make_diagnostic, to_sarif


def _bench_analysis():
    passes = {
        name: {"calls": 31, "total_s": 0.01}
        for name in ("structure", "channels", "fsm", "sdf", "dataflow")
    }
    return {
        "analysis": {
            "corpus_seed": 42,
            "corpus_models": 30,
            "corpus_analyze_s": 0.05,
            "models_per_sec": 600.0,
            "diagnostics": 7,
            "error_diagnostics": 0,
            "crane_analyze_s": 0.008,
            "crane_clean": True,
            "passes": passes,
        }
    }


class TestBenchAnalysis:
    def test_valid_section_passes(self):
        validate_bench_analysis(_bench_analysis())

    def test_missing_section(self):
        with pytest.raises(ValueError, match="lacks an 'analysis' object"):
            validate_bench_analysis({})

    def test_missing_field(self):
        document = _bench_analysis()
        del document["analysis"]["models_per_sec"]
        with pytest.raises(ValueError, match="models_per_sec"):
            validate_bench_analysis(document)

    def test_error_findings_fail_the_gate(self):
        document = _bench_analysis()
        document["analysis"]["error_diagnostics"] = 3
        with pytest.raises(ValueError, match="lint gate"):
            validate_bench_analysis(document)

    def test_missing_pass_timing(self):
        document = _bench_analysis()
        del document["analysis"]["passes"]["sdf"]
        with pytest.raises(ValueError, match="'sdf'"):
            validate_bench_analysis(document)

    def test_undercounted_pass(self):
        document = _bench_analysis()
        document["analysis"]["passes"]["fsm"]["calls"] = 2
        with pytest.raises(ValueError, match="ran 2 times"):
            validate_bench_analysis(document)


def _sarif_document():
    report = AnalysisReport(subject="m")
    report.info["uri"] = "m.xmi"
    report.extend(
        [
            make_diagnostic("RA101", "no op", location="interaction 'main'"),
            make_diagnostic("RA203", "read early"),
        ],
        [],
    )
    return to_sarif([report])


class TestValidateSarif:
    def test_emitter_output_is_valid(self):
        assert validate_sarif(_sarif_document()) == 2

    def test_wrong_version(self):
        document = _sarif_document()
        document["version"] = "2.0.0"
        with pytest.raises(ValueError, match="version"):
            validate_sarif(document)

    def test_rule_index_mismatch(self):
        document = _sarif_document()
        document["runs"][0]["results"][0]["ruleIndex"] = 1
        with pytest.raises(ValueError, match="resolves to"):
            validate_sarif(document)

    def test_bad_level(self):
        document = _sarif_document()
        document["runs"][0]["results"][0]["level"] = "fatal"
        with pytest.raises(ValueError, match="bad level"):
            validate_sarif(document)

    def test_missing_logical_location(self):
        document = _sarif_document()
        del document["runs"][0]["results"][0]["locations"][0][
            "logicalLocations"
        ]
        with pytest.raises(ValueError, match="logicalLocations"):
            validate_sarif(document)

    def test_suppressions_validated(self):
        document = _sarif_document()
        document["runs"][0]["results"][0]["suppressions"] = [
            {"kind": "weird"}
        ]
        with pytest.raises(ValueError, match="suppression kind"):
            validate_sarif(document)

    def test_cli_min_results(self, tmp_path, capsys):
        path = tmp_path / "log.sarif"
        path.write_text(json.dumps(_sarif_document()))
        assert sarif_main([str(path), "--min-results", "2"]) == 0
        assert "valid SARIF 2.1.0" in capsys.readouterr().out
        assert sarif_main([str(path), "--min-results", "3"]) == 1
        assert "expected at least 3" in capsys.readouterr().err
