"""The ``analyze`` job kind: spec validation and served SARIF artifact."""

import json

import pytest

from repro.core.flow import FlowError
from repro.server import JobSpec, SpecError
from repro.server.executor import execute
from repro.server.jobs import ANALYZE_OPTIONS, KINDS


class TestSpecValidation:
    def test_analyze_is_a_kind(self):
        assert "analyze" in KINDS

    def test_analyze_kind_admitted(self):
        spec = JobSpec(
            kind="analyze",
            demo="didactic",
            options={"suppress": ["RA404"], "passes": ["structure"]},
        )
        assert spec.validate() is spec

    def test_option_set_documented(self):
        assert ANALYZE_OPTIONS == {
            "passes",
            "suppress",
            "require_deployment",
            "use_cache",
        }

    def test_unknown_option_rejected(self):
        with pytest.raises(SpecError) as excinfo:
            JobSpec(
                kind="analyze", demo="didactic", options={"surpress": []}
            ).validate()
        assert "'surpress'" in str(excinfo.value)


class TestExecutorValidation:
    def test_bad_suppress_type(self):
        spec = JobSpec(
            kind="analyze", demo="didactic", options={"suppress": "RA404"}
        )
        with pytest.raises(FlowError, match="suppress"):
            execute(spec)

    def test_unknown_pass_name(self):
        spec = JobSpec(
            kind="analyze", demo="didactic", options={"passes": ["nope"]}
        )
        with pytest.raises(FlowError, match="unknown analysis pass"):
            execute(spec)


class TestExecution:
    def test_didactic_payload_and_sarif_artifact(self):
        outcome = execute(JobSpec(kind="analyze", demo="didactic"))
        assert outcome.artifact_name == "didactic.sarif"
        payload = outcome.payload
        assert payload["model"] == "didactic"
        assert payload["codes"] == ["RA404"]
        assert payload["max_severity"] == "warning"
        assert payload["counts"]["warning"] == 2
        assert payload["sdf"]["consistent"] is True
        doc = json.loads(outcome.artifact_text)
        assert doc["version"] == "2.1.0"
        assert len(doc["runs"][0]["results"]) == 2

    def test_suppression_is_counted_and_marked(self):
        outcome = execute(
            JobSpec(
                kind="analyze",
                demo="didactic",
                options={"suppress": ["RA4xx"]},
            )
        )
        assert outcome.payload["codes"] == []
        assert outcome.payload["suppressed"] == 2
        doc = json.loads(outcome.artifact_text)
        for result in doc["runs"][0]["results"]:
            assert result["suppressions"] == [{"kind": "external"}]

    def test_pass_subset(self):
        outcome = execute(
            JobSpec(
                kind="analyze",
                demo="didactic",
                options={"passes": ["structure", "channels"]},
            )
        )
        assert outcome.payload["passes"] == ["structure", "channels"]
        assert outcome.payload["codes"] == []
        assert outcome.payload["sdf"] == {}
