"""Manifest reproducibility: same seed, same bytes."""

import json

import pytest

from repro.zoo import (
    ZooError,
    build_manifest,
    read_manifest,
    render_manifest,
    verify_manifest,
    write_manifest,
)


class TestManifest:
    def test_regeneration_is_byte_identical(self):
        a = render_manifest(build_manifest(21, 12))
        b = render_manifest(build_manifest(21, 12))
        assert a == b

    def test_no_timestamps(self):
        document = build_manifest(21, 6)
        assert "generated" not in render_manifest(document)

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "corpus.json")
        document = build_manifest(21, 6)
        write_manifest(path, document)
        assert read_manifest(path) == json.loads(render_manifest(document))

    def test_verify_ok(self):
        assert verify_manifest(build_manifest(21, 6)) == []

    def test_verify_detects_tampering(self):
        document = build_manifest(21, 6)
        victim = document["scenarios"][2]
        victim["model_fingerprint"] = "0" * 64
        recompute = build_manifest(21, 6)
        document["corpus_digest"] = "not-" + str(recompute["corpus_digest"])
        problems = verify_manifest(document)
        assert problems
        assert any(victim["name"] in problem for problem in problems)

    def test_verify_flags_generator_version_skew(self):
        document = build_manifest(21, 6)
        document["generator_version"] = -1
        problems = verify_manifest(document)
        assert problems and "generator version" in problems[0]

    def test_read_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(ZooError, match="not a zoo manifest"):
            read_manifest(str(path))
