"""The full-corpus acceptance sweep (marked `zoo`: CI's quick leg skips it).

``REPRO_ZOO_COUNT`` scales the corpus (CI's zoo-smoke runs 50; the
acceptance bar is >= 500, which completes in a few seconds — see
docs/testing.md).
"""

import os

import pytest

from repro.zoo import build_manifest, render_manifest, run_corpus

CORPUS_SEED = 42
CORPUS_COUNT = int(os.environ.get("REPRO_ZOO_COUNT", "120"))


@pytest.mark.zoo
@pytest.mark.slow
class TestFullCorpus:
    def test_corpus_full_flow_differential(self):
        report = run_corpus(CORPUS_SEED, CORPUS_COUNT, deep=True)
        assert report.ok, report.summary()
        assert report.passed == CORPUS_COUNT

    def test_manifest_reproducible_at_scale(self):
        count = min(CORPUS_COUNT, 60)
        first = render_manifest(build_manifest(CORPUS_SEED, count))
        second = render_manifest(build_manifest(CORPUS_SEED, count))
        assert first == second
