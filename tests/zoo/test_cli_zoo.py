"""The `repro zoo` command: generate / run / bench."""

import json

from repro.cli import main


class TestZooGenerate:
    def test_manifest_to_stdout(self, capsys):
        assert main(["zoo", "generate", "--count", "3"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["count"] == 3
        assert len(document["scenarios"]) == 3

    def test_manifest_file_and_xmi_export(self, tmp_path, capsys):
        manifest = tmp_path / "corpus.json"
        xmi_dir = tmp_path / "models"
        assert (
            main(
                [
                    "zoo",
                    "generate",
                    "--count",
                    "4",
                    "--manifest",
                    str(manifest),
                    "--xmi-dir",
                    str(xmi_dir),
                ]
            )
            == 0
        )
        document = json.loads(manifest.read_text(encoding="utf-8"))
        assert len(list(xmi_dir.glob("*.xmi"))) == 4
        names = {record["name"] for record in document["scenarios"]}
        assert {p.stem for p in xmi_dir.glob("*.xmi")} == names

    def test_bad_family_is_a_cli_error(self, capsys):
        # CliError maps to the CLI's usage-error status (2).
        assert main(["zoo", "generate", "--families", "spaghetti"]) == 2
        assert "unknown scenario families" in capsys.readouterr().err


class TestZooRun:
    def test_corpus_green(self, capsys):
        assert main(["zoo", "run", "--count", "6"]) == 0
        out = capsys.readouterr().out
        assert "6/6 scenarios ok" in out

    def test_verify_manifest_first(self, tmp_path, capsys):
        manifest = tmp_path / "corpus.json"
        assert (
            main(
                ["zoo", "generate", "--count", "3", "--manifest", str(manifest)]
            )
            == 0
        )
        assert (
            main(
                [
                    "zoo",
                    "run",
                    "--count",
                    "3",
                    "--verify",
                    str(manifest),
                ]
            )
            == 0
        )
        assert "reproduces byte-identically" in capsys.readouterr().out

    def test_verify_rejects_tampered_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "corpus.json"
        main(["zoo", "generate", "--count", "3", "--manifest", str(manifest)])
        document = json.loads(manifest.read_text(encoding="utf-8"))
        document["corpus_digest"] = "0" * 64
        document["scenarios"][0]["model_fingerprint"] = "0" * 64
        manifest.write_text(json.dumps(document), encoding="utf-8")
        assert (
            main(["zoo", "run", "--count", "3", "--verify", str(manifest)])
            == 1
        )
        assert "manifest:" in capsys.readouterr().err


class TestZooBench:
    def test_bench_json(self, capsys):
        assert main(["zoo", "bench", "--count", "6", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["models"] == 6
        assert stats["models_per_sec_cold"] > 0
        assert stats["models_per_sec_warm"] > 0
        assert stats["warm_hit_rate"] == 1.0
        assert stats["artifacts_identical"] is True

    def test_bench_summary_line(self, capsys):
        assert main(["zoo", "bench", "--count", "4"]) == 0
        assert "synthesize the zoo" in capsys.readouterr().out
