"""The differential harness: invariants hold, failures are reported."""

import pytest

from repro.zoo import (
    FAMILIES,
    HarnessReport,
    ScenarioFailure,
    ScenarioReport,
    ZooError,
    check_scenario,
    generate_scenario,
    run_corpus,
)


class TestCheckScenario:
    def test_pipeline_passes_fast_checks(self):
        report = check_scenario(generate_scenario(3, 0, "pipeline"))
        assert report.ok, report.failures
        assert "differential" in report.checks
        assert "run-many" in report.checks
        assert report.episodes >= 1

    def test_cyclic_inserts_barriers(self):
        report = check_scenario(generate_scenario(3, 3, "cyclic"), deep=True)
        assert report.ok, report.failures
        assert report.barriers >= 1
        assert "barriers-necessary" in report.checks

    def test_deep_adds_rebuild_check(self):
        report = check_scenario(generate_scenario(3, 1, "fanout"), deep=True)
        assert report.ok, report.failures
        assert "rebuild" in report.checks

    def test_fsm_checks_run_per_machine(self):
        scenario = generate_scenario(3, 4, "fsm")
        report = check_scenario(scenario, deep=True)
        assert report.ok, report.failures
        for spec in scenario.params.fsms:
            assert f"fsm:{spec.name}" in report.checks

    def test_deep_adds_batch_differential_check(self):
        pytest.importorskip("numpy")
        for index, family in enumerate(("pipeline", "cyclic", "fsm")):
            report = check_scenario(
                generate_scenario(5, index, family), deep=True
            )
            assert report.ok, report.failures
            assert "batch-differential" in report.checks

    def test_broken_behavior_is_reported_not_raised(self):
        scenario = generate_scenario(3, 0, "pipeline")
        # Sabotage one behavior so synthesis/simulation cannot succeed;
        # the harness must degrade to a failure record, never an exception.
        victim = next(iter(scenario.behaviors))
        scenario.behaviors[victim] = "not-a-callable"
        report = check_scenario(scenario)
        assert not report.ok
        assert report.failures[0].scenario == scenario.name


class TestRunCorpus:
    def test_small_corpus_all_green(self):
        report = run_corpus(3, len(FAMILIES))
        assert report.ok, report.summary()
        assert report.passed == len(FAMILIES)
        assert sorted({r.family for r in report.scenarios}) == sorted(FAMILIES)

    def test_progress_callback(self):
        seen = []
        run_corpus(3, 2, progress=lambda done, total, r: seen.append(done))
        assert seen == [1, 2]

    def test_summary_and_raise(self):
        report = HarnessReport(seed=1, count=1, families=("pipeline",))
        broken = ScenarioReport(name="s", family="pipeline", index=0)
        broken.failures.append(
            ScenarioFailure(scenario="s", check="differential", detail="boom")
        )
        report.scenarios.append(broken)
        assert "FAIL s: [differential] boom" in report.summary()
        with pytest.raises(ZooError, match="differential"):
            report.raise_on_failure()
