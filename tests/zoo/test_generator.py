"""Generator determinism, family coverage, and pathological supply."""

import json

import pytest

from repro.parallel.fingerprint import model_fingerprint
from repro.uml.validate import validate_model
from repro.zoo import (
    FAMILIES,
    PATHOLOGICAL_KINDS,
    ZooError,
    build_fsm,
    build_scenario,
    draw_params,
    generate_corpus,
    generate_pathological,
    generate_scenario,
    scenario_families,
    stimuli_for,
)


class TestDeterminism:
    def test_same_seed_same_models(self):
        first = [model_fingerprint(s.model) for s in generate_corpus(11, 12)]
        second = [model_fingerprint(s.model) for s in generate_corpus(11, 12)]
        assert first == second

    def test_different_seeds_differ(self):
        a = [model_fingerprint(s.model) for s in generate_corpus(1, 6)]
        b = [model_fingerprint(s.model) for s in generate_corpus(2, 6)]
        assert a != b

    def test_params_alone_rebuild_the_model(self):
        for index, family in enumerate(FAMILIES):
            scenario = generate_scenario(5, index, family)
            rebuilt = build_scenario(scenario.params)
            assert model_fingerprint(rebuilt.model) == model_fingerprint(
                scenario.model
            ), family

    def test_stimuli_are_seeded(self):
        scenario = generate_scenario(5, 0, "pipeline")
        names = ["In1", "In2"]
        assert stimuli_for(scenario.params, names) == stimuli_for(
            scenario.params, names
        )


class TestFamilySchedule:
    def test_round_robin_covers_all_families(self):
        schedule = scenario_families(len(FAMILIES) * 3)
        assert schedule == list(FAMILIES) * 3

    def test_family_subset(self):
        assert scenario_families(4, ("cyclic", "fsm")) == [
            "cyclic",
            "fsm",
            "cyclic",
            "fsm",
        ]

    def test_unknown_family_rejected(self):
        with pytest.raises(ZooError, match="unknown scenario family"):
            scenario_families(3, ("pipeline", "spaghetti"))

    def test_empty_corpus_rejected(self):
        with pytest.raises(ZooError, match="at least 1"):
            list(generate_corpus(1, 0))


class TestScenarioShape:
    def test_every_family_validates_cleanly(self):
        for index, family in enumerate(FAMILIES):
            scenario = generate_scenario(9, index, family)
            errors = [
                issue
                for issue in validate_model(scenario.model)
                if issue.severity == "error"
            ]
            assert errors == [], (family, errors)

    def test_params_are_json_serializable(self):
        scenario = generate_scenario(9, 5, "hybrid")
        text = json.dumps(scenario.params.to_dict(), sort_keys=True)
        assert scenario.params.name in text

    def test_fsm_families_carry_machines(self):
        fsm = generate_scenario(9, 4, "fsm")
        hybrid = generate_scenario(9, 5, "hybrid")
        assert fsm.params.fsms
        assert hybrid.params.fsms
        assert any(spec.composite for spec in hybrid.params.fsms)

    def test_cyclic_family_declares_feedback(self):
        scenario = generate_scenario(9, 3, "cyclic")
        assert scenario.params.feedback

    def test_build_fsm_declares_variables(self):
        spec = generate_scenario(9, 4, "fsm").params.fsms[0]
        fsm = build_fsm(spec)
        assert dict(spec.variables) == fsm.variables


class TestPathological:
    @pytest.mark.parametrize("kind", PATHOLOGICAL_KINDS)
    def test_kinds_build(self, kind):
        model = generate_pathological(1, kind)
        assert model.interactions

    def test_unknown_kind_rejected(self):
        with pytest.raises(ZooError, match="unknown pathological kind"):
            generate_pathological(1, "haunted")

    def test_draw_params_unknown_family(self):
        with pytest.raises(ZooError):
            draw_params(1, 0, "spaghetti")
