"""Shared fixtures: every test here runs with an isolated cache config."""

import pytest

from repro.parallel import cache, pool


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch):
    """Scope the process-wide synthesis cache to the test.

    Clears the cache environment variables, resets the configuration to
    its environment-driven default, and restores whatever state the test
    session had afterwards — tests can flip the cache on and off freely
    without leaking into the rest of the suite.
    """
    for var in ("REPRO_CACHE", "REPRO_CACHE_DIR", "REPRO_NO_CACHE"):
        monkeypatch.delenv(var, raising=False)
    state = cache.snapshot()
    cache.configure(enabled=None, directory=None)
    yield
    cache.restore(state)


@pytest.fixture(autouse=True)
def force_pool_workers(monkeypatch):
    """Disable the CPU-count worker clamp for the differential tests.

    These tests exist to prove the *pool machinery* produces results
    byte-identical to the serial path, so they must actually fork
    workers even on a 1-core CI host where `resolve_workers` would
    otherwise (correctly) collapse every request to serial.
    """
    monkeypatch.setenv(pool.WORKERS_FORCE_ENV, "1")
