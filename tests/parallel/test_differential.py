"""Differential tests: parallel explorers must be bit-equal to serial ones.

The contract under test (docs/parallel.md): for any task graph, running an
explorer with ``workers=N`` returns the *same candidate list in the same
order* as ``workers=1`` — parallelism is an execution substrate, never an
answer-changer.  A seeded RNG generates the graphs so failures replay.
"""

import random

import pytest

from repro.core.taskgraph import TaskGraph
from repro.dse.explore import (
    exhaustive_explore,
    explore,
    greedy_explore,
)
from repro.parallel.pool import (
    EvaluationPool,
    batch_size_for,
    resolve_workers,
)


def canonical(candidate):
    """A comparable, content-only rendering of a candidate."""
    return (
        candidate.objective,
        candidate.plan.as_mapping(),
        candidate.plan.cpus,
        candidate.estimate,
    )


def random_graph(rng: random.Random, threads: int) -> TaskGraph:
    """A random weighted digraph over ``threads`` nodes (may have cycles)."""
    graph = TaskGraph()
    names = [f"T{i}" for i in range(threads)]
    for name in names:
        graph.add_node(name, float(rng.randint(1, 4)))
    for src in names:
        for dst in names:
            if src != dst and rng.random() < 0.35:
                graph.add_edge(src, dst, float(rng.randint(1, 8) * 32))
    return graph

#: Seeds × sizes; ≤8 threads keeps Bell numbers (≤4140) test-friendly.
CASES = [(seed, 3 + seed % 6) for seed in range(6)]


class TestExhaustiveDifferential:
    @pytest.mark.parametrize("seed,threads", CASES)
    def test_workers4_equals_serial(self, seed, threads):
        graph = random_graph(random.Random(seed), threads)
        serial = exhaustive_explore(graph, workers=1)
        parallel = exhaustive_explore(graph, workers=4)
        assert [canonical(c) for c in serial] == [
            canonical(c) for c in parallel
        ]

    def test_objective_and_max_cpus_survive_parallelism(self):
        graph = random_graph(random.Random(99), 6)
        serial = exhaustive_explore(
            graph, workers=1, objective="throughput", max_cpus=3
        )
        parallel = exhaustive_explore(
            graph, workers=4, objective="throughput", max_cpus=3
        )
        assert [canonical(c) for c in serial] == [
            canonical(c) for c in parallel
        ]
        assert all(c.cpu_count <= 3 for c in parallel)

    def test_small_task_counts_stay_serial_but_equal(self):
        # Two threads → 2 partitions ≤ workers: the pool is skipped
        # entirely, and the answer is still the same by construction.
        graph = random_graph(random.Random(1), 2)
        assert [canonical(c) for c in exhaustive_explore(graph, workers=8)] == [
            canonical(c) for c in exhaustive_explore(graph, workers=1)
        ]


class TestGreedyDifferential:
    @pytest.mark.parametrize("seed,threads", CASES)
    def test_workers4_equals_serial(self, seed, threads):
        graph = random_graph(random.Random(100 + seed), threads)
        serial = greedy_explore(graph, workers=1)
        parallel = greedy_explore(graph, workers=4)
        assert [canonical(c) for c in serial] == [
            canonical(c) for c in parallel
        ]

    @pytest.mark.parametrize("seed,threads", CASES)
    def test_greedy_never_beats_exhaustive_optimum(self, seed, threads):
        graph = random_graph(random.Random(200 + seed), threads)
        optimum = exhaustive_explore(graph, workers=1)[0]
        best_greedy = greedy_explore(graph, workers=4)[0]
        assert optimum.metric <= best_greedy.metric


class TestFrontDoorDifferential:
    def test_explore_workers_param_routes_through(self):
        graph = random_graph(random.Random(7), 5)
        assert [canonical(c) for c in explore(graph, workers=4)] == [
            canonical(c) for c in explore(graph, workers=1)
        ]


class TestPoolMechanics:
    def test_resolve_workers_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(2) == 2
        assert resolve_workers(None) == 8

    def test_resolve_workers_defaults_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        assert resolve_workers(None) == 1
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert resolve_workers(None) == 1

    def test_resolve_workers_clamps_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS_FORCE", raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 2)
        assert resolve_workers(8) == 2
        assert resolve_workers(1) == 1
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        assert resolve_workers(4) == 1
        # cpu_count() may legitimately answer None: treat as 1 core.
        monkeypatch.setattr("os.cpu_count", lambda: None)
        assert resolve_workers(4) == 1

    def test_resolve_workers_force_env_disables_clamp(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        monkeypatch.setenv("REPRO_WORKERS_FORCE", "1")
        assert resolve_workers(4) == 4
        monkeypatch.setenv("REPRO_WORKERS_FORCE", "0")
        assert resolve_workers(4) == 1

    def test_batch_size_targets_batches_per_worker(self):
        assert batch_size_for(1000, 4) == 63
        assert batch_size_for(3, 4) == 1

    def test_pool_rejects_single_worker(self):
        graph = random_graph(random.Random(3), 3)
        with pytest.raises(ValueError):
            EvaluationPool(graph, workers=1)

    def test_pool_evaluates_empty_input(self):
        graph = random_graph(random.Random(3), 3)
        with EvaluationPool(graph, workers=2) as pool:
            assert pool.evaluate([]) == []
