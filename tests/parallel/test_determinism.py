"""Determinism properties of the content-addressed synthesis cache.

The cache must be *observationally invisible*: for the same model and flow
options, a warm-cache run, a cold-cache run and a cache-off run all hand
back the same ``mdl_text`` and the same mapping report.  Conversely the
cache key must be *sensitive*: changing any flow option or any model
element changes the key, so stale artifacts can never be served.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import didactic
from repro.core.flow import synthesize
from repro.parallel import cache
from repro.parallel.fingerprint import (
    SCHEMA_VERSION,
    options_fingerprint,
    plan_fingerprint,
    synthesis_cache_key,
)
from repro.uml import ModelBuilder

#: The flow options that participate in the cache key, with a non-default
#: value for each (``synthesize``'s keyword defaults flipped).
OPTION_VARIANTS = {
    "auto_allocate": True,
    "infer_channels": False,
    "insert_barriers": False,
    "layout": False,
    "validate": False,
    "strict": True,
    "name": "renamed",
}


def small_model(threads=2, name="prop"):
    b = ModelBuilder(name)
    names = [f"T{i}" for i in range(1, threads + 1)]
    for t in names:
        b.thread(t)
    b.io_device("Dev")
    b.processor("CPU1", threads=names)
    sd = b.interaction("main")
    sd.call(names[0], "Dev", "read", result="v")
    for prev, cur in zip(names, names[1:]):
        sd.call(prev, cur, "push", args=["v"])
    sd.call(names[-1], "Dev", "write", args=["v"])
    return b.build()


class TestCacheTransparency:
    def test_cold_then_warm_identical(self):
        cache.configure(enabled=True)
        model = didactic.build_model()
        cold = synthesize(model)
        warm = synthesize(didactic.build_model())
        assert cold.obs.parallel["cache"]["status"] == "miss"
        assert warm.obs.parallel["cache"]["status"] == "hit"
        assert warm.mdl_text == cold.mdl_text
        assert warm.mapping_report() == cold.mapping_report()
        assert warm.intermediate_xml == cold.intermediate_xml

    def test_cache_on_vs_off_identical(self):
        model = didactic.build_model()
        off = synthesize(model, use_cache=False)
        assert "cache" not in off.obs.parallel
        cache.configure(enabled=True)
        on = synthesize(didactic.build_model())
        assert on.mdl_text == off.mdl_text
        assert on.mapping_report() == off.mapping_report()

    def test_hit_returns_fresh_copy(self):
        cache.configure(enabled=True)
        first = synthesize(didactic.build_model())
        second = synthesize(didactic.build_model())
        assert second is not first
        assert second.caam is not first.caam
        # Mutating one hit must not poison the next.
        second.caam.name = "mutated"
        third = synthesize(didactic.build_model())
        assert third.caam.name == first.caam.name

    def test_use_cache_true_overrides_disabled_config(self):
        cache.configure(enabled=False)
        synthesize(didactic.build_model(), use_cache=True)
        warm = synthesize(didactic.build_model(), use_cache=True)
        assert warm.obs.parallel["cache"]["status"] == "hit"

    def test_behaviors_bypass_the_cache(self):
        cache.configure(enabled=True)
        result = synthesize(
            didactic.build_model(), behaviors=didactic.behaviors()
        )
        assert result.obs.parallel["cache"] == {
            "status": "bypass",
            "reason": "behaviors",
        }

    @settings(max_examples=8, deadline=None)
    @given(threads=st.integers(min_value=1, max_value=4))
    def test_random_models_cold_vs_warm(self, threads):
        state = cache.snapshot()
        try:
            cache.configure(enabled=True)
            cold = synthesize(small_model(threads))
            warm = synthesize(small_model(threads))
            assert warm.obs.parallel["cache"]["status"] == "hit"
            assert warm.mdl_text == cold.mdl_text
            assert warm.mapping_report() == cold.mapping_report()
        finally:
            cache.restore(state)


class TestKeySensitivity:
    def test_key_is_stable_across_rebuilds(self):
        key_a = synthesis_cache_key(didactic.build_model(), None, {})
        key_b = synthesis_cache_key(didactic.build_model(), None, {})
        assert key_a == key_b

    @pytest.mark.parametrize("option", sorted(OPTION_VARIANTS))
    def test_key_changes_with_each_flow_option(self, option):
        model = didactic.build_model()
        base_options = {
            "auto_allocate": False,
            "infer_channels": True,
            "insert_barriers": True,
            "layout": True,
            "validate": True,
            "strict": False,
            "name": None,
        }
        changed = dict(base_options, **{option: OPTION_VARIANTS[option]})
        assert synthesis_cache_key(
            model, None, base_options
        ) != synthesis_cache_key(model, None, changed)

    def test_key_changes_with_model_elements(self):
        base = synthesis_cache_key(small_model(2), None, {})
        assert synthesis_cache_key(small_model(3), None, {}) != base
        assert (
            synthesis_cache_key(small_model(2, name="other"), None, {}) != base
        )

    def test_key_changes_with_explicit_plan(self):
        model = didactic.build_model()
        from repro.uml import DeploymentPlan

        one_cpu = DeploymentPlan.from_mapping(
            {"T1": "CPU1", "T2": "CPU1", "T3": "CPU1"}
        )
        two_cpu = DeploymentPlan.from_mapping(
            {"T1": "CPU1", "T2": "CPU1", "T3": "CPU2"}
        )
        keys = {
            synthesis_cache_key(model, None, {}),
            synthesis_cache_key(model, one_cpu, {}),
            synthesis_cache_key(model, two_cpu, {}),
        }
        assert len(keys) == 3

    def test_plan_fingerprint_distinguishes_none(self):
        from repro.uml import DeploymentPlan

        plan = DeploymentPlan.from_mapping({"T1": "CPU1"})
        assert plan_fingerprint(None) != plan_fingerprint(plan)

    @settings(max_examples=20, deadline=None)
    @given(
        a=st.dictionaries(
            st.sampled_from(sorted(OPTION_VARIANTS)),
            st.one_of(st.booleans(), st.text(max_size=4)),
            max_size=4,
        ),
        b=st.dictionaries(
            st.sampled_from(sorted(OPTION_VARIANTS)),
            st.one_of(st.booleans(), st.text(max_size=4)),
            max_size=4,
        ),
    )
    def test_options_fingerprint_injective_on_dicts(self, a, b):
        if a == b:
            assert options_fingerprint(a) == options_fingerprint(b)
        else:
            assert options_fingerprint(a) != options_fingerprint(b)

    def test_schema_version_bump_invalidates_keys(self, monkeypatch):
        # Bumping SCHEMA_VERSION must invalidate every stored key.
        from repro.parallel import fingerprint

        model = small_model(1)
        before = synthesis_cache_key(model, None, {})
        monkeypatch.setattr(
            fingerprint, "SCHEMA_VERSION", SCHEMA_VERSION + "-test"
        )
        assert synthesis_cache_key(model, None, {}) != before
