"""Unit tests for :class:`repro.parallel.ContentCache` and its wiring."""

import os

import pytest

from repro.obs import Recorder, use
from repro.parallel import cache
from repro.parallel.cache import ContentCache
from repro.parallel.fingerprint import digest


class TestContentCache:
    def test_roundtrip_returns_fresh_copy(self):
        store = ContentCache("t")
        value = {"nested": [1, 2, 3]}
        assert store.put("k", value)
        out = store.get("k")
        assert out == value
        assert out is not value
        out["nested"].append(4)
        assert store.get("k") == value

    def test_miss_returns_none(self):
        assert ContentCache("t").get("absent") is None

    def test_lru_eviction_order(self):
        store = ContentCache("t", capacity=2)
        store.put("a", 1)
        store.put("b", 2)
        store.get("a")  # refresh "a": "b" becomes least-recent
        store.put("c", 3)
        assert "a" in store and "c" in store
        assert "b" not in store
        assert len(store) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ContentCache("t", capacity=0)

    def test_unpicklable_value_is_skipped(self):
        store = ContentCache("t")
        assert store.put("k", lambda: None) is False
        assert "k" not in store

    def test_disk_roundtrip_across_instances(self, tmp_path):
        directory = str(tmp_path / "store")
        first = ContentCache("t", directory=directory)
        first.put("k", {"x": 1})
        assert os.path.exists(os.path.join(directory, "k.pkl"))
        # A brand-new instance (cold memory) hits the disk store.
        second = ContentCache("t", directory=directory)
        assert second.get("k") == {"x": 1}
        assert "k" in second  # promoted into memory

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        directory = str(tmp_path)
        store = ContentCache("t", directory=directory)
        with open(os.path.join(directory, "bad.pkl"), "wb") as handle:
            handle.write(b"not a pickle")
        assert store.get("bad") is None

    def test_clear_leaves_disk_alone(self, tmp_path):
        store = ContentCache("t", directory=str(tmp_path))
        store.put("k", 1)
        store.clear()
        assert len(store) == 0
        assert store.get("k") == 1  # re-read from disk

    def test_info_is_json_ready(self):
        info = ContentCache("syn", capacity=8).info()
        assert info == {
            "name": "syn",
            "entries": 0,
            "capacity": 8,
            "directory": None,
        }

    def test_counters_feed_the_recorder(self):
        with use(Recorder()) as rec:
            store = ContentCache("unit", capacity=1)
            store.get("k")
            store.put("k", 1)
            store.get("k")
            store.put("k2", 2)  # evicts "k"
            counters = rec.metrics.to_dict()["counters"]
            assert counters["cache.unit.miss"] == 1
            assert counters["cache.unit.store"] == 2
            assert counters["cache.unit.hit"] == 1
            assert counters["cache.unit.evict"] == 1


class TestProcessWideConfig:
    def test_disabled_by_default(self):
        assert cache.synthesis_cache() is None

    def test_configure_enables_and_disables(self):
        cache.configure(enabled=True)
        assert cache.synthesis_cache() is not None
        cache.configure(enabled=False)
        assert cache.synthesis_cache() is None

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert cache.synthesis_cache() is not None

    def test_no_cache_env_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert cache.synthesis_cache() is None

    def test_cache_dir_env_enables_disk_store(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = cache.synthesis_cache()
        assert store is not None
        assert store.directory == str(tmp_path)

    def test_force_ignores_the_switch_but_is_persistent(self):
        cache.configure(enabled=False)
        forced = cache.force_synthesis_cache()
        assert cache.force_synthesis_cache() is forced
        assert cache.synthesis_cache() is None

    def test_configure_discards_stale_instance(self, tmp_path):
        cache.configure(enabled=True)
        first = cache.force_synthesis_cache()
        cache.configure(enabled=True, directory=str(tmp_path), capacity=4)
        second = cache.force_synthesis_cache()
        assert second is not first
        assert second.directory == str(tmp_path)
        assert second.capacity == 4

    def test_snapshot_restore_roundtrip(self):
        cache.configure(enabled=True, capacity=7)
        instance = cache.force_synthesis_cache()
        state = cache.snapshot()
        cache.configure(enabled=False, capacity=1)
        cache.restore(state)
        assert cache.synthesis_cache() is instance
        assert cache.force_synthesis_cache().capacity == 7


class TestDigest:
    def test_length_prefix_makes_digest_injective(self):
        assert digest("ab", "c") != digest("a", "bc")
        assert digest("ab") != digest("a", "b")

    def test_digest_is_stable(self):
        assert digest("x", "y") == digest("x", "y")
