"""Unit tests for CAAM metrics (repro.mpsoc.metrics)."""

import pytest

from repro.mpsoc import (
    communication_cost,
    functional_blocks,
    iteration_estimate,
    load_report,
    platform_for_caam,
)
from repro.simulink import Block, CaamModel, GFIFO, SWFIFO, make_channel


def _caam_with_channels():
    caam = CaamModel("c")
    cpu = caam.add_cpu("CPU1")
    caam.add_cpu("CPU2")
    thread = caam.add_thread("CPU1", "T1")
    thread.system.add(Block("f", "S-Function"))
    thread.system.add(Block("g", "Gain"))
    sw = make_channel("sw", SWFIFO, 32)
    cpu.system.add(sw)
    gf = make_channel("gf", GFIFO, 64)
    caam.root.add(gf)
    return caam


class TestCommunicationCost:
    def test_breakdown_by_protocol(self):
        caam = _caam_with_channels()
        platform = platform_for_caam(caam)
        cost = communication_cost(caam, platform)
        assert cost.intra_channels == 1
        assert cost.inter_channels == 1
        assert cost.intra_cycles == 1  # one word over SWFIFO
        assert cost.inter_cycles == 40  # 20 latency + 2 words * 10
        assert cost.total_cycles == 41
        assert "GFIFO" in str(cost)

    def test_didactic_costs(self, didactic_result):
        platform = platform_for_caam(didactic_result.caam)
        cost = communication_cost(didactic_result.caam, platform)
        assert cost.inter_channels == 1
        assert cost.intra_channels == 1
        assert cost.inter_cycles > cost.intra_cycles


class TestFunctionalBlocks:
    def test_structural_blocks_excluded(self):
        caam = _caam_with_channels()
        thread = caam.thread("T1")
        thread.add_inport("in")
        blocks = functional_blocks(thread)
        assert {b.name for b in blocks} == {"f", "g"}

    def test_nested_subsystems_counted(self):
        from repro.simulink import SubSystem

        caam = _caam_with_channels()
        thread = caam.thread("T1")
        nested = SubSystem("inner")
        thread.system.add(nested)
        nested.system.add(Block("deep", "Gain"))
        blocks = functional_blocks(thread)
        assert "deep" in {b.name for b in blocks}


class TestLoadReport:
    def test_per_cpu_blocks_and_cycles(self):
        caam = _caam_with_channels()
        platform = platform_for_caam(caam, cycles_per_block=10)
        report = load_report(caam, platform)
        assert report.blocks_per_cpu == {"CPU1": 2, "CPU2": 0}
        assert report.cycles_per_cpu == {"CPU1": 20.0, "CPU2": 0.0}
        assert report.max_cycles == 20.0
        assert report.total_cycles == 20.0

    def test_balance_perfect_when_equal(self, synthetic_result):
        platform = platform_for_caam(synthetic_result.caam)
        report = load_report(synthetic_result.caam, platform)
        assert 0.0 < report.balance <= 1.0

    def test_balance_of_empty_report(self):
        caam = CaamModel("c")
        caam.add_cpu("CPU1")
        platform = platform_for_caam(caam)
        assert load_report(caam, platform).balance == 1.0


class TestIterationEstimate:
    def test_combines_computation_and_communication(self):
        caam = _caam_with_channels()
        platform = platform_for_caam(caam, cycles_per_block=10)
        estimate = iteration_estimate(caam, platform)
        assert estimate.computation_cycles == 20.0
        assert estimate.communication.total_cycles == 41
        assert estimate.total_cycles == 61.0
