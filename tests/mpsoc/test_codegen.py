"""Unit tests for multithreaded C generation from CAAMs."""

import pytest

from repro.core import synthesize
from repro.mpsoc import CodegenError, generate_all, generate_cpu_source
from repro.mpsoc.codegen import _dataflow_order
from repro.simulink import Block, CaamModel
from repro.uml import DeploymentPlan, ModelBuilder


class TestGeneratedStructure:
    def test_one_source_per_cpu(self, didactic_result):
        sources = generate_all(didactic_result.caam)
        assert set(sources) == {"CPU1", "CPU2"}

    def test_thread_functions_present(self, didactic_result):
        source = generate_cpu_source(didactic_result.caam, "CPU1")
        assert "void thread_T1(void)" in source
        assert "void thread_T2(void)" in source
        assert 'rt_register_thread(thread_T1, "T1");' in source

    def test_sfunction_calls_emitted(self, didactic_result):
        source = generate_cpu_source(didactic_result.caam, "CPU1")
        assert "calc(" in source
        assert "dec(" in source

    def test_product_block_lowered_to_multiplication(self, didactic_result):
        source = generate_cpu_source(didactic_result.caam, "CPU1")
        assert " * " in source  # mult block

    def test_channel_reads_use_protocol_flavour(self, didactic_result):
        cpu1 = generate_cpu_source(didactic_result.caam, "CPU1")
        cpu2 = generate_cpu_source(didactic_result.caam, "CPU2")
        # T1 receives the inter-CPU 'value' channel -> gfifo_read.
        assert "gfifo_read(" in cpu1
        # T1 -> T2 intra-CPU channel -> swfifo on both ends.
        assert "swfifo_write(" in cpu1 or "swfifo_read(" in cpu1
        # T3 sends inter-CPU -> gfifo_write.
        assert "gfifo_write(" in cpu2

    def test_io_ports_use_io_flavour(self, crane_result):
        source = generate_cpu_source(crane_result.caam, "CPU1")
        assert "io_read(" in source
        assert "io_write(" in source

    def test_delay_state_variables(self, crane_result):
        source = generate_cpu_source(crane_result.caam, "CPU1")
        assert "Delay_state" in source
        # State update happens after output usage.
        read_pos = source.index("= Delay_state;")
        update_pos = source.index("Delay_state =", read_pos + 1)
        assert update_pos > read_pos

    def test_balanced_braces(self, crane_result):
        source = generate_cpu_source(crane_result.caam, "CPU1")
        assert source.count("{") == source.count("}")


class TestDataflowOrder:
    def test_topological_over_feedthrough(self):
        caam = CaamModel("c")
        caam.add_cpu("CPU1")
        thread = caam.add_thread("CPU1", "T")
        a = thread.system.add(Block("a", "Constant", inputs=0))
        b = thread.system.add(Block("b", "Gain"))
        thread.system.connect(a.output(), b.input())
        order = [blk.name for blk in _dataflow_order(thread.system)]
        assert order.index("a") < order.index("b")

    def test_algebraic_loop_rejected(self):
        caam = CaamModel("c")
        caam.add_cpu("CPU1")
        thread = caam.add_thread("CPU1", "T")
        a = thread.system.add(Block("a", "Gain"))
        b = thread.system.add(Block("b", "Gain"))
        thread.system.connect(a.output(), b.input())
        thread.system.connect(b.output(), a.input())
        with pytest.raises(CodegenError, match="algebraic loop"):
            generate_cpu_source(caam, "CPU1")

    def test_delay_breaks_order_requirement(self):
        caam = CaamModel("c")
        caam.add_cpu("CPU1")
        thread = caam.add_thread("CPU1", "T")
        a = thread.system.add(Block("a", "Gain"))
        z = thread.system.add(Block("z", "UnitDelay"))
        thread.system.connect(a.output(), z.input())
        thread.system.connect(z.output(), a.input())
        source = generate_cpu_source(caam, "CPU1")
        assert "z_state" in source


class TestGenericBlocks:
    def test_unknown_block_type_gets_step_call(self):
        caam = CaamModel("c")
        caam.add_cpu("CPU1")
        thread = caam.add_thread("CPU1", "T")
        thread.system.add(Block("odd", "Quantizer"))
        source = generate_cpu_source(caam, "CPU1")
        assert "quantizer_step(" in source

    def test_sum_with_signs(self):
        caam = CaamModel("c")
        caam.add_cpu("CPU1")
        thread = caam.add_thread("CPU1", "T")
        a = thread.system.add(Block("a", "Constant", inputs=0, parameters={"Value": 1}))
        b = thread.system.add(Block("b", "Constant", inputs=0, parameters={"Value": 2}))
        s = thread.system.add(Block("s", "Sum", inputs=2, parameters={"Inputs": "+-"}))
        thread.system.connect(a.output(), s.input(1))
        thread.system.connect(b.output(), s.input(2))
        source = generate_cpu_source(caam, "CPU1")
        assert "a_o1 - b_o1" in source
