"""Unit tests for the MPSoC platform model."""

import pytest

from repro.mpsoc import Bus, Platform, PlatformError, Processor, platform_for_caam
from repro.simulink import CaamModel


class TestPlatform:
    def _platform(self):
        return Platform(
            processors=[Processor("CPU1"), Processor("CPU2")],
            bus=Bus(word_cycles=10, latency_cycles=20),
            intra_word_cycles=1,
        )

    def test_processor_lookup(self):
        platform = self._platform()
        assert platform.processor("CPU1").name == "CPU1"
        with pytest.raises(PlatformError):
            platform.processor("CPU9")
        assert platform.names == ["CPU1", "CPU2"]

    def test_intra_channel_cost_scales_with_words(self):
        platform = self._platform()
        assert platform.channel_cost("SWFIFO", 32) == 1
        assert platform.channel_cost("SWFIFO", 64) == 2
        assert platform.channel_cost("SWFIFO", 33) == 2  # rounds up

    def test_inter_channel_cost_has_latency(self):
        platform = self._platform()
        assert platform.channel_cost("GFIFO", 32) == 30  # 20 + 1*10
        assert platform.channel_cost("GFIFO", 64) == 40

    def test_zero_width_still_one_word(self):
        platform = self._platform()
        assert platform.channel_cost("SWFIFO", 0) == 1

    def test_inter_intra_ratio(self):
        platform = self._platform()
        assert platform.inter_intra_ratio == 30.0

    def test_paper_cost_ordering(self):
        """§4.2.3: 'the cost for intra-CPU communication is lower than the
        cost for communication between different CPUs' — for every width."""
        platform = self._platform()
        for width in (1, 32, 64, 256, 1024):
            assert platform.channel_cost("SWFIFO", width) < platform.channel_cost(
                "GFIFO", width
            )


class TestPlatformForCaam:
    def test_one_processor_per_cpu_subsystem(self, synthetic_result):
        platform = platform_for_caam(synthetic_result.caam)
        assert len(platform.processors) == 4
        assert set(platform.names) == {
            c.name for c in synthetic_result.caam.cpus()
        }

    def test_empty_caam_rejected(self):
        with pytest.raises(PlatformError):
            platform_for_caam(CaamModel("empty"))

    def test_parameters_forwarded(self, didactic_result):
        platform = platform_for_caam(
            didactic_result.caam, clock_mhz=200.0, cycles_per_block=10
        )
        assert platform.processors[0].clock_mhz == 200.0
        assert platform.processors[0].cycles_per_block == 10
