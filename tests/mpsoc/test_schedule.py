"""Unit tests for static CAAM scheduling (repro.mpsoc.schedule)."""

import pytest

from repro.core import synthesize
from repro.mpsoc import (
    Schedule,
    ScheduleError,
    ScheduledTask,
    platform_for_caam,
    schedule_caam,
)
from repro.uml import DeploymentPlan, ModelBuilder


def _pipeline_model():
    b = ModelBuilder("pipe")
    b.thread("A")
    b.thread("B")
    sd = b.interaction("main")
    sd.call("A", "A", "work", result="v")
    sd.call("A", "B", "setData", args=["v"])
    sd.call("B", "B", "consume", args=["data"])
    return b.build()


class TestSchedule:
    def test_consumer_starts_after_producer_plus_delay(self):
        model = _pipeline_model()
        result = synthesize(model, DeploymentPlan.from_mapping({"A": "CPU1", "B": "CPU2"}))
        platform = platform_for_caam(result.caam, cycles_per_block=10)
        schedule = schedule_caam(result.caam, platform)
        a = schedule.task("A")
        b = schedule.task("B")
        # A runs 10 cycles (1 block), GFIFO costs 20+10=30 -> B starts at 40.
        assert a.finish == 10
        assert b.start == 40
        assert schedule.makespan == b.finish

    def test_same_cpu_sequentializes(self):
        model = _pipeline_model()
        result = synthesize(model, DeploymentPlan.from_mapping({"A": "CPU1", "B": "CPU1"}))
        platform = platform_for_caam(result.caam, cycles_per_block=10)
        schedule = schedule_caam(result.caam, platform)
        a, b = schedule.task("A"), schedule.task("B")
        assert b.start >= a.finish
        # SWFIFO is cheap: starts at 11 (10 compute + 1 word).
        assert b.start == 11

    def test_by_cpu_grouping_and_gantt(self, synthetic_result):
        platform = platform_for_caam(synthetic_result.caam)
        schedule = schedule_caam(synthetic_result.caam, platform)
        grouped = schedule.by_cpu()
        assert set(grouped) == {c.name for c in synthetic_result.caam.cpus()}
        gantt = schedule.gantt()
        assert all(cpu in gantt for cpu in grouped)

    def test_no_overlap_per_cpu(self, synthetic_result):
        platform = platform_for_caam(synthetic_result.caam)
        schedule = schedule_caam(synthetic_result.caam, platform)
        for tasks in schedule.by_cpu().values():
            for earlier, later in zip(tasks, tasks[1:]):
                assert later.start >= earlier.finish

    def test_unknown_task_lookup(self):
        schedule = Schedule(tasks=[ScheduledTask("A", "CPU1", 0, 5)])
        assert schedule.task("A").duration == 5
        with pytest.raises(ScheduleError):
            schedule.task("Z")

    def test_empty_schedule_makespan_zero(self):
        assert Schedule().makespan == 0.0

    def test_feedback_channels_do_not_deadlock_scheduler(self, crane_result):
        platform = platform_for_caam(crane_result.caam)
        schedule = schedule_caam(crane_result.caam, platform)
        assert len(schedule.tasks) == 3
        assert schedule.makespan > 0


class TestAllocationAblation:
    def test_clustered_beats_scattered(self, synthetic_model):
        """Placing the critical path on one CPU (linear clustering) must
        give a makespan no worse than scattering it (round-robin)."""
        from repro.apps.synthetic import THREADS
        from repro.core import synthesize

        clustered = synthesize(synthetic_model, auto_allocate=True)
        scattered_plan = DeploymentPlan.from_mapping(
            {t: f"CPU{i % 4}" for i, t in enumerate(THREADS)}
        )
        scattered = synthesize(synthetic_model, scattered_plan)
        p1 = platform_for_caam(clustered.caam)
        p2 = platform_for_caam(scattered.caam)
        makespan_clustered = schedule_caam(clustered.caam, p1).makespan
        makespan_scattered = schedule_caam(scattered.caam, p2).makespan
        assert makespan_clustered <= makespan_scattered


class TestPriorityScheduling:
    def _model(self, high_priority_thread):
        from repro.uml import ModelBuilder

        b = ModelBuilder("prio")
        b.thread("A", priority=9 if high_priority_thread == "A" else 1)
        b.thread("B", priority=9 if high_priority_thread == "B" else 1)
        sd = b.interaction("main")
        sd.call("A", "A", "workA", result="x")
        sd.call("B", "B", "workB", result="y")
        return b.build()

    def test_sapriority_reaches_thread_subsystem(self):
        from repro.core import synthesize

        result = synthesize(
            self._model("A"), DeploymentPlan.from_mapping({"A": "C", "B": "C"})
        )
        assert result.caam.thread("A").parameters["SAPriority"] == 9
        assert result.caam.thread("B").parameters["SAPriority"] == 1

    @pytest.mark.parametrize("winner", ["A", "B"])
    def test_high_priority_thread_scheduled_first(self, winner):
        from repro.core import synthesize

        result = synthesize(
            self._model(winner),
            DeploymentPlan.from_mapping({"A": "C", "B": "C"}),
        )
        platform = platform_for_caam(result.caam)
        schedule = schedule_caam(result.caam, platform)
        assert schedule.task(winner).start == 0

    def test_priority_survives_mdl_round_trip(self):
        from repro.core import synthesize
        from repro.simulink import from_mdl

        result = synthesize(
            self._model("B"), DeploymentPlan.from_mapping({"A": "C", "B": "C"})
        )
        loaded = from_mdl(result.mdl_text)
        assert loaded.thread("B").parameters["SAPriority"] == 9
