"""Unit tests for FSM chart blocks (repro.fsm.block)."""

import pytest

from repro.fsm import Fsm, chart_block, threshold_events
from repro.simulink import Block, SimulinkModel, run_model


def _thermostat_fsm():
    fsm = Fsm("mode")
    fsm.add_state("off", entry="heater = 0", initial=True)
    fsm.add_state("on", entry="heater = 1")
    fsm.add_variable("heater", 0.0)
    fsm.add_transition("off", "on", event="cold")
    fsm.add_transition("on", "off", event="warm")
    return fsm


class TestChartBlock:
    def test_unknown_output_variable_rejected(self):
        with pytest.raises(KeyError, match="no variable"):
            chart_block("c", _thermostat_fsm(), 1, lambda ins: "", ["ghost"])

    def test_chart_runs_inside_a_model(self):
        model = SimulinkModel("m")
        source = model.root.add(
            Block("In1", "Inport", inputs=0, outputs=1, parameters={"Port": 1})
        )
        chart = model.root.add(
            chart_block(
                "mode",
                _thermostat_fsm(),
                inputs=1,
                event_function=threshold_events(
                    (lambda ins: ins[0] < 18.0, "cold"),
                    (lambda ins: ins[0] > 22.0, "warm"),
                ),
                output_variables=["heater"],
            )
        )
        out = model.root.add(
            Block("Out1", "Outport", inputs=1, outputs=0, parameters={"Port": 1})
        )
        model.root.connect(source.output(), chart.input())
        model.root.connect(chart.output(), out.input())
        trace = run_model(
            model, 5, inputs={"In1": [15.0, 19.0, 25.0, 25.0, 10.0]}
        )
        # cold->on, no event->on, warm->off, warm->off, cold->on
        assert trace.output("Out1") == [1.0, 1.0, 0.0, 0.0, 1.0]

    def test_chart_state_survives_run_calls_and_reset(self):
        from repro.simulink import Simulator

        model = SimulinkModel("m")
        source = model.root.add(
            Block("In1", "Inport", inputs=0, outputs=1, parameters={"Port": 1})
        )
        chart = model.root.add(
            chart_block(
                "mode",
                _thermostat_fsm(),
                inputs=1,
                event_function=threshold_events(
                    (lambda ins: ins[0] < 0, "cold")
                ),
                output_variables=["heater"],
            )
        )
        model.root.connect(source.output(), chart.input())
        simulator = Simulator(model, monitor=["m/mode"])
        assert simulator.run(1, inputs={"In1": [-1]}).signal("m/mode") == [1.0]
        # State persists: stays on without further events.
        assert simulator.run(1, inputs={"In1": [5]}).signal("m/mode") == [1.0]
        simulator.reset()
        assert simulator.run(1, inputs={"In1": [5]}).signal("m/mode") == [0.0]

    def test_chart_serializes_without_callback(self):
        from repro.simulink import from_mdl, to_mdl

        model = SimulinkModel("m")
        model.root.add(
            chart_block(
                "mode", _thermostat_fsm(), 1, lambda ins: "", ["heater"]
            )
        )
        loaded = from_mdl(to_mdl(model))
        block = loaded.root.block("mode")
        assert block.parameters["ChartStates"] == "off,on"
        assert "callback" not in block.parameters


class TestThresholdEvents:
    def test_first_matching_rule_wins(self):
        events = threshold_events(
            (lambda ins: ins[0] > 10, "high"),
            (lambda ins: ins[0] > 5, "medium"),
        )
        assert events([20.0]) == "high"
        assert events([7.0]) == "medium"
        assert events([1.0]) == ""
