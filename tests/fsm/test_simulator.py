"""Unit tests for FSM execution (repro.fsm.simulator)."""

import pytest

from repro.fsm import Fsm, FsmRuntimeError, FsmSimulator, simulate


def _counter():
    fsm = Fsm("counter")
    fsm.add_state("idle", initial=True)
    fsm.add_state("busy", entry="runs = runs + 1")
    fsm.add_variable("count", 0.0)
    fsm.add_variable("runs", 0.0)
    fsm.add_transition("idle", "busy", event="start", action="count = 0")
    fsm.add_transition(
        "busy", "busy", event="tick", guard="count < 3", action="count = count + 1"
    )
    fsm.add_transition("busy", "idle", event="tick", guard="count >= 3")
    return fsm


class TestStepping:
    def test_event_sequence(self):
        states, variables = simulate(
            _counter(), ["start", "tick", "tick", "tick", "tick"]
        )
        assert states == ["busy", "busy", "busy", "busy", "idle"]
        assert variables["count"] == 3

    def test_unknown_event_discarded(self):
        simulator = FsmSimulator(_counter())
        assert simulator.step("bogus") == "idle"

    def test_entry_actions_run_on_entering(self):
        simulator = FsmSimulator(_counter())
        simulator.step("start")
        assert simulator.variables["runs"] == 1

    def test_initial_entry_action_runs(self):
        fsm = Fsm("m")
        fsm.add_state("a", entry="x = 42", initial=True)
        fsm.add_variable("x", 0.0)
        simulator = FsmSimulator(fsm)
        assert simulator.variables["x"] == 42

    def test_exit_actions(self):
        fsm = Fsm("m")
        fsm.add_state("a", exit="left = 1", initial=True)
        fsm.add_state("b")
        fsm.add_variable("left", 0.0)
        fsm.add_transition("a", "b", event="go")
        simulator = FsmSimulator(fsm)
        simulator.step("go")
        assert simulator.variables["left"] == 1

    def test_trace_records_firings(self):
        simulator = FsmSimulator(_counter())
        simulator.run(["start", "tick"])
        assert len(simulator.trace) == 2
        assert simulator.trace[0].event == "start"
        assert simulator.trace[1].transition.action == "count = count + 1"

    def test_in_final_state(self):
        fsm = Fsm("m")
        fsm.add_state("a", initial=True)
        fsm.add_state("end", final=True)
        fsm.add_transition("a", "end", event="die")
        simulator = FsmSimulator(fsm)
        assert not simulator.in_final_state
        simulator.step("die")
        assert simulator.in_final_state


class TestCompletionTransitions:
    def test_epsilon_chains_run_to_completion(self):
        fsm = Fsm("m")
        fsm.add_state("a", initial=True)
        fsm.add_state("b")
        fsm.add_state("c")
        fsm.add_transition("a", "b", event="go")
        fsm.add_transition("b", "c")  # completion transition
        simulator = FsmSimulator(fsm)
        assert simulator.step("go") == "c"

    def test_guarded_epsilon(self):
        fsm = Fsm("m")
        fsm.add_state("a", initial=True)
        fsm.add_state("b")
        fsm.add_variable("x", 0.0)
        fsm.add_transition("a", "b", guard="x > 0")
        simulator = FsmSimulator(fsm)
        assert simulator.step() == "a"  # guard false: stays
        simulator.variables["x"] = 1.0
        assert simulator.step() == "b"

    def test_epsilon_livelock_detected(self):
        fsm = Fsm("m")
        fsm.add_state("a", initial=True)
        fsm.add_state("b")
        fsm.add_transition("a", "b")
        fsm.add_transition("b", "a")
        simulator = FsmSimulator.__new__(FsmSimulator)  # skip init validation
        simulator.fsm = fsm
        simulator.current = "a"
        simulator.variables = {}
        simulator.trace = []
        simulator._step_count = 0
        with pytest.raises(FsmRuntimeError, match="livelock"):
            simulator.step()


class TestGuardsAndActions:
    def test_comparison_in_action_is_not_assignment(self):
        fsm = Fsm("m")
        fsm.add_state("a", initial=True)
        fsm.add_state("b")
        fsm.add_variable("x", 1.0)
        fsm.add_transition("a", "b", event="go", action="x == 2")
        simulator = FsmSimulator(fsm)
        simulator.step("go")
        assert simulator.variables["x"] == 1.0  # unchanged

    def test_multiple_statements(self):
        fsm = Fsm("m")
        fsm.add_state("a", initial=True)
        fsm.add_state("b")
        fsm.add_variable("x", 0.0)
        fsm.add_variable("y", 0.0)
        fsm.add_transition("a", "b", event="go", action="x = 1; y = x + 1")
        simulator = FsmSimulator(fsm)
        simulator.step("go")
        assert (simulator.variables["x"], simulator.variables["y"]) == (1, 2)

    def test_bad_guard_raises(self):
        fsm = Fsm("m")
        fsm.add_state("a", initial=True)
        fsm.add_state("b")
        fsm.add_transition("a", "b", event="go", guard="undefined_var > 0")
        simulator = FsmSimulator(fsm)
        with pytest.raises(FsmRuntimeError, match="guard"):
            simulator.step("go")

    def test_bad_action_raises(self):
        fsm = Fsm("m")
        fsm.add_state("a", initial=True)
        fsm.add_state("b")
        fsm.add_transition("a", "b", event="go", action="x = ghost + 1")
        simulator = FsmSimulator(fsm)
        with pytest.raises(FsmRuntimeError, match="action"):
            simulator.step("go")

    def test_invalid_fsm_rejected_at_construction(self):
        fsm = Fsm("m")  # no states at all
        with pytest.raises(FsmRuntimeError):
            FsmSimulator(fsm)
