"""Unit tests for FSM code generation (repro.fsm.codegen)."""

import re

import pytest

from repro.fsm import Fsm, FsmError, generate_c, generate_java


def _machine():
    fsm = Fsm("door")
    fsm.add_state("closed", initial=True)
    fsm.add_state("open")
    fsm.add_variable("cycles", 0.0)
    fsm.add_transition(
        "closed", "open", event="unlock", guard="cycles < 10",
        action="cycles = cycles + 1",
    )
    fsm.add_transition("open", "closed", event="lock")
    return fsm


class TestCGeneration:
    def test_enums_and_struct(self):
        source = generate_c(_machine())
        assert "STATE_CLOSED," in source
        assert "STATE_OPEN," in source
        assert "EVENT_UNLOCK," in source
        assert "double cycles;" in source
        assert "door_state_t" in source

    def test_init_sets_initial_state_and_vars(self):
        source = generate_c(_machine())
        assert "fsm->state = STATE_CLOSED;" in source
        assert "fsm->cycles = 0.0;" in source

    def test_dispatch_guard_rewritten_to_struct_fields(self):
        source = generate_c(_machine())
        assert "fsm->cycles < 10" in source
        assert "fsm->cycles = fsm->cycles + 1" in source

    def test_transition_targets(self):
        source = generate_c(_machine())
        assert "fsm->state = STATE_OPEN;" in source
        assert "fsm->state = STATE_CLOSED;" in source

    def test_balanced_braces(self):
        source = generate_c(_machine())
        assert source.count("{") == source.count("}")


class TestJavaGeneration:
    def test_class_and_enums(self):
        source = generate_java(_machine())
        assert "public class Door" in source
        assert "CLOSED," in source and "OPEN," in source
        assert "UNLOCK," in source

    def test_custom_class_name(self):
        source = generate_java(_machine(), class_name="DoorFsm")
        assert "public class DoorFsm" in source

    def test_fields_initialized(self):
        source = generate_java(_machine())
        assert "private double cycles = 0.0;" in source
        assert "private State state = State.CLOSED;" in source

    def test_actions_use_this(self):
        source = generate_java(_machine())
        assert "this.cycles = this.cycles + 1" in source

    def test_balanced_braces(self):
        source = generate_java(_machine())
        assert source.count("{") == source.count("}")


class TestErrors:
    def test_invalid_identifier_rejected(self):
        fsm = Fsm("bad")
        fsm.add_state("has space", initial=True)
        with pytest.raises(FsmError, match="identifier"):
            generate_c(fsm)

    def test_no_initial_rejected(self):
        fsm = Fsm("empty")
        with pytest.raises(FsmError, match="no initial"):
            generate_c(fsm)
        with pytest.raises(FsmError, match="no initial"):
            generate_java(fsm)


class TestCrossCheck:
    def test_generated_c_transition_table_matches_simulation(self):
        """Parse the generated C dispatch and replay it in Python: the
        transition structure must agree with the FSM simulator."""
        from repro.fsm import FsmSimulator

        fsm = _machine()
        source = generate_c(fsm)
        # Every (state, event, target) triple must appear in the C code in
        # the right case block.
        for transition in fsm.transitions:
            case = f"case STATE_{transition.source.upper()}:"
            target = f"fsm->state = STATE_{transition.target.upper()};"
            case_pos = source.index(case)
            assert source.index(target, case_pos) > case_pos
        simulator = FsmSimulator(fsm)
        assert simulator.run(["unlock", "lock"]) == ["open", "closed"]
