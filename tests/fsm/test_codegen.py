"""Unit tests for FSM code generation (repro.fsm.codegen)."""

import re

import pytest

from repro.fsm import (
    Fsm,
    FsmError,
    generate_artifacts,
    generate_c,
    generate_header,
    generate_java,
)


def _machine():
    fsm = Fsm("door")
    fsm.add_state("closed", initial=True)
    fsm.add_state("open")
    fsm.add_variable("cycles", 0.0)
    fsm.add_transition(
        "closed", "open", event="unlock", guard="cycles < 10",
        action="cycles = cycles + 1",
    )
    fsm.add_transition("open", "closed", event="lock")
    return fsm


class TestCGeneration:
    def test_enums_and_struct(self):
        source = generate_c(_machine())
        assert "STATE_CLOSED," in source
        assert "STATE_OPEN," in source
        assert "EVENT_UNLOCK," in source
        assert "double cycles;" in source
        assert "door_state_t" in source

    def test_init_sets_initial_state_and_vars(self):
        source = generate_c(_machine())
        assert "fsm->state = STATE_CLOSED;" in source
        assert "fsm->cycles = 0.0;" in source

    def test_dispatch_guard_rewritten_to_struct_fields(self):
        source = generate_c(_machine())
        assert "fsm->cycles < 10" in source
        assert "fsm->cycles = fsm->cycles + 1" in source

    def test_transition_targets(self):
        source = generate_c(_machine())
        assert "fsm->state = STATE_OPEN;" in source
        assert "fsm->state = STATE_CLOSED;" in source

    def test_balanced_braces(self):
        source = generate_c(_machine())
        assert source.count("{") == source.count("}")


class TestJavaGeneration:
    def test_class_and_enums(self):
        source = generate_java(_machine())
        assert "public class Door" in source
        assert "CLOSED," in source and "OPEN," in source
        assert "UNLOCK," in source

    def test_custom_class_name(self):
        source = generate_java(_machine(), class_name="DoorFsm")
        assert "public class DoorFsm" in source

    def test_fields_initialized(self):
        source = generate_java(_machine())
        assert "private double cycles = 0.0;" in source
        assert "private State state = State.CLOSED;" in source

    def test_actions_use_this(self):
        source = generate_java(_machine())
        assert "this.cycles = this.cycles + 1" in source

    def test_balanced_braces(self):
        source = generate_java(_machine())
        assert source.count("{") == source.count("}")


class TestHeaderGeneration:
    def test_header_is_include_guarded(self):
        header = generate_header(_machine())
        assert header.count("REPRO_DOOR_H") == 3  # ifndef, define, endif
        assert header.index("#ifndef REPRO_DOOR_H") < header.index(
            "#define REPRO_DOOR_H"
        )
        assert header.rstrip().endswith("#endif /* REPRO_DOOR_H */")

    def test_header_declares_types_and_prototypes(self):
        header = generate_header(_machine())
        assert "door_state_t" in header
        assert "door_event_t" in header
        assert "double cycles;" in header
        assert "void door_init(door_t *fsm);" in header
        assert "void door_dispatch(door_t *fsm, door_event_t event);" in header


class TestIdentifierSanitization:
    def _spaced_machine(self):
        fsm = Fsm("lift controller-2")
        fsm.add_state("idle", initial=True)
        fsm.add_state("moving")
        fsm.add_transition("idle", "moving", event="call")
        return fsm

    def test_machine_name_with_spaces_and_hyphens(self):
        # Machine names are free-form UML strings; the symbol prefix is
        # mangled through repro.codegen.identifiers.sanitize.
        source = generate_c(self._spaced_machine())
        assert "lift_controller_2_state_t" in source
        assert "void lift_controller_2_init" in source
        assert "lift controller" not in source

    def test_header_guard_from_free_form_name(self):
        header = generate_header(self._spaced_machine())
        assert "#ifndef REPRO_LIFT_CONTROLLER_2_H" in header

    def test_java_class_name_from_free_form_name(self):
        source = generate_java(self._spaced_machine())
        assert "public class LiftController2" in source

    def test_artifacts_share_the_sanitized_stem(self):
        fsm = self._spaced_machine()
        c_files = generate_artifacts(fsm, "c")
        assert set(c_files) == {"lift_controller_2.c", "lift_controller_2.h"}
        assert '#include' in c_files["lift_controller_2.c"]
        java_files = generate_artifacts(fsm, "java")
        assert list(java_files) == ["LiftController2.java"]
        with pytest.raises(FsmError, match="unsupported"):
            generate_artifacts(fsm, "cobol")

    def test_state_names_still_must_be_identifiers(self):
        # States/variables/events appear verbatim inside guard and action
        # expressions — they cannot be silently rewritten.
        fsm = Fsm("ok name")
        fsm.add_state("has space", initial=True)
        with pytest.raises(FsmError, match="identifier"):
            generate_c(fsm)


class TestErrors:
    def test_invalid_identifier_rejected(self):
        fsm = Fsm("bad")
        fsm.add_state("has space", initial=True)
        with pytest.raises(FsmError, match="identifier"):
            generate_c(fsm)

    def test_no_initial_rejected(self):
        fsm = Fsm("empty")
        with pytest.raises(FsmError, match="no initial"):
            generate_c(fsm)
        with pytest.raises(FsmError, match="no initial"):
            generate_java(fsm)


class TestCrossCheck:
    def test_generated_c_transition_table_matches_simulation(self):
        """Parse the generated C dispatch and replay it in Python: the
        transition structure must agree with the FSM simulator."""
        from repro.fsm import FsmSimulator

        fsm = _machine()
        source = generate_c(fsm)
        # Every (state, event, target) triple must appear in the C code in
        # the right case block.
        for transition in fsm.transitions:
            case = f"case STATE_{transition.source.upper()}:"
            target = f"fsm->state = STATE_{transition.target.upper()};"
            case_pos = source.index(case)
            assert source.index(target, case_pos) > case_pos
        simulator = FsmSimulator(fsm)
        assert simulator.run(["unlock", "lock"]) == ["open", "closed"]
