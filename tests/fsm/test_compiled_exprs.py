"""Precompiled guard/action expressions (repro.fsm.simulator).

Guards and actions are compiled to code objects once per unique source
string; behaviour — including the exact error messages and *when* they
surface — must be indistinguishable from the original per-step ``eval``.
"""

import pytest

from repro import obs
from repro.fsm import Fsm, FsmRuntimeError, FsmSimulator
from repro.fsm.simulator import _SAFE_BUILTINS


def _fsm(guard=None, action=None):
    fsm = Fsm("m")
    fsm.add_state("a", initial=True)
    fsm.add_state("b")
    fsm.add_variable("x", 0.0)
    fsm.add_transition("a", "b", event="go", guard=guard, action=action)
    return fsm


def _expected_eval_error(expression):
    try:
        eval(expression, {"__builtins__": _SAFE_BUILTINS}, {"x": 0.0})
    except Exception as exc:  # noqa: BLE001 - the message is the point
        return str(exc)
    raise AssertionError(f"{expression!r} unexpectedly evaluated")


class TestErrorParity:
    def test_undefined_guard_variable_message(self):
        simulator = FsmSimulator(_fsm(guard="q > 1"))
        with pytest.raises(FsmRuntimeError) as excinfo:
            simulator.step("go")
        expected = _expected_eval_error("q > 1")
        assert str(excinfo.value) == f"guard 'q > 1' failed: {expected}"

    def test_syntax_error_guard_fails_at_step_not_construction(self):
        # compile() fails during eager warm-up; the raw string is kept and
        # re-evaluated at use, reproducing the original error then.
        simulator = FsmSimulator(_fsm(guard="x =="))
        with pytest.raises(FsmRuntimeError) as excinfo:
            simulator.step("go")
        expected = _expected_eval_error("x ==")
        assert str(excinfo.value) == f"guard 'x ==' failed: {expected}"

    def test_bad_action_message(self):
        simulator = FsmSimulator(_fsm(action="x = x / 0"))
        with pytest.raises(FsmRuntimeError) as excinfo:
            simulator.step("go")
        expected = _expected_eval_error("x / 0")
        assert str(excinfo.value) == f"action 'x = x / 0' failed: {expected}"

    def test_builtins_stay_restricted(self):
        simulator = FsmSimulator(_fsm(guard="open('/etc/hosts')"))
        with pytest.raises(FsmRuntimeError, match="guard"):
            simulator.step("go")

    def test_leading_whitespace_guard_still_evaluates(self):
        # eval() tolerates leading blanks; compile() alone would raise
        # IndentationError, so the compiler must strip them.
        simulator = FsmSimulator(_fsm(guard="  x < 1"))
        assert simulator.step("go") == "b"


class TestCompiledSemantics:
    def test_multi_statement_action_order(self):
        simulator = FsmSimulator(_fsm(action="x = x + 1; x = x * 10"))
        simulator.step("go")
        assert simulator.variables["x"] == 10.0

    def test_expression_statement_discarded(self):
        simulator = FsmSimulator(_fsm(action="x + 41; x = x + 1"))
        simulator.step("go")
        assert simulator.variables["x"] == 1.0

    def test_cache_shared_across_simulators(self):
        fsm = _fsm(guard="x < 5", action="x = x + 1")
        first = FsmSimulator(fsm)
        second = FsmSimulator(fsm)
        first.step("go")
        second.step("go")
        assert first.variables["x"] == second.variables["x"] == 1.0

    def test_transitions_added_after_construction_fire(self):
        # The adjacency cache is keyed by transition-list length, so a
        # post-construction add_transition must be picked up.
        fsm = _fsm()
        simulator = FsmSimulator(fsm)
        simulator.step("go")
        fsm.add_transition("b", "a", event="back")
        assert simulator.step("back") == "a"

    def test_guard_evaluations_counted(self):
        fsm = Fsm("m")
        fsm.add_state("a", initial=True)
        fsm.add_variable("x", 0.0)
        fsm.add_transition("a", "a", event="go", guard="x >= 1")
        fsm.add_transition("a", "a", event="go", guard="x < 1", action="x = x + 1")
        simulator = FsmSimulator(fsm)
        simulator.step("go")
        assert simulator.guard_evaluations == 2


class TestObservability:
    def test_compile_and_rate_metrics(self):
        recorder = obs.Recorder()
        with obs.use(recorder):
            # Unique expression text forces fresh compiles even when other
            # tests already warmed the process-wide cache.
            fsm = Fsm("m")
            fsm.add_state("a", initial=True)
            fsm.add_state("b")
            fsm.add_variable("obs_x", 0.0)
            fsm.add_transition(
                "a",
                "b",
                event="go",
                guard="obs_x <= 123456",
                action="obs_x = obs_x + 123456",
            )
            simulator = FsmSimulator(fsm)
            simulator.run(["go"])
        metrics = recorder.metrics
        assert metrics.counter("fsm.compile.exprs") >= 2
        assert metrics.counter("fsm.sim.guard_evals") >= 1
        assert metrics.counter("fsm.sim.transitions") == 1
        assert metrics.gauge_value("fsm.sim.guard_evals_per_sec") > 0
