"""Unit tests for UML state-machine flattening (repro.fsm.from_uml)."""

import pytest

from repro.fsm import FsmError, FsmSimulator, fsm_from_state_machine
from repro.uml import (
    FinalState,
    Pseudostate,
    Region,
    State,
    StateMachine,
    Transition,
)


def _flat_machine():
    machine = StateMachine("flat")
    region = machine.main_region()
    init = region.add_vertex(Pseudostate())
    a = region.add_vertex(State("A", entry="x = 1"))
    b = region.add_vertex(State("B", do="x = x + 1"))
    end = region.add_vertex(FinalState("end"))
    region.add_transition(Transition(init, a))
    region.add_transition(Transition(a, b, trigger="go", guard="x > 0"))
    region.add_transition(Transition(b, end, trigger="stop", effect="x = 0"))
    return machine


def _composite_machine():
    machine = StateMachine("comp")
    region = machine.main_region()
    init = region.add_vertex(Pseudostate())
    idle = region.add_vertex(State("idle"))
    work = region.add_vertex(State("work"))
    inner = work.add_region(Region("phases"))
    iinit = inner.add_vertex(Pseudostate())
    p1 = inner.add_vertex(State("p1"))
    p2 = inner.add_vertex(State("p2"))
    inner.add_transition(Transition(iinit, p1))
    inner.add_transition(Transition(p1, p2, trigger="next"))
    region.add_transition(Transition(init, idle))
    region.add_transition(Transition(idle, work, trigger="start"))
    region.add_transition(Transition(work, idle, trigger="abort"))
    return machine


class TestFlatLowering:
    def test_states_and_initial(self):
        fsm = fsm_from_state_machine(_flat_machine())
        assert set(fsm.states) == {"A", "B", "end"}
        assert fsm.initial == "A"
        assert fsm.states["end"].is_final

    def test_transitions_carry_trigger_guard_effect(self):
        fsm = fsm_from_state_machine(_flat_machine())
        go = [t for t in fsm.transitions if t.event == "go"][0]
        assert go.guard == "x > 0"
        stop = [t for t in fsm.transitions if t.event == "stop"][0]
        assert stop.action == "x = 0"

    def test_entry_and_do_merged(self):
        fsm = fsm_from_state_machine(_flat_machine())
        assert fsm.states["A"].entry == "x = 1"
        assert fsm.states["B"].entry == "x = x + 1"

    def test_result_is_executable(self):
        fsm = fsm_from_state_machine(_flat_machine())
        fsm.add_variable("x", 0.0)
        simulator = FsmSimulator(fsm)
        assert simulator.run(["go", "stop"]) == ["B", "end"]


class TestCompositeLowering:
    def test_composite_flattened_with_qualified_names(self):
        fsm = fsm_from_state_machine(_composite_machine())
        assert set(fsm.states) == {"idle", "work_p1", "work_p2"}

    def test_entering_composite_lands_on_initial_leaf(self):
        fsm = fsm_from_state_machine(_composite_machine())
        start = [t for t in fsm.transitions if t.event == "start"][0]
        assert (start.source, start.target) == ("idle", "work_p1")

    def test_leaving_composite_replicated_from_all_leaves(self):
        fsm = fsm_from_state_machine(_composite_machine())
        aborts = [t for t in fsm.transitions if t.event == "abort"]
        assert {t.source for t in aborts} == {"work_p1", "work_p2"}
        assert all(t.target == "idle" for t in aborts)

    def test_execution_through_hierarchy(self):
        fsm = fsm_from_state_machine(_composite_machine())
        simulator = FsmSimulator(fsm)
        assert simulator.run(["start", "next", "abort"]) == [
            "work_p1",
            "work_p2",
            "idle",
        ]


class TestErrors:
    def test_machine_without_region(self):
        with pytest.raises(FsmError, match="no region"):
            fsm_from_state_machine(StateMachine("empty"))

    def test_machine_without_initial(self):
        machine = StateMachine("m")
        machine.main_region().add_vertex(State("lonely"))
        with pytest.raises(FsmError, match="no initial"):
            fsm_from_state_machine(machine)

    def test_orthogonal_top_regions_unsupported(self):
        machine = StateMachine("m")
        machine.add_region(Region("r1"))
        machine.add_region(Region("r2"))
        with pytest.raises(FsmError, match="orthogonal"):
            fsm_from_state_machine(machine)

    def test_composite_without_inner_initial(self):
        machine = StateMachine("m")
        region = machine.main_region()
        init = region.add_vertex(Pseudostate())
        comp = region.add_vertex(State("comp"))
        inner = comp.add_region(Region("inner"))
        inner.add_vertex(State("leaf"))
        region.add_transition(Transition(init, comp))
        with pytest.raises(FsmError, match="initial"):
            fsm_from_state_machine(machine)
