"""Unit tests for the flat FSM metamodel (repro.fsm.model)."""

import pytest

from repro.fsm import Fsm, FsmError


def _machine():
    fsm = Fsm("m")
    fsm.add_state("a", initial=True)
    fsm.add_state("b")
    fsm.add_state("c", final=True)
    fsm.add_transition("a", "b", event="go")
    fsm.add_transition("b", "c", event="stop")
    return fsm


class TestConstruction:
    def test_first_state_becomes_initial(self):
        fsm = Fsm("m")
        fsm.add_state("only")
        assert fsm.initial == "only"

    def test_explicit_initial_overrides(self):
        fsm = Fsm("m")
        fsm.add_state("a")
        fsm.add_state("b", initial=True)
        assert fsm.initial == "b"

    def test_duplicate_state_rejected(self):
        fsm = Fsm("m")
        fsm.add_state("a")
        with pytest.raises(FsmError):
            fsm.add_state("a")

    def test_transition_needs_existing_states(self):
        fsm = Fsm("m")
        fsm.add_state("a")
        with pytest.raises(FsmError):
            fsm.add_transition("a", "ghost")
        with pytest.raises(FsmError):
            fsm.add_transition("ghost", "a")

    def test_final_state_cannot_source_transitions(self):
        fsm = _machine()
        with pytest.raises(FsmError):
            fsm.add_transition("c", "a", event="reset")

    def test_event_alphabet_collected_in_order(self):
        fsm = _machine()
        assert fsm.events == ["go", "stop"]

    def test_epsilon_not_in_alphabet(self):
        fsm = Fsm("m")
        fsm.add_state("a")
        fsm.add_state("b")
        fsm.add_transition("a", "b")
        assert fsm.events == []


class TestQueries:
    def test_transitions_from(self):
        fsm = _machine()
        assert len(fsm.transitions_from("a")) == 1
        assert fsm.transitions_from("c") == []

    def test_reachability(self):
        fsm = _machine()
        fsm.add_state("island")
        assert fsm.reachable_states() == ["a", "b", "c"]
        assert fsm.unreachable_states() == ["island"]

    def test_transition_label(self):
        fsm = Fsm("m")
        fsm.add_state("a")
        fsm.add_state("b")
        t = fsm.add_transition("a", "b", event="go", guard="x > 0", action="x = 0")
        assert t.label() == "go [x > 0] / x = 0"
        t2 = fsm.add_transition("a", "b")
        assert t2.label() == "ε"


class TestValidation:
    def test_clean_machine(self):
        assert _machine().validate() == []

    def test_no_initial_flagged(self):
        fsm = Fsm("m")
        assert any("no initial" in p for p in fsm.validate())

    def test_nondeterminism_flagged(self):
        fsm = Fsm("m")
        fsm.add_state("a")
        fsm.add_state("b")
        fsm.add_transition("a", "b", event="go")
        fsm.add_transition("a", "a", event="go")
        assert any("nondeterministic" in p for p in fsm.validate())

    def test_different_guards_not_flagged(self):
        fsm = Fsm("m")
        fsm.add_state("a")
        fsm.add_state("b")
        fsm.add_transition("a", "b", event="go", guard="x > 0")
        fsm.add_transition("a", "a", event="go", guard="x <= 0")
        assert not any("nondeterministic" in p for p in fsm.validate())

    def test_unreachable_flagged(self):
        fsm = _machine()
        fsm.add_state("island")
        assert any("unreachable" in p for p in fsm.validate())
