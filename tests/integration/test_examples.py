"""Every example script must run cleanly end to end.

Examples are user-facing documentation; this test executes each one in a
subprocess (so ``__main__`` guards and prints behave exactly as for a
user) and fails on any non-zero exit.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

_EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_every_example_is_covered():
    assert len(_EXAMPLES) >= 9


@pytest.mark.parametrize("script", _EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\n{completed.stdout[-2000:]}\n"
        f"{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script} printed nothing"


class TestExampleContent:
    """Spot-check the claims each example's output makes."""

    def _run(self, script):
        return subprocess.run(
            [sys.executable, os.path.join(EXAMPLES_DIR, script)],
            capture_output=True,
            text=True,
            timeout=120,
        ).stdout

    def test_quickstart_shows_caam_census(self):
        out = self._run("quickstart.py")
        assert "2 CPU-SS" in out
        assert ".mdl" in out

    def test_crane_reports_barrier_and_regulation(self):
        out = self._run("crane_control.py")
        assert "deadlocked cycle" in out
        assert "inserted crane/CPU1/T3/Delay" in out
        assert "moved toward" in out

    def test_synthetic_matches_paper_grouping(self):
        out = self._run("synthetic_mpsoc.py")
        assert "matches the paper's grouping: True" in out

    def test_mjpeg_is_pixel_perfect(self):
        out = self._run("mjpeg_decoder.py")
        assert "pixel-perfect:   True" in out

    def test_xmi_interchange_identical(self):
        out = self._run("xmi_interchange.py")
        assert "identical .mdl text: True" in out
