"""Integration tests: the full pipeline across packages."""

import pytest

from repro.apps import crane, didactic, synthetic
from repro.backends import DesignFlow, JavaBackend, KpnBackend, SimulinkBackend
from repro.core import synthesize
from repro.mpsoc import generate_all, platform_for_caam, schedule_caam
from repro.simulink import Simulator, from_ecore_string, from_mdl, is_executable
from repro.uml import from_xmi_string, to_xmi_string


class TestFourStepFlow:
    """The paper's Fig. 2 pipeline: UML (XMI) -> model-to-model -> optimize
    -> model-to-text (.mdl)."""

    def test_every_step_artifact_produced(self, didactic_model):
        # Step 1: the UML model, as an interchange file.
        xmi = to_xmi_string(didactic_model)
        reloaded = from_xmi_string(xmi)
        # Step 2+3: transformation + optimization.
        result = synthesize(reloaded, behaviors=didactic.behaviors())
        assert "caam:Model" in result.intermediate_xml
        # Step 4: .mdl emission, parseable by the Simulink substrate.
        loaded = from_mdl(result.mdl_text)
        assert loaded.summary() == result.caam.summary()

    def test_intermediate_reloads_and_optimizes_separately(self, didactic_model):
        """The persisted step-2 artifact can be optimized offline, like the
        paper's tool that works on the E-core file."""
        from repro.core import insert_temporal_barriers

        result = synthesize(crane.build_model(), insert_barriers=False)
        intermediate = from_ecore_string(result.intermediate_xml)
        assert not is_executable(intermediate)[0]
        insert_temporal_barriers(intermediate)
        assert is_executable(intermediate)[0]

    def test_xmi_round_trip_gives_identical_synthesis(self, synthetic_model):
        direct = synthesize(synthetic_model, auto_allocate=True)
        via_xmi = synthesize(
            from_xmi_string(to_xmi_string(synthetic_model)), auto_allocate=True
        )
        assert direct.mdl_text == via_xmi.mdl_text


class TestHeterogeneousFanOut:
    def test_one_model_three_backends(self, crane_model):
        flow = DesignFlow(
            [SimulinkBackend(behaviors=crane.behaviors()), JavaBackend(), KpnBackend()]
        )
        artifacts = flow.generate_all(crane_model)
        assert set(artifacts) == {"simulink", "java", "kpn"}
        assert "crane.mdl" in artifacts["simulink"]
        assert "T3Thread.java" in artifacts["java"]
        assert "crane.kpn.dot" in artifacts["kpn"]

    def test_caam_feeds_mpsoc_codegen(self, didactic_result):
        sources = generate_all(didactic_result.caam)
        assert len(sources) == 2
        assert all("rt_scheduler_run" in s for s in sources.values())

    def test_caam_feeds_mpsoc_scheduler(self, didactic_result):
        platform = platform_for_caam(didactic_result.caam)
        schedule = schedule_caam(didactic_result.caam, platform)
        assert len(schedule.tasks) == 3
        assert schedule.makespan > 0


class TestExecutableEndToEnd:
    def test_didactic_pipeline_numerics(self):
        result = synthesize(
            didactic.build_model(), behaviors=didactic.behaviors()
        )
        simulator = Simulator(result.caam)
        trace = simulator.run(3, inputs={"In1": [10, 20, 30]})
        # IODevice -> filter(/2) -> channel -> dec(-1) -> channel -> gain(1).
        assert trace.output("Out1") == [4.0, 9.0, 14.0]

    def test_crane_closed_loop_regulates(self):
        result = synthesize(crane.build_model(), behaviors=crane.behaviors())
        simulator = Simulator(result.caam)
        plant = crane.CranePlant()
        voltages = []
        for _ in range(200):
            trace = simulator.run(
                1,
                inputs={
                    "In1": [plant.xc],
                    "In2": [plant.alpha],
                    "In3": [3.0],
                },
            )
            voltage = trace.output("Out1")[0]
            voltages.append(voltage)
            plant.step(voltage)
        assert all(abs(v) <= crane.V_MAX for v in voltages)
        assert plant.xc > 0.5

    def test_synthetic_caam_runs(self, synthetic_result):
        simulator = Simulator(synthetic_result.caam)
        simulator.run(3)  # no IO; just must not raise


class TestMdlInterchange:
    def test_all_three_case_studies_round_trip(
        self, didactic_result, crane_result, synthetic_result
    ):
        for result in (didactic_result, crane_result, synthetic_result):
            loaded = from_mdl(result.mdl_text)
            assert loaded.summary() == result.caam.summary()

    def test_reparsed_crane_still_executable(self, crane_result):
        loaded = from_mdl(crane_result.mdl_text)
        # callbacks are not serialized; S-functions fall back to the
        # placeholder behaviour, but the model must still schedule.
        assert is_executable(loaded)[0]
