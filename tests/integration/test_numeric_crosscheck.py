"""Numeric cross-validation of the dataflow simulator.

Random acyclic block networks are generated and executed both by the
simulator and by a direct reference evaluator written independently here
(plain recursion over the wiring).  Any divergence flags a scheduling or
semantics bug.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulink import Block, SimulinkModel, Simulator


def _reference_eval(model, stimulus, steps):
    """Independent evaluation: recursive, memoized per step."""
    system = model.root
    state = {}
    for block in system.blocks:
        if block.block_type == "UnitDelay":
            state[block.name] = float(
                block.parameters.get("InitialCondition", 0.0)
            )
    outputs = {b.name: [] for b in system.blocks if b.block_type == "Outport"}

    for step in range(steps):
        memo = {}

        def value_of(block):
            if block.name in memo:
                return memo[block.name]
            kind = block.block_type
            if kind == "Constant":
                result = float(block.parameters.get("Value", 0.0))
            elif kind == "Inport":
                samples = stimulus.get(block.name, [])
                result = float(samples[step]) if step < len(samples) else 0.0
            elif kind == "UnitDelay":
                result = state[block.name]
            else:
                ins = []
                for index in range(1, block.num_inputs + 1):
                    line = system.driver_of(block.input(index))
                    ins.append(value_of(line.source.block))
                if kind == "Gain":
                    result = float(block.parameters.get("Gain", 1.0)) * ins[0]
                elif kind == "Sum":
                    signs = str(
                        block.parameters.get("Inputs", "+" * len(ins))
                    )
                    result = sum(
                        v if s == "+" else -v for s, v in zip(signs, ins)
                    )
                elif kind == "Product":
                    result = math.prod(ins)
                elif kind == "Abs":
                    result = abs(ins[0])
                elif kind == "Saturation":
                    lo = float(block.parameters.get("LowerLimit", -1.0))
                    hi = float(block.parameters.get("UpperLimit", 1.0))
                    result = min(max(ins[0], lo), hi)
                else:
                    raise AssertionError(f"unhandled {kind}")
            memo[block.name] = result
            return result

        for block in system.blocks:
            if block.block_type == "Outport":
                line = system.driver_of(block.input(1))
                outputs[block.name].append(value_of(line.source.block))
        # Update delays after all reads.
        new_state = {}
        for block in system.blocks:
            if block.block_type == "UnitDelay":
                line = system.driver_of(block.input(1))
                new_state[block.name] = value_of(line.source.block)
        state.update(new_state)
    return outputs


_FEEDTHROUGH = ["Gain", "Sum", "Product", "Abs", "Saturation"]


@st.composite
def _random_networks(draw):
    model = SimulinkModel("rnd")
    sources = draw(st.integers(min_value=1, max_value=3))
    for index in range(sources):
        kind = draw(st.sampled_from(["Constant", "Inport", "UnitDelay"]))
        if kind == "Constant":
            model.root.add(
                Block(
                    f"src{index}",
                    "Constant",
                    inputs=0,
                    parameters={
                        "Value": draw(
                            st.floats(-5, 5, allow_nan=False)
                        )
                    },
                )
            )
        elif kind == "Inport":
            model.root.add(
                Block(
                    f"src{index}",
                    "Inport",
                    inputs=0,
                    outputs=1,
                    parameters={"Port": index + 1},
                )
            )
        else:
            model.root.add(
                Block(
                    f"src{index}",
                    "UnitDelay",
                    parameters={
                        "InitialCondition": draw(
                            st.floats(-2, 2, allow_nan=False)
                        )
                    },
                )
            )
    body = draw(st.integers(min_value=1, max_value=6))
    for index in range(body):
        kind = draw(st.sampled_from(_FEEDTHROUGH))
        inputs = 2 if kind in ("Sum", "Product") else 1
        params = {}
        if kind == "Gain":
            params["Gain"] = draw(st.floats(-3, 3, allow_nan=False))
        if kind == "Sum":
            params["Inputs"] = draw(st.sampled_from(["++", "+-", "-+"]))
        if kind == "Saturation":
            params["LowerLimit"], params["UpperLimit"] = -2.0, 2.0
        model.root.add(
            Block(f"b{index}", kind, inputs=inputs, parameters=params)
        )
    out = model.root.add(
        Block("Out1", "Outport", inputs=1, outputs=0, parameters={"Port": 1})
    )
    # Wire every input from an earlier block (acyclic), delays from anywhere.
    blocks = model.root.blocks
    for position, block in enumerate(blocks):
        for index in range(1, block.num_inputs + 1):
            if block.block_type == "UnitDelay":
                candidates = [
                    b for b in blocks if b.num_outputs > 0 and b is not block
                ]
            else:
                candidates = [
                    b
                    for b in blocks[:position]
                    if b.num_outputs > 0
                ]
            if not candidates:
                candidates = [
                    b for b in blocks if b.block_type == "Constant"
                ]
                if not candidates:
                    source = model.root.add(
                        Block(
                            f"pad{position}_{index}",
                            "Constant",
                            inputs=0,
                            parameters={"Value": 1.0},
                        )
                    )
                    candidates = [source]
            source = candidates[
                draw(st.integers(0, len(candidates) - 1))
            ]
            model.root.connect(source.output(1), block.input(index))
    stimulus = {
        b.name: [
            draw(st.floats(-3, 3, allow_nan=False)) for _ in range(4)
        ]
        for b in blocks
        if b.block_type == "Inport"
    }
    return model, stimulus


class TestNumericCrossCheck:
    @given(_random_networks())
    @settings(max_examples=60, deadline=None)
    def test_simulator_matches_reference(self, network):
        model, stimulus = network
        simulator = Simulator(model)
        trace = simulator.run(4, inputs=stimulus)
        reference = _reference_eval(model, stimulus, 4)
        for name, samples in reference.items():
            assert trace.outputs[name] == pytest.approx(samples, abs=1e-9)
