"""Failure injection: corrupted inputs must fail loudly and precisely.

Parsers (XMI, MDL, E-core) receive truncated, mangled and garbage inputs;
the contract is that they raise their *documented* error types (never an
unrelated ``AttributeError``/``IndexError`` leaking from internals) and
never return a half-built model silently.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import didactic
from repro.simulink import MdlError, from_mdl
from repro.simulink.ecore import EcoreError, from_ecore_string
from repro.uml import XmiError, from_xmi_string, to_xmi_string
from repro.core import synthesize


@pytest.fixture(scope="module")
def xmi_text():
    return to_xmi_string(didactic.build_model())


@pytest.fixture(scope="module")
def mdl_text():
    return synthesize(didactic.build_model()).mdl_text


@pytest.fixture(scope="module")
def ecore_text():
    return synthesize(didactic.build_model()).intermediate_xml


class TestTruncation:
    def test_truncated_xmi(self, xmi_text):
        for cut in (10, len(xmi_text) // 3, len(xmi_text) - 20):
            with pytest.raises(XmiError):
                from_xmi_string(xmi_text[:cut])

    def test_truncated_mdl(self, mdl_text):
        for cut in (5, len(mdl_text) // 2, len(mdl_text) - 10):
            with pytest.raises(MdlError):
                from_mdl(mdl_text[:cut])

    def test_truncated_ecore(self, ecore_text):
        for cut in (5, len(ecore_text) // 2):
            with pytest.raises(EcoreError):
                from_ecore_string(ecore_text[:cut])


class TestMangledReferences:
    def test_dangling_xmi_reference(self, xmi_text):
        mangled = xmi_text.replace('classifier="id', 'classifier="zz', 1)
        if mangled == xmi_text:
            pytest.skip("no classifier reference in this model")
        with pytest.raises(XmiError, match="dangling reference"):
            from_xmi_string(mangled)

    def test_mdl_line_to_missing_block(self, mdl_text):
        mangled = mdl_text.replace('SrcBlock "calc"', 'SrcBlock "ghost"', 1)
        assert mangled != mdl_text
        with pytest.raises(Exception) as excinfo:
            from_mdl(mangled)
        # SimulinkError hierarchy, not a random internal failure.
        from repro.simulink import SimulinkError

        assert isinstance(excinfo.value, SimulinkError)

    def test_mdl_duplicate_block_name(self, mdl_text):
        # Renaming one block to collide with another must be rejected.
        mangled = mdl_text.replace('Name "dec"', 'Name "calc"', 1)
        assert mangled != mdl_text
        from repro.simulink import SimulinkError

        with pytest.raises(SimulinkError):
            from_mdl(mangled)


class TestGarbage:
    @given(st.text(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_random_text_never_crashes_xmi(self, text):
        try:
            from_xmi_string(text)
        except XmiError:
            pass  # the documented failure mode

    @given(st.text(alphabet="ModelSystemBlock{}\"[]#\n ", max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_random_text_never_crashes_mdl(self, text):
        from repro.simulink import SimulinkError

        try:
            from_mdl(text)
        except (MdlError, SimulinkError):
            pass

    @given(st.binary(max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_binary_rejected_by_xmi(self, blob):
        try:
            from_xmi_string(blob.decode("latin-1"))
        except XmiError:
            pass
