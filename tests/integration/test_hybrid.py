"""Integration test: heterogeneous co-execution (dataflow CAAM + FSM).

Mirrors examples/hybrid_thermostat.py — the paper's core motivation is
systems composed of subsystems with different models of computation; this
test checks the two generated executables actually cooperate: the FSM's
mode gates the plant, the dataflow pipeline feeds the FSM's events, and
the closed loop regulates.
"""

import math

import pytest

from repro.core import synthesize
from repro.fsm import FsmSimulator, fsm_from_state_machine
from repro.simulink import Simulator
from repro.uml import (
    ModelBuilder,
    Pseudostate,
    State,
    StateMachine,
    Transition,
)


def _build_model():
    b = ModelBuilder("thermostat")
    b.thread("Acquire")
    b.thread("Demand")
    b.io_device("Hw")
    b.processor("CPU1", threads=["Acquire", "Demand"])
    sd = b.interaction("main")
    sd.call("Acquire", "Hw", "getTemperature", result="raw")
    sd.call("Acquire", "Platform", "lowpass", args=["raw", 0.6], result="temp")
    sd.call("Acquire", "Demand", "setTemp", args=["temp"])
    sd.call("Demand", "Hw", "getSetpoint", result="target")
    sd.call("Demand", "Platform", "sub", args=["target", "temp"], result="err")
    sd.call("Demand", "Platform", "gain", args=["err", 1.5], result="demand")
    sd.call("Demand", "Hw", "setDemand", args=["demand"])

    machine = StateMachine("mode")
    region = machine.main_region()
    init = region.add_vertex(Pseudostate())
    off = region.add_vertex(State("off", entry="heater = 0"))
    heating = region.add_vertex(State("heating", entry="heater = 1"))
    region.add_transition(Transition(init, off))
    region.add_transition(Transition(off, heating, trigger="too_cold"))
    region.add_transition(Transition(heating, off, trigger="comfortable"))
    b.model.add_state_machine(machine)
    return b.build()


class TestHybridCoExecution:
    def test_one_model_yields_both_subsystems(self):
        model = _build_model()
        dataflow = synthesize(model)
        fsm = fsm_from_state_machine(model.state_machines[0])
        assert dataflow.summary.threads == 2
        assert set(fsm.states) == {"off", "heating"}

    def test_closed_loop_regulates(self):
        model = _build_model()
        dataflow = synthesize(model)
        fsm = fsm_from_state_machine(model.state_machines[0])
        fsm.add_variable("heater", 0.0)
        caam_sim = Simulator(dataflow.caam)
        fsm_sim = FsmSimulator(fsm)

        target = 21.0
        room = 14.0
        modes = set()
        for step in range(80):
            room += 0.12 * (16.0 - room)
            room += 0.9 * fsm_sim.variables["heater"]
            noisy = room + 0.3 * math.sin(1.7 * step)
            trace = caam_sim.run(1, inputs={"In1": [noisy], "In2": [target]})
            demand = trace.output("Out1")[0]
            if demand > 2.0:
                event = "too_cold"
            elif abs(demand) < 0.5:
                event = "comfortable"
            else:
                event = ""
            modes.add(fsm_sim.step(event))
        assert modes == {"off", "heating"}  # the supervisor actually switched
        assert 18.0 < room < 24.0  # and the loop regulates near the target

    def test_without_fsm_room_stays_cold(self):
        """Ablation: without the supervisor the heater never turns on."""
        model = _build_model()
        dataflow = synthesize(model)
        caam_sim = Simulator(dataflow.caam)
        room = 14.0
        for step in range(80):
            room += 0.12 * (16.0 - room)
            caam_sim.run(1, inputs={"In1": [room], "In2": [21.0]})
        assert room < 17.0
