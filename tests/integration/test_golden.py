"""Golden-file tests: generated artifacts must match checked-in copies.

These catch accidental drift in the serializers and the mapping — any
intentional change to the generated output must update the golden files
(regenerate with the snippet in each test's failure message).
"""

import os

import pytest

from repro.apps import didactic
from repro.core import synthesize

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "golden")


def _golden(name: str) -> str:
    with open(os.path.join(GOLDEN_DIR, name), encoding="utf-8") as handle:
        return handle.read()


@pytest.fixture(scope="module")
def result():
    return synthesize(didactic.build_model())


class TestGoldenArtifacts:
    def test_mdl_matches_golden(self, result):
        assert result.mdl_text == _golden("didactic.mdl"), (
            "generated .mdl drifted from tests/golden/didactic.mdl; if the "
            "change is intentional, regenerate the golden file"
        )

    def test_intermediate_matches_golden(self, result):
        assert result.intermediate_xml == _golden("didactic.caam.xml")

    def test_synthesis_is_deterministic(self):
        first = synthesize(didactic.build_model())
        second = synthesize(didactic.build_model())
        assert first.mdl_text == second.mdl_text
        assert first.intermediate_xml == second.intermediate_xml


class TestCraneGolden:
    def test_crane_mdl_matches_golden(self):
        from repro.apps import crane

        result = synthesize(crane.build_model(), behaviors=crane.behaviors())
        assert result.mdl_text == _golden("crane.mdl"), (
            "generated crane .mdl drifted from tests/golden/crane.mdl "
            "(covers hierarchical mapping + barrier insertion); regenerate "
            "if intentional"
        )
