"""Cross-module property-based tests (hypothesis).

Random UML models are synthesized end-to-end; the invariants asserted here
are the paper's implicit correctness conditions:

- the generated CAAM is structurally valid (architecture rules hold);
- after the §4.2.2 pass the model always schedules (no deadlock);
- channel protocols always match thread placement (§4.2.1);
- the ``.mdl`` artifact round-trips losslessly;
- the automatic allocation never splits the critical path.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import synthesize
from repro.simulink import from_mdl, is_executable, validate_caam
from repro.uml import DeploymentPlan, ModelBuilder

_THREADS = ["T1", "T2", "T3", "T4"]


@st.composite
def _random_systems(draw):
    """A random multi-thread UML model plus a random deployment."""
    b = ModelBuilder("rnd")
    thread_count = draw(st.integers(min_value=1, max_value=4))
    threads = _THREADS[:thread_count]
    for thread in threads:
        b.thread(thread)
    b.io_device("Dev")
    sd = b.interaction("main")
    # Every thread produces a local value first (gives channels a source).
    for thread in threads:
        sd.call(thread, thread, f"work{thread}", result=f"v{thread}")
    # Random communications.
    count = draw(st.integers(min_value=0, max_value=8))
    for i in range(count):
        sender = draw(st.sampled_from(threads))
        kind = draw(st.sampled_from(["send", "get", "io_in", "io_out", "calc"]))
        if kind == "send" and thread_count > 1:
            receiver = draw(
                st.sampled_from([t for t in threads if t != sender])
            )
            sd.call(sender, receiver, f"setCh{i}", args=[f"v{sender}"])
        elif kind == "get" and thread_count > 1:
            receiver = draw(
                st.sampled_from([t for t in threads if t != sender])
            )
            sd.call(sender, receiver, f"getV{receiver}", result=f"g{i}")
        elif kind == "io_in":
            sd.call(sender, "Dev", f"getIn{i}", result=f"x{i}")
        elif kind == "io_out":
            sd.call(sender, "Dev", f"setOut{i}", args=[f"v{sender}"])
        else:
            sd.call(sender, sender, f"calc{i}", args=[f"v{sender}"], result=f"c{i}")
    # Occasionally wrap a conditional computation in an alt fragment.
    if draw(st.booleans()):
        owner = draw(st.sampled_from(threads))
        then_branch, else_branch = sd.alt(f"v{owner}", "else")
        then_branch.call(owner, "Dev", "getAltIn", result="altv")
        else_branch.call(owner, owner, "altB", result="altv")
        sd.call(owner, owner, "useAlt", args=["altv"])
    cpu_count = draw(st.integers(min_value=1, max_value=3))
    mapping = {
        thread: f"CPU{draw(st.integers(0, cpu_count - 1))}"
        for thread in threads
    }
    return b.build(), DeploymentPlan.from_mapping(mapping)


class TestSynthesisInvariants:
    @given(_random_systems())
    @settings(max_examples=50, deadline=None)
    def test_caam_always_structurally_valid(self, system):
        model, plan = system
        result = synthesize(model, plan, validate=False)
        assert validate_caam(result.caam) == []

    @given(_random_systems())
    @settings(max_examples=50, deadline=None)
    def test_barrier_pass_guarantees_schedulability(self, system):
        model, plan = system
        result = synthesize(model, plan, validate=False)
        executable, cycle = is_executable(result.caam)
        assert executable, f"deadlock through {cycle}"

    @given(_random_systems())
    @settings(max_examples=50, deadline=None)
    def test_channel_protocols_match_placement(self, system):
        model, plan = system
        result = synthesize(model, plan, validate=False)
        for channel in result.caam.intra_cpu_channels():
            assert channel.parent is not result.caam.root
        for channel in result.caam.inter_cpu_channels():
            assert channel.parent is result.caam.root

    @given(_random_systems())
    @settings(max_examples=30, deadline=None)
    def test_mdl_round_trip_lossless(self, system):
        model, plan = system
        result = synthesize(model, plan, validate=False)
        loaded = from_mdl(result.mdl_text)
        from repro.simulink import diff_models, to_mdl

        assert diff_models(result.caam, loaded) == []
        assert to_mdl(loaded) == result.mdl_text

    @given(_random_systems())
    @settings(max_examples=30, deadline=None)
    def test_every_planned_thread_materialized(self, system):
        model, plan = system
        result = synthesize(model, plan, validate=False)
        produced = {t.name for t in result.caam.threads()}
        assert produced == set(plan.threads)

    @given(_random_systems())
    @settings(max_examples=30, deadline=None)
    def test_auto_allocation_keeps_critical_path_together(self, system):
        from repro.core import allocate_from_model, critical_path_cpu

        model, _ = system
        allocation = allocate_from_model(model)
        if allocation.clustering.critical_path:
            assert critical_path_cpu(allocation) is not None

    @given(_random_systems())
    @settings(max_examples=25, deadline=None)
    def test_layout_never_overlaps(self, system):
        from repro.simulink.layout import overlaps

        model, plan = system
        result = synthesize(model, plan, validate=False)
        for inner in result.caam.all_systems():
            assert overlaps(inner) == []

    @given(_random_systems())
    @settings(max_examples=25, deadline=None)
    def test_generated_model_runs_three_steps(self, system):
        from repro.simulink import Simulator

        model, plan = system
        result = synthesize(model, plan, validate=False)
        simulator = Simulator(result.caam)
        trace = simulator.run(3)
        assert trace.steps == 3
