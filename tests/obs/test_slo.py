"""SLO engine: targets, windows, burn rates, risk levels, config."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.slo import (
    RISK_LEVELS,
    SloEngine,
    SloTarget,
    default_server_targets,
    _estimate_fraction_over,
)


def _availability_target(pct=99.0):
    return SloTarget(
        name="jobs",
        availability_pct=pct,
        good=("jobs.done",),
        bad=("jobs.failed", "jobs.timed_out"),
    )


def _latency_target(**bounds):
    return SloTarget(name="lat", source="job.latency", **bounds)


def _record(document, target, objective):
    for record in document["records"]:
        if record["target"] == target and record["objective"] == objective:
            return record
    raise AssertionError(f"no record for {target}.{objective}")


class TestAvailability:
    def test_all_good_is_ok_with_full_budget(self):
        registry = MetricsRegistry()
        registry.incr("jobs.done", 100)
        engine = SloEngine([_availability_target()])
        record = _record(engine.evaluate(registry), "jobs", "availability")
        assert record["events"] == 100
        assert record["errors"] == 0
        assert record["attainment_pct"] == 100.0
        assert record["budget_remaining_pct"] == 100.0
        assert record["burn_rate"] == 0.0
        assert record["risk"] == "ok"

    def test_burn_rate_is_error_fraction_over_allowed(self):
        registry = MetricsRegistry()
        registry.incr("jobs.done", 995)
        registry.incr("jobs.failed", 5)
        engine = SloEngine([_availability_target(99.0)])
        record = _record(engine.evaluate(registry), "jobs", "availability")
        # 0.5% errors against a 1% budget: half the budget burned.
        assert record["error_fraction"] == pytest.approx(0.005)
        assert record["burn_rate"] == pytest.approx(0.5)
        assert record["budget_remaining_pct"] == pytest.approx(50.0)
        assert record["risk"] == "warn"

    def test_breach_when_budget_exhausted(self):
        registry = MetricsRegistry()
        registry.incr("jobs.done", 90)
        registry.incr("jobs.failed", 10)
        engine = SloEngine([_availability_target(99.0)])
        document = engine.evaluate(registry)
        record = _record(document, "jobs", "availability")
        assert record["burn_rate"] >= 1.0
        assert record["budget_remaining_pct"] == 0.0
        assert record["risk"] == "breach"
        assert document["risk"] == "breach"

    def test_zero_events_is_vacuously_ok(self):
        engine = SloEngine([_availability_target()])
        record = _record(
            engine.evaluate(MetricsRegistry()), "jobs", "availability"
        )
        assert record["events"] == 0
        assert record["attainment_pct"] == 100.0
        assert record["burn_rate"] == 0.0
        assert record["risk"] == "ok"


class TestLatency:
    def test_all_under_bound_is_ok(self):
        registry = MetricsRegistry()
        for _ in range(50):
            registry.hist("job.latency", 0.1)
        engine = SloEngine([_latency_target(p95_s=1.0)])
        record = _record(engine.evaluate(registry), "lat", "p95")
        assert record["observed"] == pytest.approx(0.1)
        assert record["errors"] == 0
        assert record["risk"] == "ok"

    def test_violation_fraction_drives_burn(self):
        registry = MetricsRegistry()
        # 10% of observations over the bound against p95's 5% allowance:
        # burn rate 2 — a breach.
        for index in range(100):
            registry.hist("job.latency", 5.0 if index < 10 else 0.1)
        engine = SloEngine([_latency_target(p95_s=1.0)])
        record = _record(engine.evaluate(registry), "lat", "p95")
        assert record["error_fraction"] == pytest.approx(0.10)
        assert record["burn_rate"] == pytest.approx(2.0)
        assert record["risk"] == "breach"

    def test_missing_histogram_is_vacuously_ok(self):
        engine = SloEngine([_latency_target(p50_s=1.0, p95_s=2.0, p99_s=3.0)])
        document = engine.evaluate(MetricsRegistry())
        for objective in ("p50", "p95", "p99"):
            record = _record(document, "lat", objective)
            assert record["events"] == 0
            assert record["risk"] == "ok"

    def test_attach_tracks_timer_sources(self):
        registry = MetricsRegistry()
        engine = SloEngine([SloTarget(name="s", source="flow.x", p95_s=1.0)])
        engine.attach(registry)
        registry.observe("flow.x", 0.2)  # a closed span feeding its timer
        assert registry.histogram_stat("flow.x") is not None
        record = _record(engine.evaluate(registry), "s", "p95")
        assert record["events"] == 1


class TestRollingWindow:
    def test_old_errors_age_out(self):
        registry = MetricsRegistry()
        engine = SloEngine([_availability_target(99.0)], window_s=60.0)
        registry.incr("jobs.failed", 50)
        registry.incr("jobs.done", 50)
        first = _record(
            engine.evaluate(registry, now=1000.0), "jobs", "availability"
        )
        assert first["risk"] == "breach"
        # A clean later window: only the delta since the in-window base
        # point counts, so the early failures no longer burn budget.
        registry.incr("jobs.done", 100)
        mid = engine.evaluate(registry, now=1050.0)
        registry.incr("jobs.done", 100)
        later = _record(
            engine.evaluate(registry, now=1120.0), "jobs", "availability"
        )
        assert later["errors"] == 0.0
        assert later["risk"] == "ok"

    def test_counts_are_window_deltas(self):
        registry = MetricsRegistry()
        engine = SloEngine([_availability_target(99.0)], window_s=60.0)
        registry.incr("jobs.done", 10)
        engine.evaluate(registry, now=0.0)
        registry.incr("jobs.done", 5)
        record = _record(
            engine.evaluate(registry, now=30.0), "jobs", "availability"
        )
        assert record["events"] == 5


class TestPublish:
    def test_publish_writes_gauges(self):
        registry = MetricsRegistry()
        registry.incr("jobs.done", 10)
        engine = SloEngine([_availability_target()])
        engine.evaluate(registry, publish=True)
        assert registry.gauge_value("slo.jobs.availability.burn_rate") == 0.0
        assert (
            registry.gauge_value("slo.jobs.availability.budget_remaining_pct")
            == 100.0
        )
        assert registry.gauge_value("slo.jobs.availability.risk") == 0.0
        assert registry.gauge_value("slo.risk") == 0.0

    def test_risk_gauge_encodes_levels(self):
        registry = MetricsRegistry()
        registry.incr("jobs.failed", 10)
        engine = SloEngine([_availability_target()])
        engine.evaluate(registry, publish=True)
        assert registry.gauge_value("slo.risk") == float(
            RISK_LEVELS.index("breach")
        )


class TestConfig:
    def test_from_config_roundtrip(self, tmp_path):
        config = {
            "window_s": 120,
            "warn_burn": 0.25,
            "targets": [
                {
                    "name": "api",
                    "availability_pct": 99.9,
                    "good": ["ok"],
                    "bad": ["err"],
                },
                {"name": "lat", "source": "h", "p95_s": 0.5},
            ],
        }
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(config))
        engine = SloEngine.from_config(str(path))
        assert engine.window_s == 120.0
        assert engine.warn_burn == 0.25
        assert [t.name for t in engine.targets] == ["api", "lat"]
        assert engine.targets[1].p95_s == 0.5

    def test_bare_list_shorthand(self):
        engine = SloEngine.from_config([{"name": "x", "source": "h", "p50_s": 1}])
        assert engine.targets[0].p50_s == 1.0

    def test_rejects_unknown_keys_and_missing_name(self):
        with pytest.raises(ValueError, match="unknown keys"):
            SloTarget.from_dict({"name": "x", "p95_ms": 10})
        with pytest.raises(ValueError, match="name"):
            SloTarget.from_dict({"p95_s": 10})
        with pytest.raises(ValueError, match="targets"):
            SloEngine.from_config({"targets": []})

    def test_duplicate_target_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SloEngine([_latency_target(p50_s=1.0), _latency_target(p50_s=2.0)])

    def test_default_server_targets_cover_kinds_and_queue(self):
        names = {t.name for t in default_server_targets()}
        assert {"synthesize", "explore", "simulate", "jobs", "queue-wait"} <= names


class TestSnapshotEvaluation:
    def test_offline_matches_live_availability(self):
        registry = MetricsRegistry()
        registry.incr("jobs.done", 95)
        registry.incr("jobs.failed", 5)
        engine = SloEngine([_availability_target(99.0)])
        live = _record(engine.evaluate(registry), "jobs", "availability")
        offline = _record(
            SloEngine([_availability_target(99.0)]).evaluate_snapshot(
                registry.to_dict()
            ),
            "jobs",
            "availability",
        )
        assert offline["errors"] == live["errors"]
        assert offline["burn_rate"] == pytest.approx(live["burn_rate"])
        assert offline["risk"] == live["risk"]

    def test_fraction_over_interpolates_anchors(self):
        hist = {
            "count": 100,
            "min": 0.0,
            "p50": 1.0,
            "p95": 2.0,
            "p99": 4.0,
            "max": 10.0,
        }
        assert _estimate_fraction_over(hist, 10.0) == 0.0
        assert _estimate_fraction_over(hist, -1.0) == 1.0
        assert _estimate_fraction_over(hist, 1.0) == pytest.approx(0.5)
        assert _estimate_fraction_over(hist, 2.0) == pytest.approx(0.05)
        # Halfway between p95 (2.0) and p99 (4.0): CDF ~0.97.
        assert _estimate_fraction_over(hist, 3.0) == pytest.approx(0.03)
        assert _estimate_fraction_over({"count": 0}, 1.0) == 0.0
