"""Structured JSON logging with trace/span correlation."""

import io
import json
import logging

import pytest

from repro import obs
from repro.obs.logsetup import (
    CorrelationFilter,
    JsonFormatter,
    current_log_fields,
    log_fields,
)


@pytest.fixture
def repro_logger():
    """A clean ``repro`` logger tree for each test."""
    logger = logging.getLogger("repro")
    saved = list(logger.handlers)
    saved_level = logger.level
    logger.handlers = []
    try:
        yield logger
    finally:
        logger.handlers = saved
        logger.setLevel(saved_level)


def capture_json(verbosity=1):
    stream = io.StringIO()
    obs.configure_logging(verbosity, stream, fmt="json")
    return stream


def lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestJsonFormat:
    def test_core_keys(self, repro_logger):
        stream = capture_json()
        logging.getLogger("repro.test").info("hello %s", "world")
        (doc,) = lines(stream)
        assert doc["level"] == "INFO"
        assert doc["logger"] == "repro.test"
        assert doc["message"] == "hello world"
        assert isinstance(doc["ts"], float)

    def test_no_recorder_means_no_correlation_keys(self, repro_logger):
        stream = capture_json()
        logging.getLogger("repro.test").warning("bare")
        (doc,) = lines(stream)
        assert "trace_id" not in doc
        assert "span_id" not in doc

    def test_trace_and_span_ids_match_active_recorder(self, repro_logger):
        stream = capture_json()
        rec = obs.Recorder()
        with obs.use(rec):
            with rec.span("work", category="test") as span:
                logging.getLogger("repro.test").info("inside")
                span_id = span.id
        (doc,) = lines(stream)
        assert doc["trace_id"] == rec.trace_id
        assert doc["span_id"] == span_id

    def test_span_id_tracks_nesting(self, repro_logger):
        stream = capture_json()
        rec = obs.Recorder()
        with obs.use(rec):
            with rec.span("outer"):
                with rec.span("inner") as inner:
                    logging.getLogger("repro.test").info("deep")
                    inner_id = inner.id
                logging.getLogger("repro.test").info("shallow")
        deep, shallow = lines(stream)
        assert deep["span_id"] == inner_id
        assert shallow["span_id"] != inner_id

    def test_exception_fields(self, repro_logger):
        stream = capture_json()
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            logging.getLogger("repro.test").exception("failed")
        (doc,) = lines(stream)
        assert doc["exc_type"] == "RuntimeError"
        assert "boom" in doc["exc"]

    def test_unserializable_values_degrade_to_str(self, repro_logger):
        stream = capture_json()
        with log_fields(payload=object()):
            logging.getLogger("repro.test").warning("odd")
        (doc,) = lines(stream)
        assert doc["payload"].startswith("<object object")


class TestLogFields:
    def test_fields_merge_into_records(self, repro_logger):
        stream = capture_json()
        with log_fields(job_id="j-1", job_kind="synthesize"):
            logging.getLogger("repro.test").info("working")
        (doc,) = lines(stream)
        assert doc["job_id"] == "j-1"
        assert doc["job_kind"] == "synthesize"

    def test_nesting_overrides_and_restores(self):
        with log_fields(job_id="outer", stage="map"):
            with log_fields(job_id="inner"):
                assert current_log_fields() == {
                    "job_id": "inner",
                    "stage": "map",
                }
            assert current_log_fields()["job_id"] == "outer"
        assert current_log_fields() == {}

    def test_filter_always_passes(self):
        record = logging.LogRecord(
            "repro.x", logging.INFO, __file__, 1, "m", (), None
        )
        assert CorrelationFilter().filter(record) is True
        assert record.trace_id is None
        assert record.context_fields == {}


class TestConfigure:
    def test_reconfigure_is_idempotent(self, repro_logger):
        stream = io.StringIO()
        obs.configure_logging(1, stream, fmt="text")
        obs.configure_logging(1, stream, fmt="json")
        obs.configure_logging(1, stream, fmt="json")
        assert len(repro_logger.handlers) == 1
        handler = repro_logger.handlers[0]
        assert isinstance(handler.formatter, JsonFormatter)
        assert sum(
            isinstance(f, CorrelationFilter) for f in handler.filters
        ) == 1

    def test_format_switch_round_trips(self, repro_logger):
        stream = io.StringIO()
        obs.configure_logging(1, stream, fmt="json")
        obs.configure_logging(1, stream, fmt="text")
        logging.getLogger("repro.test").info("plain")
        assert stream.getvalue() == "INFO repro.test: plain\n"

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="unknown log format"):
            obs.configure_logging(0, fmt="yaml")

    def test_text_records_still_carry_correlation(self, repro_logger):
        captured = []

        class Sink(logging.Handler):
            def emit(self, record):
                captured.append(record)

        stream = io.StringIO()
        obs.configure_logging(1, stream, fmt="text")
        sink = Sink()
        repro_logger.addHandler(sink)
        rec = obs.Recorder()
        with obs.use(rec):
            with rec.span("work"):
                logging.getLogger("repro.test").info("line")
        # The filter sits on the repro-obs handler; the record the text
        # handler emitted was enriched before formatting.
        handler = next(
            h for h in repro_logger.handlers if h.get_name() == "repro-obs"
        )
        record = logging.LogRecord(
            "repro.y", logging.INFO, __file__, 1, "m", (), None
        )
        with obs.use(obs.Recorder()) as active:
            with active.span("s"):
                for filt in handler.filters:
                    filt.filter(record)
                assert record.trace_id == active.trace_id
