"""Unit tests for the span tracer and the module-level recorder switch."""

import pytest

from repro import obs


class TestSpanNesting:
    def test_children_get_parent_ids(self):
        rec = obs.Recorder()
        with rec.span("outer") as outer:
            with rec.span("middle") as middle:
                with rec.span("inner") as inner:
                    pass
        spans = {s.name: s for s in rec.finished_spans()}
        assert spans["outer"].parent_id is None
        assert spans["middle"].parent_id == outer.id
        assert spans["inner"].parent_id == middle.id

    def test_siblings_share_parent(self):
        rec = obs.Recorder()
        with rec.span("root") as root:
            with rec.span("a"):
                pass
            with rec.span("b"):
                pass
        a, b = (s for s in rec.finished_spans() if s.name in "ab")
        assert a.parent_id == root.id and b.parent_id == root.id

    def test_attrs_at_open_and_via_set(self):
        rec = obs.Recorder()
        with rec.span("s", category="test", k=1) as handle:
            handle.set(v=2)
        (span,) = rec.finished_spans()
        assert span.attrs == {"k": 1, "v": 2}
        assert span.category == "test"

    def test_exception_closes_span_and_records_error(self):
        rec = obs.Recorder()
        with pytest.raises(RuntimeError):
            with rec.span("boom"):
                raise RuntimeError("bad")
        (span,) = rec.finished_spans()
        assert span.end_wall is not None
        assert "RuntimeError: bad" == span.error
        # The stack unwound: the next span is a root again.
        with rec.span("after"):
            pass
        after = rec.finished_spans()[-1]
        assert after.parent_id is None

    def test_duration_and_cpu_time_nonnegative(self):
        rec = obs.Recorder()
        with rec.span("t"):
            sum(range(1000))
        (span,) = rec.finished_spans()
        assert span.duration >= 0.0
        assert span.cpu_time >= 0.0

    def test_every_closed_span_feeds_a_timer(self):
        rec = obs.Recorder()
        with rec.span("pass.x"):
            pass
        stat = rec.metrics.timer_stat("pass.x")
        assert stat is not None and stat.count == 1


class TestNullRecorder:
    def test_default_recorder_is_null(self):
        assert obs.get() is obs.NULL
        assert not obs.active()

    def test_null_span_is_shared_noop(self):
        first = obs.NULL.span("anything", k=1)
        second = obs.NULL.span("other")
        assert first is second
        assert first.id is None
        with first as handle:
            assert handle.set(x=1) is handle

    def test_null_metrics_stay_empty(self):
        obs.NULL.incr("c")
        obs.NULL.gauge("g", 1.0)
        obs.NULL.observe("t", 0.5)
        with obs.NULL.timer("t2"):
            pass
        assert len(obs.NULL.metrics) == 0
        assert obs.NULL.spans == []


class TestRecorderSwitch:
    def test_use_installs_and_restores(self):
        rec = obs.Recorder()
        assert obs.get() is obs.NULL
        with obs.use(rec) as active:
            assert active is rec
            assert obs.get() is rec
            assert obs.active()
        assert obs.get() is obs.NULL

    def test_use_restores_on_exception(self):
        with pytest.raises(ValueError):
            with obs.use(obs.Recorder()):
                raise ValueError()
        assert obs.get() is obs.NULL

    def test_enable_disable(self):
        rec = obs.enable()
        try:
            assert obs.get() is rec
        finally:
            obs.disable()
        assert obs.get() is obs.NULL
