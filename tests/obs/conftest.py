import pytest

from repro.parallel import pool


@pytest.fixture(autouse=True)
def force_pool_workers(monkeypatch):
    """Honour explicit ``workers=N`` requests even on low-core CI hosts.

    ``resolve_workers`` clamps to ``os.cpu_count()`` by default (so real
    runs never fork more workers than cores); these tests exercise the
    pooled code paths deliberately, so the clamp is disabled.
    """
    monkeypatch.setenv(pool.WORKERS_FORCE_ENV, "1")
