"""Integration: instrumented flow, simulators, and the CLI obs flags."""

import json
import os
import sys

import pytest

from repro import obs
from repro.apps import crane
from repro.cli import main
from repro.core import synthesize
from repro.simulink import Simulator

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "..", "tools")
)
from validate_trace import validate_metrics, validate_trace  # noqa: E402

FLOW_STEPS = (
    "flow.validate",
    "flow.allocate",
    "flow.map",
    "flow.intermediate",
    "flow.optimize",
    "flow.layout",
)


class TestSynthesisReport:
    def test_census_always_populated(self):
        result = synthesize(crane.build_model(), behaviors=crane.behaviors())
        census = result.obs.census
        assert census["model"] == "crane"
        assert census["barriers_inserted"] == 1
        assert census["channels"]["intra_cpu"] == 3
        assert census["trace"]["links"] == len(result.mapping.context.trace)
        assert not result.obs.recorded  # null recorder: no spans/metrics

    def test_one_span_per_flow_step_when_recording(self):
        with obs.use(obs.Recorder()):
            result = synthesize(
                crane.build_model(), behaviors=crane.behaviors()
            )
        report = result.obs
        assert report.recorded
        for step in FLOW_STEPS:
            assert len(report.span_named(step)) == 1, step
        (root,) = report.span_named("flow.synthesize")
        for step in FLOW_STEPS:
            assert report.span_named(step)[0].parent_id == root.id

    def test_rule_spans_link_to_trace_links(self):
        with obs.use(obs.Recorder()):
            result = synthesize(
                crane.build_model(), behaviors=crane.behaviors()
            )
        links = result.mapping.context.trace.links()
        span_ids = {s.id for s in result.obs.spans}
        assert links and all(link.span_id in span_ids for link in links)

    def test_metrics_contain_documented_families(self):
        with obs.use(obs.Recorder()):
            result = synthesize(
                crane.build_model(), behaviors=crane.behaviors()
            )
        validate_metrics(result.obs.metrics)
        counters = result.obs.metrics["counters"]
        assert counters["flow.synthesize.calls"] == 1
        assert counters["optimize.barriers.inserted"] == 1

    def test_trace_store_stats_and_json(self):
        result = synthesize(crane.build_model(), behaviors=crane.behaviors())
        store = result.mapping.context.trace
        stats = store.stats()
        assert stats["links"] == len(store)
        assert stats["retained_sources"] >= stats["distinct_sources"] > 0
        assert sum(stats["links_per_rule"].values()) == stats["links"]
        document = json.loads(store.to_json())
        assert len(document["trace"]) == stats["links"]


class TestSimulatorMetrics:
    def test_simulink_run_records_rates(self):
        result = synthesize(crane.build_model(), behaviors=crane.behaviors())
        with obs.use(obs.Recorder()) as rec:
            Simulator(result.caam).run(25, inputs={"In3": [5.0] * 25})
        metrics = rec.metrics
        assert metrics.counter("simulink.sim.steps") == 25
        assert metrics.gauge_value("simulink.sim.steps_per_sec") > 0
        assert metrics.gauge_value("simulink.sim.value_slots") > 0
        fires = [
            name
            for name in metrics.to_dict()["counters"]
            if name.startswith("simulink.fires.")
        ]
        assert fires
        (span,) = [s for s in rec.spans if s.name == "simulink.run"]
        assert span.attrs["steps"] == 25

    def test_fsm_run_records_rates(self):
        from repro.fsm.model import Fsm
        from repro.fsm.simulator import FsmSimulator

        fsm = Fsm("m")
        fsm.add_state("a")
        fsm.add_state("b")
        fsm.add_transition("a", "b", event="go")
        fsm.add_transition("b", "a", event="back")
        with obs.use(obs.Recorder()) as rec:
            FsmSimulator(fsm).run(["go", "back", "go"])
        assert rec.metrics.counter("fsm.sim.events") == 3
        assert rec.metrics.counter("fsm.sim.transitions") == 3
        assert rec.metrics.gauge_value("fsm.sim.steps_per_sec") > 0

    def test_disabled_mode_records_nothing(self):
        result = synthesize(crane.build_model(), behaviors=crane.behaviors())
        before = len(obs.NULL.metrics)
        Simulator(result.caam).run(5)
        assert len(obs.NULL.metrics) == before == 0
        assert obs.NULL.spans == []


class TestParallelObservability:
    """Cache hit/miss counters and worker spans reach report + trace."""

    @pytest.fixture()
    def scoped_cache(self):
        from repro.parallel import cache

        state = cache.snapshot()
        cache.configure(enabled=True)
        yield cache
        cache.restore(state)

    def _graph(self):
        from repro.core.taskgraph import TaskGraph

        graph = TaskGraph()
        for i, weight in enumerate([4.0, 2.0, 3.0, 1.0]):
            graph.add_node(f"T{i}", weight)
        graph.add_edge("T0", "T1", 64.0)
        graph.add_edge("T1", "T2", 32.0)
        graph.add_edge("T2", "T3", 96.0)
        return graph

    def test_worker_spans_and_counters_in_recorder(self):
        from repro.dse.explore import exhaustive_explore

        # Bell(4) = 15 partitions > 2 workers, so the pool engages.
        with obs.use(obs.Recorder()) as rec:
            candidates = exhaustive_explore(self._graph(), workers=2)
        assert candidates
        worker_spans = [s for s in rec.spans if s.name == "dse.worker"]
        assert worker_spans
        assert all(s.end_wall is not None for s in worker_spans)
        assert all("worker_pid" in s.attrs for s in worker_spans)
        counters = rec.metrics.to_dict()["counters"]
        assert counters["dse.parallel.tasks"] == 15
        assert counters["dse.parallel.batches"] == len(worker_spans)
        assert counters["dse.candidates"] == 15
        assert rec.metrics.gauge_value("dse.parallel.workers") == 2
        # The serial metric family is still fed under parallelism.
        assert rec.metrics.to_dict()["timers"]["dse.evaluate"]["count"] == 15

    def test_worker_spans_exported_to_chrome_trace(self):
        from repro.dse.explore import exhaustive_explore

        with obs.use(obs.Recorder()) as rec:
            exhaustive_explore(self._graph(), workers=2)
        trace = obs.to_chrome_trace(rec.spans)
        validate_trace(trace)
        worker_events = [
            e
            for e in trace["traceEvents"]
            if e["ph"] == "X" and e["name"] == "dse.worker"
        ]
        assert worker_events
        assert all(e["dur"] >= 1 for e in worker_events)

    def test_cache_counters_in_report_and_metrics(self, scoped_cache):
        with obs.use(obs.Recorder()) as rec:
            cold = synthesize(crane.build_model())
            warm = synthesize(crane.build_model())
        assert cold.obs.parallel["cache"]["status"] == "miss"
        assert warm.obs.parallel["cache"]["status"] == "hit"
        counters = rec.metrics.to_dict()["counters"]
        assert counters["cache.synthesize.miss"] == 1
        assert counters["cache.synthesize.store"] == 1
        assert counters["cache.synthesize.hit"] == 1
        assert rec.metrics.gauge_value("cache.synthesize.entries") == 1
        # The parallel section survives dict export (e.g. --report-out).
        assert cold.obs.to_dict()["parallel"]["cache"]["status"] == "miss"


class TestCliObservabilityFlags:
    @pytest.fixture()
    def crane_xmi(self, tmp_path):
        path = tmp_path / "crane.xmi"
        assert main(["demo", "crane", str(path)]) == 0
        return str(path)

    def test_synthesize_emits_valid_trace_and_metrics(
        self, crane_xmi, tmp_path, capsys
    ):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        code = main(
            [
                "--trace-out",
                str(trace_path),
                "--metrics-out",
                str(metrics_path),
                "synthesize",
                crane_xmi,
                "-o",
                str(tmp_path / "c.mdl"),
            ]
        )
        assert code == 0
        trace = json.loads(trace_path.read_text())
        validate_trace(trace)
        names = [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
        for step in FLOW_STEPS + ("flow.synthesize", "cli.synthesize"):
            assert names.count(step) == 1, step
        metrics = json.loads(metrics_path.read_text())
        validate_metrics(metrics)
        assert metrics["counters"]["optimize.barriers.inserted"] == 1
        out = capsys.readouterr().out
        assert f"wrote {trace_path}" in out
        assert f"wrote {metrics_path}" in out

    def test_flags_absent_write_no_files(self, crane_xmi, tmp_path, capsys):
        out = tmp_path / "c.mdl"
        assert main(["synthesize", crane_xmi, "-o", str(out)]) == 0
        written = {p.name for p in tmp_path.iterdir()}
        assert written == {"crane.xmi", "c.mdl"}
        # The CLI-scoped recorder must not leak into library state.
        assert obs.get() is obs.NULL

    def test_simulate_reports_rate_from_metrics(
        self, crane_xmi, tmp_path, capsys
    ):
        mdl = tmp_path / "c.mdl"
        metrics_path = tmp_path / "m.json"
        assert main(["synthesize", crane_xmi, "-o", str(mdl)]) == 0
        capsys.readouterr()
        code = main(
            [
                "--metrics-out",
                str(metrics_path),
                "simulate",
                str(mdl),
                "--steps",
                "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated 20 step(s) in" in out
        metrics = json.loads(metrics_path.read_text())
        # The printed rate and the exported gauge come from one registry.
        rate = metrics["gauges"]["simulink.sim.steps_per_sec"]
        assert f"({rate:.0f} steps/s)" in out

    def test_explore_reports_cost_from_metrics(self, crane_xmi, capsys):
        assert main(["explore", crane_xmi]) == 0
        out = capsys.readouterr().out
        assert "us/candidate" in out
        assert "Pareto front" in out

    def test_verbose_flag_logs_stages(self, crane_xmi, tmp_path, capsys):
        # --no-cache: a cache hit (e.g. REPRO_CACHE=1 in the environment
        # warmed by an earlier test) would skip the stage logs under test.
        assert (
            main(
                [
                    "-v",
                    "--no-cache",
                    "synthesize",
                    crane_xmi,
                    "-o",
                    str(tmp_path / "c.mdl"),
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "INFO repro.core.mapping" in err
        assert "INFO repro.core.optimize" in err
