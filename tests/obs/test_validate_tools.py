"""Unit tests for the new validators in ``tools/validate_trace.py``."""

import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "..", "tools")
)
from validate_trace import (  # noqa: E402
    main,
    validate_bench_slo,
    validate_slo,
    validate_span_tree,
)


def event(name, id, parent=None):
    args = {} if parent is None else {"parent_id": parent}
    return {
        "ph": "X",
        "name": name,
        "id": id,
        "ts": 0,
        "dur": 1,
        "pid": 1,
        "tid": 1,
        "args": args,
    }


def slo_document(**overrides):
    record = {
        "target": "jobs",
        "objective": "availability",
        "target_value": 99.0,
        "observed": 100.0,
        "events": 10,
        "errors": 0,
        "attainment_pct": 100.0,
        "budget_remaining_pct": 100.0,
        "burn_rate": 0.0,
        "risk": "ok",
    }
    record.update(overrides.pop("record", {}))
    document = {
        "window_s": 300.0,
        "risk": "ok",
        "targets": [{"name": "jobs"}],
        "records": [record],
    }
    document.update(overrides)
    return document


class TestSpanTree:
    def test_single_rooted_tree_passes(self):
        document = {
            "traceEvents": [
                event("root", 1),
                event("child", 2, parent=1),
                event("grandchild", 3, parent=2),
            ]
        }
        validate_span_tree(document)

    def test_orphan_parent_rejected(self):
        document = {
            "traceEvents": [event("root", 1), event("lost", 2, parent=99)]
        }
        with pytest.raises(ValueError, match="orphaned subtree"):
            validate_span_tree(document)

    def test_multiple_roots_rejected(self):
        document = {"traceEvents": [event("a", 1), event("b", 2)]}
        with pytest.raises(ValueError, match="exactly one root"):
            validate_span_tree(document)

    def test_metadata_events_ignored(self):
        document = {
            "traceEvents": [
                {"ph": "M", "name": "process_name", "args": {}},
                event("root", 1),
            ]
        }
        validate_span_tree(document)


class TestSloValidator:
    def test_valid_document_passes(self):
        validate_slo(slo_document())

    def test_missing_field_rejected(self):
        document = slo_document()
        del document["records"]
        with pytest.raises(ValueError, match="records"):
            validate_slo(document)

    def test_undeclared_target_rejected(self):
        document = slo_document(record={"target": "ghost"})
        with pytest.raises(ValueError, match="undeclared target"):
            validate_slo(document)

    def test_overall_risk_must_match_worst_record(self):
        document = slo_document(
            record={"risk": "breach", "burn_rate": 2.0,
                    "budget_remaining_pct": 0.0}
        )
        with pytest.raises(ValueError, match="worst"):
            validate_slo(document)
        document["risk"] = "breach"
        validate_slo(document)

    def test_burn_over_one_must_be_breach(self):
        document = slo_document(record={"burn_rate": 1.5})
        with pytest.raises(ValueError, match="breach"):
            validate_slo(document)

    def test_percentages_bounded(self):
        document = slo_document(record={"attainment_pct": 120.0})
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            validate_slo(document)


class TestBenchSloValidator:
    def bench(self):
        return {
            "slo": {
                "window_s": 300.0,
                "targets": {"jobs": {"name": "jobs"}},
                "queue_depths": {
                    "8": {
                        "p50_s": 0.1,
                        "p95_s": 0.2,
                        "p99_s": 0.3,
                        "attainment_pct": 100.0,
                        "budget_remaining_pct": 100.0,
                        "burn_rate": 0.0,
                        "risk": "ok",
                    }
                },
            }
        }

    def test_valid_section_passes(self):
        validate_bench_slo(self.bench())

    def test_missing_section_rejected(self):
        with pytest.raises(ValueError, match="'slo' object"):
            validate_bench_slo({})

    def test_non_integer_depth_rejected(self):
        document = self.bench()
        document["slo"]["queue_depths"]["deep"] = document["slo"][
            "queue_depths"
        ].pop("8")
        with pytest.raises(ValueError, match="integer"):
            validate_bench_slo(document)

    def test_missing_depth_field_rejected(self):
        document = self.bench()
        del document["slo"]["queue_depths"]["8"]["burn_rate"]
        with pytest.raises(ValueError, match="burn_rate"):
            validate_bench_slo(document)


class TestCli:
    def test_requires_something_to_validate(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_slo_flag(self, tmp_path, capsys):
        path = tmp_path / "slo.json"
        path.write_text(__import__("json").dumps(slo_document()))
        assert main(["--slo", str(path)]) == 0
        assert "valid SLO report" in capsys.readouterr().out

    def test_tree_flag_catches_orphans(self, tmp_path, capsys):
        import json

        document = {
            "traceEvents": [event("root", 1), event("lost", 2, parent=9)]
        }
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(document))
        assert main([str(path)]) == 0
        assert main([str(path), "--tree"]) == 1
        assert "orphaned" in capsys.readouterr().err
