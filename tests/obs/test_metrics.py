"""Unit tests for the metrics registry (counters, gauges, timers)."""

import json
import time

from repro.obs import HistogramStat, MetricsRegistry


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.incr("c")
        registry.incr("c", 2.5)
        assert registry.counter("c") == 3.5
        assert registry.counter("absent") == 0.0

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("g", 1.0)
        registry.gauge("g", 7.0)
        assert registry.gauge_value("g") == 7.0
        assert registry.gauge_value("absent") is None


class TestTimers:
    def test_observe_aggregates(self):
        registry = MetricsRegistry()
        for value in (0.1, 0.3, 0.2):
            registry.observe("t", value)
        stat = registry.timer_stat("t")
        assert stat.count == 3
        assert abs(stat.total - 0.6) < 1e-9
        assert stat.min == 0.1 and stat.max == 0.3
        assert abs(stat.mean - 0.2) < 1e-9

    def test_timer_context_accuracy_bounds(self):
        registry = MetricsRegistry()
        with registry.timer("sleep"):
            time.sleep(0.02)
        stat = registry.timer_stat("sleep")
        # Lower bound is hard (the sleep really happened); the upper bound
        # is generous to tolerate loaded CI machines.
        assert stat.count == 1
        assert 0.015 <= stat.total < 2.0

    def test_unobserved_timer_is_none(self):
        assert MetricsRegistry().timer_stat("nope") is None


class TestExport:
    def test_to_dict_sections_and_sorting(self):
        registry = MetricsRegistry()
        registry.incr("b")
        registry.incr("a")
        registry.gauge("g", 1.0)
        registry.observe("t", 0.5)
        snapshot = registry.to_dict()
        assert list(snapshot) == ["counters", "gauges", "timers"]
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["timers"]["t"]["count"] == 1

    def test_json_round_trip(self):
        registry = MetricsRegistry()
        registry.incr("c", 2)
        registry.gauge("g", 3.5)
        registry.observe("t", 0.25)
        loaded = json.loads(registry.to_json())
        assert loaded["counters"]["c"] == 2
        assert loaded["gauges"]["g"] == 3.5
        assert loaded["timers"]["t"]["mean"] == 0.25

    def test_write_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.incr("c")
        path = tmp_path / "m.json"
        registry.write(str(path))
        assert json.loads(path.read_text())["counters"]["c"] == 1

    def test_len_counts_all_families(self):
        registry = MetricsRegistry()
        assert len(registry) == 0
        registry.incr("a")
        registry.gauge("b", 1)
        registry.observe("c", 1)
        assert len(registry) == 3


class TestHistogramEdgeCases:
    """Percentile math must be total: no input may raise or extrapolate."""

    def test_empty_reservoir_percentile_is_zero(self):
        hist = HistogramStat()
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.percentile(q) == 0.0

    def test_single_sample_answers_itself_for_every_q(self):
        hist = HistogramStat()
        hist.observe(3.25)
        for q in (-1.0, 0.0, 0.5, 0.99, 1.0, 2.0):
            assert hist.percentile(q) == 3.25

    def test_q_is_clamped_not_extrapolated(self):
        hist = HistogramStat()
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.percentile(-0.5) == 1.0
        assert hist.percentile(1.5) == 3.0
        assert hist.percentile(0.5) == 2.0

    def test_interpolation_between_samples(self):
        hist = HistogramStat()
        for value in (0.0, 10.0):
            hist.observe(value)
        assert hist.percentile(0.25) == 2.5
        assert hist.percentile(0.75) == 7.5

    def test_fraction_over_empty_is_zero(self):
        assert HistogramStat().fraction_over(1.0) == 0.0

    def test_fraction_over_is_strict(self):
        hist = HistogramStat()
        for value in (1.0, 1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.fraction_over(1.0) == 0.5
        assert hist.fraction_over(0.5) == 1.0
        assert hist.fraction_over(3.0) == 0.0

    def test_to_dict_of_empty_histogram_is_all_zero(self):
        doc = HistogramStat().to_dict()
        assert doc["count"] == 0
        assert doc["min"] == 0.0
        assert doc["p50"] == 0.0
        assert doc["p99"] == 0.0
