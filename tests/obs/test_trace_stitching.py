"""Cross-thread trace stitching: no orphan span roots.

The differential contract: whatever executes the work — the serial DSE
path, a 4-worker fork pool, or the server's job threads with retries —
the exported Chrome trace must form a *single rooted span tree*: every
worker/retry span carries a ``parent_id`` resolvable to another span in
the same document.  ``tools/validate_trace.py --tree`` enforces exactly
this, so the tests call its validator directly.
"""

import os
import random
import sys
import time

import pytest

from repro import obs
from repro.core.flow import TransientFlowError
from repro.core.taskgraph import TaskGraph
from repro.server import JobManager, JobOutcome, JobSpec, RetryPolicy

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "..", "tools")
)
from validate_trace import validate_span_tree, validate_trace  # noqa: E402


def wait_terminal(jobs, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(job.state.terminal for job in jobs):
            return True
        time.sleep(interval)
    return False


def small_graph(threads=5, seed=11):
    rng = random.Random(seed)
    graph = TaskGraph()
    names = [f"T{i}" for i in range(threads)]
    for name in names:
        graph.add_node(name, rng.uniform(1.0, 5.0))
    for src, dst in zip(names, names[1:]):
        graph.add_edge(src, dst, rng.uniform(8.0, 64.0))
    return graph


def outcome(name="crane"):
    return JobOutcome(
        artifact_name=f"{name}.mdl",
        artifact_text=f'Model {{ Name "{name}" }}\n',
        payload={"model": name},
    )


class TestDseStitching:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_dse_trace_is_single_rooted_tree(self, workers, monkeypatch):
        from repro.dse.explore import explore

        # Exercise the real fork pool even on a 1-core CI host.
        monkeypatch.setenv("REPRO_WORKERS_FORCE", "1")
        rec = obs.Recorder()
        with obs.use(rec):
            explore(small_graph(), workers=workers)
        document = obs.to_chrome_trace(rec.finished_spans())
        validate_trace(document)
        validate_span_tree(document)

    def test_pool_worker_spans_reach_explore_root(self, monkeypatch):
        from repro.dse.explore import explore

        monkeypatch.setenv("REPRO_WORKERS_FORCE", "1")
        rec = obs.Recorder()
        with obs.use(rec):
            explore(small_graph(), workers=4)
        spans = rec.finished_spans()
        workers = [s for s in spans if s.name == "dse.worker"]
        assert workers, "pooled run recorded no dse.worker spans"
        assert [s.name for s in spans if s.parent_id is None] == [
            "dse.explore"
        ]
        by_id = {s.id: s for s in spans}
        for span in workers:
            node = span
            while node.parent_id is not None:
                node = by_id[node.parent_id]
            assert node.name == "dse.explore"


class TestServerStitching:
    def test_server_batch_with_retry_is_single_rooted_tree(self):
        attempts = {"n": 0}

        def flaky(job_spec, *, cancelled=None, pool=None):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise TransientFlowError("transient worker crash")
            return outcome()

        rec = obs.Recorder()
        with obs.use(rec):
            with rec.span("cli.serve", category="cli"):
                manager = JobManager(
                    workers=2,
                    executor=flaky,
                    retry=RetryPolicy(
                        max_retries=2, base_delay_s=0.01, jitter=0.0
                    ),
                ).start()
                try:
                    jobs = [
                        manager.submit(
                            JobSpec(kind="synthesize", demo="crane")
                        )
                        for _ in range(3)
                    ]
                    assert wait_terminal(jobs)
                finally:
                    manager.shutdown()
        assert attempts["n"] >= 4  # 3 jobs + at least one retry
        spans = rec.finished_spans()
        document = obs.to_chrome_trace(spans)
        validate_trace(document)
        validate_span_tree(document)
        # Both attempts of the retried job sit under one server.job root,
        # and every job root hangs off the ambient cli.serve anchor.
        by_id = {s.id: s for s in spans}
        attempt_spans = [s for s in spans if s.name == "server.job.attempt"]
        assert len(attempt_spans) == 4
        for span in attempt_spans:
            parent = by_id[span.parent_id]
            assert parent.name == "server.job"
            assert by_id[parent.parent_id].name == "cli.serve"
        retried = [s for s in spans if s.name == "server.job"]
        parents_of_attempts = {s.parent_id for s in attempt_spans}
        assert parents_of_attempts == {s.id for s in retried}

    def test_job_root_span_closes_with_terminal_state(self):
        rec = obs.Recorder()
        with obs.use(rec):
            manager = JobManager(
                workers=1,
                executor=lambda s, cancelled=None, pool=None: outcome(),
            ).start()
            try:
                job = manager.submit(JobSpec(kind="synthesize", demo="crane"))
                assert wait_terminal([job])
            finally:
                manager.shutdown()
        roots = [s for s in rec.finished_spans() if s.name == "server.job"]
        assert len(roots) == 1
        assert roots[0].attrs["state"] == "done"
        assert roots[0].attrs["attempts"] == 1

    def test_executor_spans_adopt_job_context(self):
        """Spans the executor opens parent into the job's attempt span."""

        def traced(job_spec, *, cancelled=None, pool=None):
            with obs.get().span("flow.fake", category="flow"):
                pass
            return outcome()

        rec = obs.Recorder()
        with obs.use(rec):
            manager = JobManager(workers=1, executor=traced).start()
            try:
                job = manager.submit(JobSpec(kind="synthesize", demo="crane"))
                assert wait_terminal([job])
            finally:
                manager.shutdown()
        spans = rec.finished_spans()
        by_id = {s.id: s for s in spans}
        fake = [s for s in spans if s.name == "flow.fake"]
        assert len(fake) == 1
        assert by_id[fake[0].parent_id].name == "server.job.attempt"
