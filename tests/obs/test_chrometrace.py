"""Chrome-trace exporter: Trace Event Format schema validity."""

import json
import os
import sys

import pytest

from repro import obs

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "..", "tools")
)
from validate_trace import validate_metrics, validate_trace  # noqa: E402


@pytest.fixture()
def recorder_with_spans():
    rec = obs.Recorder()
    with rec.span("root", category="flow", model="m"):
        with rec.span("child", category="flow"):
            pass
        with rec.span("failing"):
            try:
                raise ValueError("x")
            except ValueError:
                pass
    return rec


class TestChromeTrace:
    def test_document_shape(self, recorder_with_spans):
        document = obs.to_chrome_trace(recorder_with_spans.spans)
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        validate_trace(document)  # raises on any schema violation

    def test_metadata_event_first(self, recorder_with_spans):
        events = obs.to_chrome_trace(recorder_with_spans.spans)["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "repro"

    def test_complete_events_carry_spans(self, recorder_with_spans):
        events = obs.to_chrome_trace(recorder_with_spans.spans)["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"root", "child", "failing"}
        child = next(e for e in complete if e["name"] == "child")
        root = next(e for e in complete if e["name"] == "root")
        assert child["args"]["parent_id"] == root["id"]
        assert root["args"]["model"] == "m"

    def test_timestamps_relative_and_positive_durations(
        self, recorder_with_spans
    ):
        events = obs.to_chrome_trace(recorder_with_spans.spans)["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert min(e["ts"] for e in complete) == 0
        assert all(e["dur"] >= 1 for e in complete)

    def test_open_spans_are_skipped(self):
        rec = obs.Recorder()
        handle = rec.span("never-closed")
        assert handle.id is not None
        document = obs.to_chrome_trace(rec.spans)
        assert [e for e in document["traceEvents"] if e["ph"] == "X"] == []

    def test_write_chrome_trace_is_valid_json(
        self, recorder_with_spans, tmp_path
    ):
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(recorder_with_spans.spans, str(path))
        validate_trace(json.loads(path.read_text()))


class TestValidatorRejections:
    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError):
            validate_trace({})

    def test_rejects_bad_phase(self):
        with pytest.raises(ValueError):
            validate_trace({"traceEvents": [{"ph": "B", "name": "x"}]})

    def test_rejects_metrics_without_sections(self):
        with pytest.raises(ValueError):
            validate_metrics({"counters": {}})
