"""``GET /slo``: live SLO evaluation over the manager's metrics."""

import os
import sys

import pytest

from repro.obs.slo import SloEngine, SloTarget
from repro.server import JobManager, JobState

from .test_http import _serve, request
from .test_manager import instant_executor, wait_for

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "..", "tools")
)
from validate_trace import validate_slo  # noqa: E402


@pytest.fixture()
def served():
    yield from _serve(JobManager(workers=1, executor=instant_executor))


def _submit_and_finish(base, count=3):
    ids = []
    for _ in range(count):
        status, _, doc = request(
            "POST", f"{base}/jobs", {"kind": "synthesize", "demo": "crane"}
        )
        assert status == 201
        ids.append(doc["id"])
    for job_id in ids:
        assert wait_for(
            lambda job_id=job_id: request(
                "GET", f"{base}/jobs/{job_id}"
            )[2]["state"]
            == "done"
        )
    return ids


class TestSloEndpoint:
    def test_slo_returns_valid_document(self, served):
        base, manager = served
        _submit_and_finish(base)
        status, _, document = request("GET", f"{base}/slo")
        assert status == 200
        validate_slo(document)
        assert document["risk"] == "ok"

    def test_records_reflect_live_histograms(self, served):
        base, manager = served
        _submit_and_finish(base, count=5)
        _, _, document = request("GET", f"{base}/slo")
        availability = next(
            r
            for r in document["records"]
            if r["target"] == "synthesize" and r["objective"] == "availability"
        )
        assert availability["events"] == 5
        assert availability["errors"] == 0
        assert availability["attainment_pct"] == 100.0
        latency = next(
            r
            for r in document["records"]
            if r["target"] == "synthesize" and r["objective"] == "p95"
        )
        assert latency["events"] == 5
        assert latency["observed"] is not None

    def test_breach_returns_503(self):
        def failing(job_spec, *, cancelled=None, pool=None):
            raise ValueError("deterministic failure")

        manager = JobManager(workers=1, executor=failing)
        generator = _serve(manager)
        base, manager = next(generator)
        try:
            status, _, doc = request(
                "POST", f"{base}/jobs", {"kind": "synthesize", "demo": "crane"}
            )
            assert status == 201
            assert wait_for(
                lambda: request("GET", f"{base}/jobs/{doc['id']}")[2]["state"]
                == "failed"
            )
            status, _, document = request("GET", f"{base}/slo")
            assert status == 503
            assert document["risk"] == "breach"
            validate_slo(document)
        finally:
            generator.close()

    def test_metrics_carry_published_slo_gauges(self, served):
        base, manager = served
        _submit_and_finish(base)
        request("GET", f"{base}/slo")  # publishes slo.* gauges
        _, _, metrics = request("GET", f"{base}/metrics")
        assert metrics["gauges"]["slo.risk"] == 0.0
        assert "slo.jobs.availability.burn_rate" in metrics["gauges"]

    def test_stats_expose_slo_risk(self, served):
        base, manager = served
        _submit_and_finish(base)
        manager.slo_report(publish=True)
        assert manager.stats()["slo_risk"] == "ok"

    def test_custom_engine_injected(self):
        engine = SloEngine(
            [
                SloTarget(
                    name="custom",
                    availability_pct=50.0,
                    good=("server.jobs.done",),
                    bad=("server.jobs.failed",),
                )
            ]
        )
        manager = JobManager(
            workers=1, executor=instant_executor, slo=engine
        )
        generator = _serve(manager)
        base, manager = next(generator)
        try:
            _submit_and_finish(base, count=1)
            _, _, document = request("GET", f"{base}/slo")
            assert [t["name"] for t in document["targets"]] == ["custom"]
        finally:
            generator.close()
