"""Unit tests for the job model: specs, state machine, status documents."""

import pytest

from repro.server.jobs import (
    TRANSITIONS,
    Job,
    JobOutcome,
    JobSpec,
    JobState,
    SpecError,
    StateError,
)


class TestJobSpec:
    def test_valid_demo_spec(self):
        spec = JobSpec(kind="synthesize", demo="crane").validate()
        assert spec.demo == "crane"

    def test_valid_xmi_spec(self):
        spec = JobSpec(kind="explore", model_xmi="<xmi/>").validate()
        assert spec.model_xmi == "<xmi/>"

    def test_unknown_kind(self):
        with pytest.raises(SpecError, match="unknown job kind"):
            JobSpec(kind="transmogrify", demo="crane").validate()

    def test_needs_exactly_one_model_source(self):
        with pytest.raises(SpecError, match="exactly one model source"):
            JobSpec(kind="synthesize").validate()
        with pytest.raises(SpecError, match="exactly one model source"):
            JobSpec(
                kind="synthesize", demo="crane", model_xmi="<xmi/>"
            ).validate()

    def test_unknown_synthesize_option(self):
        with pytest.raises(SpecError, match="'workers'"):
            JobSpec(
                kind="synthesize", demo="crane", options={"workers": 4}
            ).validate()

    def test_explore_options_differ_from_synthesize(self):
        JobSpec(
            kind="explore", demo="crane", options={"max_cpus": 2}
        ).validate()
        with pytest.raises(SpecError, match="unknown synthesize option"):
            JobSpec(
                kind="synthesize", demo="crane", options={"max_cpus": 2}
            ).validate()

    def test_bad_timeout(self):
        with pytest.raises(SpecError, match="timeout_s"):
            JobSpec(kind="synthesize", demo="crane", timeout_s=0).validate()
        with pytest.raises(SpecError, match="timeout_s"):
            JobSpec(
                kind="synthesize", demo="crane", timeout_s="soon"
            ).validate()

    def test_dict_round_trip(self):
        spec = JobSpec(
            kind="synthesize",
            demo="crane",
            options={"use_cache": False},
            timeout_s=2.5,
        )
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(SpecError, match="JSON object"):
            JobSpec.from_dict(["synthesize"])

    def test_from_dict_rejects_unknown_field(self):
        with pytest.raises(SpecError, match="'priority'"):
            JobSpec.from_dict(
                {"kind": "synthesize", "demo": "crane", "priority": 7}
            )


class TestStateMachine:
    def test_queued_to_done_happy_path(self):
        job = Job(spec=JobSpec(kind="synthesize", demo="crane"))
        assert job.state is JobState.QUEUED
        job.advance(JobState.RUNNING)
        job.advance(JobState.DONE)
        assert job.state.terminal

    def test_retry_loops_back_to_queued(self):
        job = Job(spec=JobSpec(kind="synthesize", demo="crane"))
        job.advance(JobState.RUNNING)
        job.advance(JobState.QUEUED)
        job.advance(JobState.RUNNING)
        job.advance(JobState.FAILED)

    def test_queued_cannot_jump_to_done(self):
        job = Job(spec=JobSpec(kind="synthesize", demo="crane"))
        with pytest.raises(StateError, match="queued -> done"):
            job.advance(JobState.DONE)

    def test_terminal_states_are_dead_ends(self):
        for terminal in (
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.TIMED_OUT,
        ):
            assert terminal.terminal
            assert not TRANSITIONS[terminal]
            job = Job(spec=JobSpec(kind="synthesize", demo="crane"))
            job.state = terminal
            with pytest.raises(StateError):
                job.advance(JobState.QUEUED)

    def test_ids_are_unique_and_sortable(self):
        a = Job(spec=JobSpec(kind="synthesize", demo="crane"))
        b = Job(spec=JobSpec(kind="synthesize", demo="crane"))
        assert a.id != b.id
        assert a.id < b.id  # monotone sequence prefix


class TestStatusDocument:
    def test_includes_artifact_only_when_done(self):
        job = Job(spec=JobSpec(kind="synthesize", demo="crane"))
        assert "artifact" not in job.to_dict()
        job.advance(JobState.RUNNING)
        job.outcome = JobOutcome(
            artifact_name="crane.mdl",
            artifact_text="Model {}",
            payload={"blocks": 3},
        )
        job.advance(JobState.DONE)
        doc = job.to_dict()
        assert doc["artifact"] == "crane.mdl"
        assert doc["result"] == {"blocks": 3}
        assert job.to_dict(with_payload=False).get("result") is None

    def test_reports_kind_state_attempts(self):
        job = Job(spec=JobSpec(kind="explore", demo="didactic"))
        doc = job.to_dict()
        assert doc["kind"] == "explore"
        assert doc["state"] == "queued"
        assert doc["attempts"] == 0
        assert doc["demo"] == "didactic"
