"""Endpoint tests for the JSON-over-HTTP API.

A real :class:`JobServer` is bound to an ephemeral port per fixture; the
manager underneath runs an injected executor so requests are fast and
deterministic.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.server import JobManager, JobState, make_server

from .test_manager import Gate, instant_executor, wait_for


@pytest.fixture()
def served():
    """(base_url, manager) around an instant executor."""
    yield from _serve(JobManager(workers=1, executor=instant_executor))


@pytest.fixture()
def gated():
    """(base_url, manager, gate) where the single worker blocks."""
    gate = Gate()
    manager = JobManager(workers=1, queue_depth=1, executor=gate)
    generator = _serve(manager, gate)
    yield from generator


def _serve(manager, *extra):
    manager.start()
    server = make_server(manager, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield (f"http://{host}:{port}", manager, *extra)
    finally:
        if extra:  # unblock any gated worker before draining
            extra[0].release.set()
        server.shutdown()
        thread.join(timeout=2.0)
        server.server_close()
        manager.shutdown()


def request(method, url, payload=None):
    """(status, headers, parsed-or-raw body) without raising on 4xx/5xx."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=10.0) as resp:
            body = resp.read()
            status, headers = resp.status, dict(resp.headers)
    except urllib.error.HTTPError as exc:
        body = exc.read()
        status, headers = exc.code, dict(exc.headers)
    if headers.get("Content-Type", "").startswith("application/json"):
        return status, headers, json.loads(body.decode("utf-8"))
    return status, headers, body.decode("utf-8")


class TestSubmitAndPoll:
    def test_full_job_lifecycle(self, served):
        base, manager = served
        status, headers, doc = request(
            "POST", f"{base}/jobs", {"kind": "synthesize", "demo": "crane"}
        )
        assert status == 201
        assert headers["Location"] == f"/jobs/{doc['id']}"
        assert doc["state"] in ("queued", "running", "done")

        job_id = doc["id"]
        assert wait_for(
            lambda: request("GET", f"{base}/jobs/{job_id}")[2]["state"]
            == "done"
        )
        status, _, doc = request("GET", f"{base}/jobs/{job_id}")
        assert status == 200
        assert doc["artifact"] == "crane.mdl"
        assert doc["result"] == {"model": "crane"}

        status, headers, text = request("GET", f"{base}/jobs/{job_id}/artifact")
        assert status == 200
        assert "crane.mdl" in headers["Content-Disposition"]
        assert headers["Content-Type"].startswith("text/plain")
        assert text.startswith("Model {")

    def test_jobs_listing(self, served):
        base, manager = served
        for _ in range(2):
            request("POST", f"{base}/jobs", {"kind": "synthesize", "demo": "crane"})
        status, _, doc = request("GET", f"{base}/jobs")
        assert status == 200
        assert doc["count"] == 2
        assert all("result" not in job for job in doc["jobs"])


class TestErrorStatuses:
    def test_bad_spec_is_400(self, served):
        base, _ = served
        status, _, doc = request("POST", f"{base}/jobs", {"kind": "nope"})
        assert status == 400
        assert "unknown job kind" in doc["error"]

    def test_invalid_json_is_400(self, served):
        base, _ = served
        req = urllib.request.Request(
            f"{base}/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=10.0)
        assert info.value.code == 400

    def test_empty_body_is_400(self, served):
        base, _ = served
        req = urllib.request.Request(f"{base}/jobs", data=b"", method="POST")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=10.0)
        assert info.value.code == 400

    def test_unknown_job_is_404(self, served):
        base, _ = served
        assert request("GET", f"{base}/jobs/job-999999-cafef00d")[0] == 404
        assert (
            request("GET", f"{base}/jobs/job-999999-cafef00d/artifact")[0]
            == 404
        )
        assert (
            request("POST", f"{base}/jobs/job-999999-cafef00d/cancel")[0]
            == 404
        )

    def test_unknown_route_is_404(self, served):
        base, _ = served
        assert request("GET", f"{base}/nope")[0] == 404

    def test_queue_full_is_429_with_retry_after(self, gated):
        base, manager, gate = gated
        request("POST", f"{base}/jobs", {"kind": "synthesize", "demo": "crane"})
        assert gate.started.wait(timeout=5.0)
        # queue_depth=1: one more queues, the next is shed.
        assert (
            request(
                "POST", f"{base}/jobs", {"kind": "synthesize", "demo": "crane"}
            )[0]
            == 201
        )
        status, headers, doc = request(
            "POST", f"{base}/jobs", {"kind": "synthesize", "demo": "crane"}
        )
        assert status == 429
        assert headers["Retry-After"] == "1"
        assert "full" in doc["error"]

    def test_artifact_before_done_is_409(self, gated):
        base, manager, gate = gated
        _, _, doc = request(
            "POST", f"{base}/jobs", {"kind": "synthesize", "demo": "crane"}
        )
        assert gate.started.wait(timeout=5.0)
        status, _, err = request("GET", f"{base}/jobs/{doc['id']}/artifact")
        assert status == 409
        assert "running" in err["error"]

    def test_shutdown_is_503(self, served):
        base, manager = served
        manager.shutdown()
        status, _, doc = request(
            "POST", f"{base}/jobs", {"kind": "synthesize", "demo": "crane"}
        )
        assert status == 503
        assert "shutting down" in doc["error"]


class TestCancelEndpoint:
    def test_cancel_running_job(self, gated):
        base, manager, gate = gated
        _, _, doc = request(
            "POST", f"{base}/jobs", {"kind": "synthesize", "demo": "crane"}
        )
        assert gate.started.wait(timeout=5.0)
        status, _, cancelled = request(
            "POST", f"{base}/jobs/{doc['id']}/cancel"
        )
        assert status == 200
        assert cancelled["state"] == "cancelled"

    def test_delete_alias(self, gated):
        base, manager, gate = gated
        _, _, doc = request(
            "POST", f"{base}/jobs", {"kind": "synthesize", "demo": "crane"}
        )
        status, _, cancelled = request("DELETE", f"{base}/jobs/{doc['id']}")
        assert status == 200
        assert cancelled["state"] in ("cancelled", "done")


class TestHealthAndMetrics:
    def test_healthz_serving(self, served):
        base, manager = served
        status, _, doc = request("GET", f"{base}/healthz")
        assert status == 200
        assert doc["state"] == "serving"
        assert doc["workers"] == 1
        assert "uptime_s" in doc

    def test_healthz_draining_is_503(self, served):
        base, manager = served
        manager.shutdown()
        status, _, doc = request("GET", f"{base}/healthz")
        assert status == 503
        assert doc["state"] == "draining"

    def test_metrics_reflect_server_activity(self, served):
        base, manager = served
        _, _, doc = request(
            "POST", f"{base}/jobs", {"kind": "synthesize", "demo": "crane"}
        )
        assert wait_for(
            lambda: manager.get(doc["id"]).state is JobState.DONE
        )
        status, _, metrics = request("GET", f"{base}/metrics")
        assert status == 200
        assert metrics["counters"]["server.jobs.submitted"] == 1
        assert metrics["counters"]["server.jobs.done"] == 1
        assert "server.queue.depth" in metrics["gauges"]
        assert "server.job.latency" in metrics.get("histograms", {})
