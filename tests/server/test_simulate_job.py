"""The ``simulate`` job kind: spec validation and served-result parity.

A simulate job synthesizes the model through the same front door as a
``synthesize`` job and then batch-executes the CAAM with
:meth:`Simulator.run_many`; the served JSON artifact must match a direct
library run episode for episode.
"""

import json

import pytest

from repro.apps import didactic
from repro.core.flow import FlowError, synthesize
from repro.server import JobManager, JobSpec, JobState, SpecError
from repro.server.executor import execute
from repro.server.jobs import SIMULATE_OPTIONS
from repro.simulink import Simulator, numpy_available

from .test_manager import wait_for


class TestSpecValidation:
    def test_simulate_kind_admitted(self):
        spec = JobSpec(
            kind="simulate",
            demo="didactic",
            options={"steps": 10, "stimuli": [{}]},
        )
        assert spec.validate() is spec

    def test_unknown_option_rejected(self):
        with pytest.raises(SpecError) as excinfo:
            JobSpec(
                kind="simulate", demo="didactic", options={"step": 10}
            ).validate()
        assert "'step'" in str(excinfo.value)

    def test_option_set_documented(self):
        assert SIMULATE_OPTIONS == {
            "steps", "stimuli", "monitor", "engine", "use_cache"
        }

    def test_round_trips_through_json(self):
        spec = JobSpec(
            kind="simulate",
            demo="didactic",
            options={"steps": 5, "engine": "reference"},
        )
        assert JobSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec


class TestExecutorValidation:
    def test_negative_steps_rejected(self):
        spec = JobSpec(kind="simulate", demo="didactic", options={"steps": -1})
        with pytest.raises(FlowError, match="steps"):
            execute(spec)

    def test_bool_steps_rejected(self):
        spec = JobSpec(kind="simulate", demo="didactic", options={"steps": True})
        with pytest.raises(FlowError, match="steps"):
            execute(spec)

    def test_non_list_stimuli_rejected(self):
        spec = JobSpec(
            kind="simulate", demo="didactic", options={"stimuli": {"In1": []}}
        )
        with pytest.raises(FlowError, match="stimuli"):
            execute(spec)

    def test_empty_stimuli_rejected(self):
        spec = JobSpec(kind="simulate", demo="didactic", options={"stimuli": []})
        with pytest.raises(FlowError, match="stimuli"):
            execute(spec)

    def test_bad_monitor_rejected(self):
        spec = JobSpec(
            kind="simulate", demo="didactic", options={"monitor": "m/x"}
        )
        with pytest.raises(FlowError, match="monitor"):
            execute(spec)


class TestSimulateDifferential:
    def test_served_episodes_match_library_run_many(self):
        stimuli = [{}, {}]
        caam = synthesize(didactic.build_model()).caam
        expected = [
            {"outputs": episode.outputs, "signals": episode.signals}
            for episode in Simulator(caam).run_many(20, stimuli)
        ]

        manager = JobManager(workers=1).start()
        try:
            job = manager.submit(
                JobSpec(
                    kind="simulate",
                    demo="didactic",
                    options={"steps": 20, "stimuli": stimuli},
                )
            )
            assert wait_for(lambda: job.state.terminal, timeout=60.0)
            assert job.state is JobState.DONE, job.error
            assert job.outcome.artifact_name.endswith(".sim.json")
            assert json.loads(job.outcome.artifact_text) == expected
            assert job.outcome.payload["episodes"] == 2
            # With NumPy in the environment the job defaults to the
            # vectorized batch engine; the artifact equality above pins
            # it byte-for-byte against the looped library run.
            expected_engine = "batch" if numpy_available() else "slots"
            assert job.outcome.payload["engine"] == expected_engine
        finally:
            manager.shutdown()

    def test_engines_serve_identical_bytes(self):
        default = execute(
            JobSpec(kind="simulate", demo="didactic", options={"steps": 15})
        )
        slots = execute(
            JobSpec(
                kind="simulate",
                demo="didactic",
                options={"steps": 15, "engine": "slots"},
            )
        )
        reference = execute(
            JobSpec(
                kind="simulate",
                demo="didactic",
                options={"steps": 15, "engine": "reference"},
            )
        )
        assert default.artifact_text == slots.artifact_text
        assert slots.artifact_text == reference.artifact_text
        expected_engine = "batch" if numpy_available() else "slots"
        assert default.payload["engine"] == expected_engine
        assert slots.payload["engine"] == "slots"
        assert reference.payload["engine"] == "reference"

    @pytest.mark.skipif(not numpy_available(), reason="requires NumPy")
    def test_batched_job_artifact_parity_with_looped_path(self):
        """The batch engine's artifact is byte-identical to the looped one."""
        stimuli = [
            {"In1": [0.5 * k for k in range(steps)]} for steps in (3, 8, 0, 12)
        ]
        options = {"steps": 10, "stimuli": stimuli}
        batched = execute(
            JobSpec(kind="simulate", demo="didactic", options=dict(options))
        )
        looped = execute(
            JobSpec(
                kind="simulate",
                demo="didactic",
                options={**options, "engine": "slots"},
            )
        )
        assert batched.payload["engine"] == "batch"
        assert looped.payload["engine"] == "slots"
        assert batched.artifact_text == looped.artifact_text
