"""Zoo scenarios as server workloads, and journal-replay ordering.

Two things are pinned here: a generated scenario travels to the server
as pure data (XMI spec) and comes back byte-identical to the direct
library call, and a graceful drain's journal replays queued zoo specs
in FIFO order on restart.
"""

import threading
import time

import pytest

from repro.core import synthesize
from repro.server import JobManager, JobSpec
from repro.server.executor import execute
from repro.server.journal import read_journal
from repro.zoo import ZooError, generate_scenario, scenario_job_spec


def wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _scenarios(count=3):
    return [generate_scenario(17, index, "pipeline") for index in range(count)]


class TestScenarioJobSpec:
    def test_synthesize_spec_is_valid_pure_data(self):
        scenario = _scenarios(1)[0]
        spec = scenario_job_spec(scenario)
        assert spec.kind == "synthesize"
        assert spec.model_xmi and "<uml:Model" in spec.model_xmi
        assert spec.options["name"] == scenario.name
        # Journal round-trip must be lossless (specs are pure data).
        assert JobSpec(**spec.to_dict()).validate() == spec

    def test_explore_spec(self):
        spec = scenario_job_spec(_scenarios(1)[0], kind="explore")
        assert spec.kind == "explore"

    def test_unsupported_kind_rejected(self):
        with pytest.raises(ZooError, match="simulate"):
            scenario_job_spec(_scenarios(1)[0], kind="simulate")


class TestZooArtifactParity:
    def test_executed_spec_matches_direct_library_call(self):
        scenario = _scenarios(1)[0]
        outcome = execute(scenario_job_spec(scenario))
        direct = synthesize(
            scenario.model,
            auto_allocate=scenario.params.auto_allocate,
            name=scenario.name,
        )
        assert outcome.artifact_text == direct.mdl_text


class Blocker:
    """Executor that parks the first job until released."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()

    def __call__(self, spec, *, cancelled=None, pool=None):
        self.started.set()
        self.release.wait(timeout=30.0)
        return execute(spec, cancelled=cancelled, pool=pool)


class Recorder:
    """Real executor that records the specs it ran, in order."""

    def __init__(self):
        self.specs = []

    def __call__(self, spec, *, cancelled=None, pool=None):
        self.specs.append(spec)
        return execute(spec, cancelled=cancelled, pool=pool)


class TestJournalReplayOrdering:
    def test_drain_then_restart_replays_fifo(self, tmp_path):
        journal = str(tmp_path / "journal.json")
        scenarios = _scenarios(3)
        specs = [scenario_job_spec(s) for s in scenarios]

        blocker = Blocker()
        first = JobManager(
            workers=1, queue_depth=8, journal_path=journal, executor=blocker
        ).start()
        try:
            first.submit(JobSpec(kind="synthesize", demo="didactic"))
            queued = [first.submit(spec) for spec in specs]
            assert wait_for(blocker.started.is_set)
        finally:
            stats = first.shutdown(drain=False)
            blocker.release.set()
        assert stats["journaled"] == len(specs)
        assert [job.state.name for job in queued] == ["QUEUED"] * 3
        # The journal itself preserves submission order.
        assert read_journal(journal) == specs

        recorder = Recorder()
        second = JobManager(
            workers=1, queue_depth=8, journal_path=journal, executor=recorder
        ).start()
        try:
            replayed = [job for job in second.jobs()]
            assert len(replayed) == len(specs)
            assert wait_for(
                lambda: all(job.state.terminal for job in second.jobs())
            )
            jobs = second.jobs()
        finally:
            second.shutdown()
        # FIFO: the single worker ran the recovered specs in submission
        # order, and the journal is consumed (one-shot).
        assert recorder.specs == specs
        assert read_journal(journal) == []
        # Artifacts match direct library synthesis, scenario by scenario.
        by_name = {job.spec.options["name"]: job for job in jobs}
        for scenario in scenarios:
            job = by_name[scenario.name]
            assert job.state.name == "DONE", job.error
            direct = synthesize(
                scenario.model,
                auto_allocate=scenario.params.auto_allocate,
                name=scenario.name,
            )
            assert job.outcome.artifact_text == direct.mdl_text
