"""The ``codegen`` job kind: spec validation and executor output."""

import json

import pytest

from repro.server import JobSpec, SpecError
from repro.server.executor import execute

pytestmark = pytest.mark.codegen


class TestSpecValidation:
    def test_codegen_kind_admitted(self):
        spec = JobSpec(
            kind="codegen", demo="crane", options={"languages": ["c", "java"]}
        )
        assert spec.validate() is spec

    def test_unknown_option_rejected(self):
        with pytest.raises(SpecError, match="unknown codegen option"):
            JobSpec(
                kind="codegen", demo="crane", options={"steps": 5}
            ).validate()

    def test_round_trips_through_json(self):
        spec = JobSpec(
            kind="codegen", demo="crane", options={"languages": ["c"]}
        )
        assert JobSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec


class TestExecution:
    def test_manifest_artifact_and_payload(self):
        spec = JobSpec(
            kind="codegen", demo="crane", options={"languages": ["c", "java"]}
        )
        outcome = execute(spec)
        assert outcome.artifact_name == "crane.trace_manifest.json"
        manifest = json.loads(outcome.artifact_text)
        assert manifest["schema"] == "repro.codegen.trace/1"
        payload = outcome.payload
        assert payload["model"] == "crane"
        assert payload["languages"] == ["c", "java"]
        assert payload["schedule"]["pes"] == 3
        assert set(payload["sources"]) == {
            "crane.c",
            "crane.h",
            "CraneSchedule.java",
        }
        # inline sources hash-match the manifest the client downloads
        import hashlib

        for filename, digest in payload["artifact_hashes"].items():
            actual = hashlib.sha256(
                payload["sources"][filename].encode()
            ).hexdigest()
            assert actual == digest
        assert payload["requirements"] == ["REQ-CRANE-001"]

    def test_default_language_is_c(self):
        outcome = execute(JobSpec(kind="codegen", demo="crane"))
        assert sorted(outcome.payload["sources"]) == ["crane.c", "crane.h"]

    def test_bad_languages_option_fails_cleanly(self):
        from repro.core.flow import FlowError

        with pytest.raises(FlowError, match="unknown codegen language"):
            execute(
                JobSpec(
                    kind="codegen",
                    demo="crane",
                    options={"languages": ["cobol"]},
                )
            )
        with pytest.raises(FlowError, match="non-empty list"):
            execute(
                JobSpec(
                    kind="codegen", demo="crane", options={"languages": []}
                )
            )
