"""Unit tests for the retry policy and the transient-error taxonomy."""

import pytest

from repro.core.flow import FlowError, TransientFlowError, is_transient
from repro.server.retry import RetryPolicy


class TestTaxonomy:
    def test_flow_error_is_deterministic(self):
        assert not is_transient(FlowError("bad model"))

    def test_transient_flow_error(self):
        assert is_transient(TransientFlowError("worker died"))
        # It still is a FlowError, so existing handlers catch it.
        assert isinstance(TransientFlowError("x"), FlowError)

    @pytest.mark.parametrize(
        "exc",
        [
            OSError("disk"),
            EOFError(),
            BrokenPipeError(),
            ConnectionResetError(),
            MemoryError(),
        ],
    )
    def test_substrate_failures_are_transient(self, exc):
        assert is_transient(exc)

    @pytest.mark.parametrize(
        "exc", [ValueError("v"), TypeError("t"), KeyError("k")]
    )
    def test_programming_errors_are_not(self, exc):
        assert not is_transient(exc)


class TestRetryPolicy:
    def test_retries_transient_until_budget_spent(self):
        policy = RetryPolicy(max_retries=2)
        exc = TransientFlowError("x")
        assert policy.should_retry(exc, attempts=1)
        assert policy.should_retry(exc, attempts=2)
        assert not policy.should_retry(exc, attempts=3)

    def test_never_retries_deterministic(self):
        policy = RetryPolicy(max_retries=5)
        assert not policy.should_retry(FlowError("x"), attempts=1)

    def test_backoff_doubles_without_jitter(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=10.0, jitter=0.0)
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.4)

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=3.0, jitter=0.0)
        assert policy.delay_for(10) == pytest.approx(3.0)

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=10.0, jitter=0.25)
        for _ in range(200):
            delay = policy.delay_for(1)
            assert 0.75 <= delay <= 1.25
