"""Unit tests for the shutdown journal."""

import json

from repro.server.jobs import JobSpec
from repro.server.journal import consume_journal, read_journal, write_journal


def _specs():
    return [
        JobSpec(kind="synthesize", demo="crane", options={"use_cache": False}),
        JobSpec(kind="explore", demo="didactic", timeout_s=4.0),
    ]


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "journal.json")
        assert write_journal(path, _specs()) == 2
        assert read_journal(path) == _specs()

    def test_consume_is_one_shot(self, tmp_path):
        path = str(tmp_path / "journal.json")
        write_journal(path, _specs())
        assert consume_journal(path) == _specs()
        assert consume_journal(path) == []

    def test_empty_write_removes_stale_file(self, tmp_path):
        path = tmp_path / "journal.json"
        write_journal(str(path), _specs())
        assert path.exists()
        assert write_journal(str(path), []) == 0
        assert not path.exists()

    def test_missing_file_means_no_backlog(self, tmp_path):
        assert read_journal(str(tmp_path / "nope.json")) == []

    def test_corrupt_file_is_tolerated(self, tmp_path):
        path = tmp_path / "journal.json"
        path.write_text("{not json", encoding="utf-8")
        assert read_journal(str(path)) == []

    def test_invalid_entries_are_skipped(self, tmp_path):
        path = tmp_path / "journal.json"
        document = {
            "version": 1,
            "jobs": [
                {"kind": "synthesize", "demo": "crane"},
                {"kind": "transmogrify", "demo": "crane"},  # bad kind
                "not-an-object",
            ],
        }
        path.write_text(json.dumps(document), encoding="utf-8")
        specs = read_journal(str(path))
        assert len(specs) == 1
        assert specs[0].demo == "crane"
