"""Differential guarantee: served artifacts == library artifacts, byte for byte.

The server's executor must call the exact same front doors a library user
calls, so a ``.mdl`` fetched through ``POST /jobs`` + ``GET .../artifact``
is byte-identical to ``synthesize(model).mdl_text`` — with a cold cache,
with a warm cache, and for exploration JSON as well.
"""

import json

import pytest

from repro.apps import crane, didactic
from repro.core.flow import synthesize
from repro.core.taskgraph import task_graph_from_model
from repro.dse.explore import explore, pareto_front
from repro.parallel import cache as pcache
from repro.server import JobManager, JobSpec, JobState

from .test_manager import wait_for


@pytest.fixture()
def isolated_cache(tmp_path):
    """A private, enabled synthesis cache for the duration of a test."""
    state = pcache.snapshot()
    pcache.configure(enabled=True, directory=str(tmp_path / "cache"))
    try:
        yield
    finally:
        pcache.restore(state)


def run_job(manager, spec):
    job = manager.submit(spec)
    assert wait_for(lambda: job.state.terminal, timeout=60.0)
    assert job.state is JobState.DONE, job.error
    return job


class TestSynthesizeDifferential:
    def test_served_mdl_matches_library_cold_and_warm(self, isolated_cache):
        expected = synthesize(crane.build_model()).mdl_text
        manager = JobManager(workers=1).start()
        try:
            cold = run_job(manager, JobSpec(kind="synthesize", demo="crane"))
            assert cold.outcome.artifact_name == "crane.mdl"
            assert cold.outcome.artifact_text == expected

            # Second run hits the (now warm) content cache; bytes must not
            # change and the payload must say the cache engaged.
            warm = run_job(manager, JobSpec(kind="synthesize", demo="crane"))
            assert warm.outcome.artifact_text == expected
            assert warm.outcome.payload.get("cache", {}).get("status") == "hit"
        finally:
            manager.shutdown()

    def test_cache_disabled_still_byte_identical(self, isolated_cache):
        expected = synthesize(didactic.build_model(), use_cache=False).mdl_text
        manager = JobManager(workers=1).start()
        try:
            job = run_job(
                manager,
                JobSpec(
                    kind="synthesize",
                    demo="didactic",
                    options={"use_cache": False},
                ),
            )
            assert job.outcome.artifact_text == expected
        finally:
            manager.shutdown()


class TestExploreDifferential:
    def test_served_pareto_front_matches_library(self):
        model = didactic.build_model()
        graph = task_graph_from_model(model)
        candidates = explore(graph)
        front = pareto_front(candidates, objective="latency")
        expected = [
            (candidate.cpu_count, candidate.metric) for candidate in front
        ]

        manager = JobManager(workers=1).start()
        try:
            job = run_job(manager, JobSpec(kind="explore", demo="didactic"))
            assert job.outcome.artifact_name.endswith(".pareto.json")
            served = [
                (entry["cpus"], entry["metric"])
                for entry in json.loads(job.outcome.artifact_text)
            ]
            assert served == expected
            assert job.outcome.payload["candidates"] == len(candidates)
        finally:
            manager.shutdown()
