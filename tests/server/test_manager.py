"""Robustness tests for the job manager.

Every test injects a synthetic executor so the scheduler's behaviour —
admission, timeouts, retries, cancellation, drain — is exercised without
paying for real synthesis runs.
"""

import threading
import time

import pytest

from repro.core.flow import FlowError, TransientFlowError
from repro.server import (
    JobManager,
    JobSpec,
    JobState,
    QueueFull,
    RetryPolicy,
    ShuttingDown,
    UnknownJob,
)
from repro.server.jobs import JobOutcome


def wait_for(predicate, timeout=5.0, interval=0.01):
    """Poll ``predicate`` until true or ``timeout`` elapses."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def spec(**kwargs):
    kwargs.setdefault("kind", "synthesize")
    kwargs.setdefault("demo", "crane")
    return JobSpec(**kwargs)


def ok_outcome(name="crane"):
    return JobOutcome(
        artifact_name=f"{name}.mdl",
        artifact_text=f"Model {{ Name \"{name}\" }}\n",
        payload={"model": name},
    )


def instant_executor(job_spec, *, cancelled=None, pool=None):
    return ok_outcome()


class Gate:
    """An executor that blocks until released (for queue/drain tests)."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()

    def __call__(self, job_spec, *, cancelled=None, pool=None):
        self.started.set()
        self.release.wait(timeout=10.0)
        return ok_outcome()


@pytest.fixture()
def fast_retry():
    return RetryPolicy(max_retries=2, base_delay_s=0.01, jitter=0.0)


class TestHappyPath:
    def test_submit_runs_to_done(self):
        manager = JobManager(workers=1, executor=instant_executor).start()
        try:
            job = manager.submit(spec())
            assert wait_for(lambda: job.state is JobState.DONE)
            assert job.attempts == 1
            assert job.outcome.artifact_name == "crane.mdl"
            assert job.finished_at is not None
            counters = manager.metrics.to_dict()["counters"]
            assert counters["server.jobs.submitted"] == 1
            assert counters["server.jobs.done"] == 1
        finally:
            manager.shutdown()

    def test_latency_histogram_records_each_job(self):
        manager = JobManager(workers=2, executor=instant_executor).start()
        try:
            jobs = [manager.submit(spec()) for _ in range(3)]
            assert wait_for(
                lambda: all(j.state is JobState.DONE for j in jobs)
            )
            stat = manager.metrics.histogram_stat("server.job.latency")
            assert stat is not None and stat.count == 3
        finally:
            manager.shutdown()

    def test_rejects_invalid_spec_before_admission(self):
        manager = JobManager(workers=1, executor=instant_executor).start()
        try:
            with pytest.raises(Exception, match="exactly one model source"):
                manager.submit(JobSpec(kind="synthesize"))
            assert manager.jobs() == []
        finally:
            manager.shutdown()

    def test_get_unknown_job(self):
        manager = JobManager(workers=1, executor=instant_executor).start()
        try:
            with pytest.raises(UnknownJob):
                manager.get("job-999999-deadbeef")
        finally:
            manager.shutdown()


class TestAdmissionControl:
    def test_queue_full_rejection(self):
        gate = Gate()
        manager = JobManager(workers=1, queue_depth=2, executor=gate).start()
        try:
            first = manager.submit(spec())
            assert gate.started.wait(timeout=5.0)  # worker is now occupied
            manager.submit(spec())
            manager.submit(spec())
            with pytest.raises(QueueFull, match="full"):
                manager.submit(spec())
            counters = manager.metrics.to_dict()["counters"]
            assert counters["server.jobs.rejected.full"] == 1
            gate.release.set()
            assert wait_for(lambda: first.state is JobState.DONE)
        finally:
            gate.release.set()
            manager.shutdown()

    def test_queue_depth_gauge_tracks_backlog(self):
        gate = Gate()
        manager = JobManager(workers=1, queue_depth=8, executor=gate).start()
        try:
            manager.submit(spec())
            assert gate.started.wait(timeout=5.0)
            manager.submit(spec())
            manager.submit(spec())
            metrics = manager.metrics.to_dict()
            assert metrics["gauges"]["server.queue.depth"] == 2
            assert metrics["gauges"]["server.jobs.inflight"] == 1
        finally:
            gate.release.set()
            manager.shutdown()

    def test_rejects_after_shutdown(self):
        manager = JobManager(workers=1, executor=instant_executor).start()
        manager.shutdown()
        with pytest.raises(ShuttingDown):
            manager.submit(spec())
        counters = manager.metrics.to_dict()["counters"]
        assert counters["server.jobs.rejected.shutdown"] == 1


class TestTimeout:
    def test_slow_job_times_out(self):
        def slow(job_spec, *, cancelled=None, pool=None):
            # Cooperative: loop until the manager trips the cancel hook.
            deadline = time.time() + 10.0
            while time.time() < deadline:
                if cancelled():
                    return ok_outcome()  # late result, must be discarded
                time.sleep(0.01)
            return ok_outcome()

        manager = JobManager(
            workers=1, job_timeout_s=0.15, executor=slow
        ).start()
        try:
            job = manager.submit(spec())
            assert wait_for(lambda: job.state is JobState.TIMED_OUT)
            assert "timed out" in job.error
            # The worker returns a late result; it must be dropped, not
            # resurrect the job.
            assert wait_for(
                lambda: manager.metrics.to_dict()["counters"].get(
                    "server.jobs.discarded_results", 0
                )
                == 1
            )
            assert job.state is JobState.TIMED_OUT
            counters = manager.metrics.to_dict()["counters"]
            assert counters["server.jobs.timed_out"] == 1
        finally:
            manager.shutdown()

    def test_per_spec_timeout_overrides_default(self):
        def slow(job_spec, *, cancelled=None, pool=None):
            while not cancelled():
                time.sleep(0.01)
            return ok_outcome()

        manager = JobManager(
            workers=1, job_timeout_s=60.0, executor=slow
        ).start()
        try:
            job = manager.submit(spec(timeout_s=0.15))
            assert wait_for(lambda: job.state is JobState.TIMED_OUT)
            assert "0.15" in job.error
        finally:
            manager.shutdown()


class TestRetries:
    def test_transient_failure_retried_until_success(self, fast_retry):
        calls = []

        def flaky(job_spec, *, cancelled=None, pool=None):
            calls.append(time.time())
            if len(calls) < 3:
                raise TransientFlowError("worker crashed")
            return ok_outcome()

        manager = JobManager(
            workers=1, retry=fast_retry, executor=flaky
        ).start()
        try:
            job = manager.submit(spec())
            assert wait_for(lambda: job.state is JobState.DONE)
            assert job.attempts == 3
            counters = manager.metrics.to_dict()["counters"]
            assert counters["server.jobs.retried"] == 2
            assert counters["server.jobs.done"] == 1
            # not_before enforces at least the backoff delay between
            # attempts: 0.01s before the first retry, 0.02s before the
            # second (doubling, jitter disabled).
            assert calls[1] - calls[0] >= 0.01
            assert calls[2] - calls[1] >= 0.02

        finally:
            manager.shutdown()

    def test_retries_exhausted_fails(self, fast_retry):
        def always_transient(job_spec, *, cancelled=None, pool=None):
            raise TransientFlowError("still broken")

        manager = JobManager(
            workers=1, retry=fast_retry, executor=always_transient
        ).start()
        try:
            job = manager.submit(spec())
            assert wait_for(lambda: job.state is JobState.FAILED)
            assert job.attempts == 3  # 1 original + max_retries
            assert "TransientFlowError" in job.error
        finally:
            manager.shutdown()

    def test_deterministic_flow_error_never_retried(self, fast_retry):
        calls = []

        def deterministic(job_spec, *, cancelled=None, pool=None):
            calls.append(1)
            raise FlowError("model is invalid")

        manager = JobManager(
            workers=1, retry=fast_retry, executor=deterministic
        ).start()
        try:
            job = manager.submit(spec())
            assert wait_for(lambda: job.state is JobState.FAILED)
            assert job.attempts == 1
            assert len(calls) == 1
            assert "FlowError: model is invalid" in job.error
            counters = manager.metrics.to_dict()["counters"]
            assert "server.jobs.retried" not in counters
        finally:
            manager.shutdown()


class TestCancellation:
    def test_cancel_queued_job(self):
        gate = Gate()
        manager = JobManager(workers=1, executor=gate).start()
        try:
            manager.submit(spec())
            assert gate.started.wait(timeout=5.0)
            queued = manager.submit(spec())
            cancelled = manager.cancel(queued.id)
            assert cancelled.state is JobState.CANCELLED
            gate.release.set()
            # The cancelled job never runs.
            time.sleep(0.1)
            assert queued.attempts == 0
        finally:
            gate.release.set()
            manager.shutdown()

    def test_cancel_running_job_discards_result(self):
        gate = Gate()
        manager = JobManager(workers=1, executor=gate).start()
        try:
            job = manager.submit(spec())
            assert gate.started.wait(timeout=5.0)
            manager.cancel(job.id)
            assert job.state is JobState.CANCELLED
            assert job.cancel_event.is_set()
            gate.release.set()
            assert wait_for(
                lambda: manager.metrics.to_dict()["counters"].get(
                    "server.jobs.discarded_results", 0
                )
                == 1
            )
            assert job.state is JobState.CANCELLED
        finally:
            gate.release.set()
            manager.shutdown()

    def test_cancel_is_idempotent_on_terminal(self):
        manager = JobManager(workers=1, executor=instant_executor).start()
        try:
            job = manager.submit(spec())
            assert wait_for(lambda: job.state is JobState.DONE)
            assert manager.cancel(job.id).state is JobState.DONE
        finally:
            manager.shutdown()

    def test_cancel_unknown_job(self):
        manager = JobManager(workers=1, executor=instant_executor).start()
        try:
            with pytest.raises(UnknownJob):
                manager.cancel("job-000000-00000000")
        finally:
            manager.shutdown()


class TestShutdown:
    def test_drain_finishes_running_and_journals_queue(self, tmp_path):
        journal = str(tmp_path / "journal.json")
        gate = Gate()
        manager = JobManager(
            workers=1, queue_depth=8, journal_path=journal, executor=gate
        ).start()
        running = manager.submit(spec())
        manager.submit(spec(demo="didactic"))
        manager.submit(spec(kind="explore", demo="didactic"))
        assert gate.started.wait(timeout=5.0)

        result = {}
        shutter = threading.Thread(
            target=lambda: result.update(manager.shutdown(timeout=10.0))
        )
        shutter.start()
        # Admission closes immediately, even while draining.
        assert wait_for(lambda: manager.draining)
        gate.release.set()
        shutter.join(timeout=10.0)
        assert not shutter.is_alive()

        assert running.state is JobState.DONE
        assert result == {"drained": 1, "journaled": 2, "backlog": 2}

        # A new manager on the same journal path replays the backlog.
        done = []

        def recorder_executor(job_spec, *, cancelled=None, pool=None):
            done.append(job_spec)
            return ok_outcome()

        revived = JobManager(
            workers=1, journal_path=journal, executor=recorder_executor
        ).start()
        try:
            assert wait_for(lambda: len(done) == 2)
            assert {s.demo for s in done} == {"didactic"}
            assert {s.kind for s in done} == {"synthesize", "explore"}
            assert revived.stats()["recovered_from_journal"] == 2
        finally:
            revived.shutdown()
        # Journal was consumed: nothing left to replay.
        assert JobManager(
            workers=1, journal_path=journal, executor=recorder_executor
        ).start().shutdown()["journaled"] == 0

    def test_clean_shutdown_leaves_no_journal(self, tmp_path):
        journal = tmp_path / "journal.json"
        manager = JobManager(
            workers=1, journal_path=str(journal), executor=instant_executor
        ).start()
        job = manager.submit(spec())
        assert wait_for(lambda: job.state is JobState.DONE)
        summary = manager.shutdown()
        assert summary["journaled"] == 0
        assert not journal.exists()

    def test_shutdown_without_drain_abandons_workers(self):
        gate = Gate()
        manager = JobManager(workers=1, executor=gate).start()
        manager.submit(spec())
        assert gate.started.wait(timeout=5.0)
        summary = manager.shutdown(drain=False)
        assert summary["drained"] == 0
        gate.release.set()

    def test_stats_shape(self):
        manager = JobManager(workers=3, queue_depth=5, executor=instant_executor)
        manager.start()
        try:
            job = manager.submit(spec())
            assert wait_for(lambda: job.state is JobState.DONE)
            stats = manager.stats()
            assert stats["state"] == "serving"
            assert stats["workers"] == 3
            assert stats["queue_depth"] == 5
            assert stats["jobs"] == {"done": 1}
        finally:
            manager.shutdown()
        assert manager.stats()["state"] == "draining"
