"""Unit tests for trace links (repro.transform.trace)."""

import pytest

from repro.transform import TraceError, TraceStore


class Thing:
    def __init__(self, name):
        self.name = name


class TestTraceStore:
    def test_add_and_resolve(self):
        store = TraceStore()
        source, target = Thing("s"), Thing("t")
        store.add("rule", source, target)
        assert store.resolve(source) is target
        assert store.has(source)
        assert len(store) == 1

    def test_roles_partition_targets(self):
        store = TraceStore()
        source = Thing("s")
        store.add("rule", source, Thing("a"), role="subsystem")
        store.add("rule", source, Thing("b"), role="port")
        assert store.resolve(source, "subsystem").name == "a"
        assert store.resolve(source, "port").name == "b"
        assert not store.has(source)  # no role-less link

    def test_missing_resolution_raises(self):
        store = TraceStore()
        with pytest.raises(TraceError, match="no trace target"):
            store.resolve(Thing("s"))

    def test_ambiguous_resolution_raises(self):
        store = TraceStore()
        source = Thing("s")
        store.add("rule", source, Thing("a"))
        store.add("rule", source, Thing("b"))
        with pytest.raises(TraceError, match="ambiguous"):
            store.resolve(source)
        assert store.try_resolve(source) is None
        assert len(store.targets(source)) == 2

    def test_try_resolve_unique(self):
        store = TraceStore()
        source = Thing("s")
        store.add("rule", source, Thing("a"))
        assert store.try_resolve(source).name == "a"

    def test_by_rule_filter(self):
        store = TraceStore()
        store.add("r1", Thing("a"), Thing("x"))
        store.add("r2", Thing("b"), Thing("y"))
        assert len(store.by_rule("r1")) == 1
        assert store.by_rule("r1")[0].rule == "r1"

    def test_unhashable_sources_supported(self):
        store = TraceStore()
        source = {"not": "hashable"}
        store.add("rule", source, Thing("t"))
        assert store.resolve(source).name == "t"

    def test_identity_not_equality(self):
        store = TraceStore()
        a1, a2 = Thing("same"), Thing("same")
        store.add("rule", a1, Thing("t1"))
        assert store.has(a1)
        assert not store.has(a2)
