"""Unit tests for the template engine (repro.transform.text)."""

import pytest

from repro.transform import Template, TemplateError, render


class TestSubstitution:
    def test_simple_expression(self):
        assert render("hello ${name}", name="world") == "hello world\n"

    def test_multiple_expressions_per_line(self):
        assert render("${a} + ${b} = ${a + b}", a=1, b=2) == "1 + 2 = 3\n"

    def test_attribute_and_index_access(self):
        class Obj:
            value = 10

        assert render("${o.value} ${xs[1]}", o=Obj(), xs=[1, 2]) == "10 2\n"

    def test_safe_builtins_available(self):
        assert render("${len(xs)}", xs=[1, 2, 3]) == "3\n"

    def test_unsafe_builtins_unavailable(self):
        with pytest.raises(TemplateError):
            render("${open('/etc/passwd')}")

    def test_failing_expression_raises_with_context(self):
        with pytest.raises(TemplateError, match="nope"):
            render("${nope}")

    def test_literal_text_untouched(self):
        assert render("no placeholders { }") == "no placeholders { }\n"


class TestControlFlow:
    def test_for_loop(self):
        out = render(
            """
%for x in items:
- ${x}
%end
""",
            items=[1, 2],
        )
        assert out == "- 1\n- 2\n"

    def test_for_with_unpacking(self):
        out = render(
            """
%for k, v in pairs:
${k}=${v}
%end
""",
            pairs=[("a", 1), ("b", 2)],
        )
        assert out == "a=1\nb=2\n"

    def test_unpack_arity_mismatch(self):
        template = Template(
            """
%for a, b in pairs:
x
%end
"""
        )
        with pytest.raises(TemplateError, match="unpack"):
            template.render(pairs=[(1, 2, 3)])

    def test_if_elif_else(self):
        template = Template(
            """
%if x > 0:
positive
%elif x < 0:
negative
%else:
zero
%end
"""
        )
        assert template.render(x=5) == "positive\n"
        assert template.render(x=-5) == "negative\n"
        assert template.render(x=0) == "zero\n"

    def test_nested_blocks(self):
        out = render(
            """
%for row in rows:
%if row:
row: ${row}
%end
%end
""",
            rows=[1, 0, 2],
        )
        assert out == "row: 1\nrow: 2\n"

    def test_loop_scope_does_not_leak(self):
        out = render(
            """
%for x in [1]:
${x}
%end
${outer}
""",
            outer="kept",
        )
        assert out == "1\nkept\n"

    def test_indentation_preserved(self):
        out = render(
            """
%for x in [1]:
    indented ${x}
%end
"""
        )
        assert out == "    indented 1\n"


class TestErrors:
    def test_unterminated_block(self):
        with pytest.raises(TemplateError, match="unterminated"):
            Template("%for x in items:")

    def test_end_without_block(self):
        with pytest.raises(TemplateError, match="%end without block"):
            Template("%end")

    def test_else_without_if(self):
        with pytest.raises(TemplateError, match="%else without %if"):
            Template("%else:")

    def test_elif_without_if(self):
        with pytest.raises(TemplateError, match="%elif without %if"):
            Template("%elif x:")

    def test_unknown_directive(self):
        with pytest.raises(TemplateError, match="unrecognized directive"):
            Template("%while True:")

    def test_else_directly_inside_for_rejected(self):
        with pytest.raises(TemplateError, match="%else without %if"):
            Template(
                """
%for x in xs:
%else:
%end
"""
            )
