"""Unit tests for the model-to-model rule engine (repro.transform.engine)."""

import pytest

from repro.transform import (
    Rule,
    TraceError,
    Transformation,
    TransformationContext,
)


class Source:
    def __init__(self, name, kind="plain"):
        self.name = name
        self.kind = kind


class Special(Source):
    pass


class Target:
    def __init__(self, label):
        self.label = label


class TestRuleMatching:
    def test_type_and_guard(self):
        rule = Rule(
            "r", Source, lambda e, c: None, guard=lambda e: e.kind == "x"
        )
        assert rule.matches(Source("a", "x"))
        assert not rule.matches(Source("a", "y"))
        assert not rule.matches(object())

    def test_subclass_matches(self):
        rule = Rule("r", Source, lambda e, c: None)
        assert rule.matches(Special("s"))


class TestExecution:
    def test_exclusive_fires_first_matching_rule_only(self):
        transformation = Transformation("t", exclusive=True)
        fired = []
        transformation.add_rule(
            Rule("first", Source, lambda e, c: fired.append("first"))
        )
        transformation.add_rule(
            Rule("second", Source, lambda e, c: fired.append("second"))
        )
        transformation.run([Source("a")], target=None)
        assert fired == ["first"]

    def test_non_exclusive_fires_all(self):
        transformation = Transformation("t", exclusive=False)
        fired = []
        transformation.add_rule(
            Rule("first", Source, lambda e, c: fired.append("first"))
        )
        transformation.add_rule(
            Rule("second", Source, lambda e, c: fired.append("second"))
        )
        transformation.run([Source("a")], target=None)
        assert fired == ["first", "second"]

    def test_unmatched_elements_skipped(self):
        transformation = Transformation("t")
        transformation.add_rule(
            Rule("only_special", Special, lambda e, c: Target(e.name))
        )
        context = transformation.run([Source("a"), Special("s")], target=None)
        assert len(context.trace) == 1

    def test_decorator_registration(self):
        transformation = Transformation("t")

        @transformation.rule("make", Source)
        def make(element, context):
            return Target(element.name)

        context = transformation.run([Source("a")], target=None)
        assert context.trace.by_rule("make")[0].target.label == "a"


class TestTraceIntegration:
    def test_targets_are_trace_linked(self):
        transformation = Transformation("t")
        transformation.add_rule(Rule("make", Source, lambda e, c: Target(e.name)))
        source = Source("a")
        context = transformation.run([source], target=None)
        assert context.resolve(source).label == "a"

    def test_list_results_create_multiple_links(self):
        transformation = Transformation("t")
        transformation.add_rule(
            Rule("make2", Source, lambda e, c: [Target("x"), Target("y")])
        )
        source = Source("a")
        context = transformation.run([source], target=None)
        assert len(context.trace.targets(source)) == 2
        with pytest.raises(TraceError, match="ambiguous"):
            context.resolve(source)

    def test_none_results_not_linked(self):
        transformation = Transformation("t")
        transformation.add_rule(Rule("skip", Source, lambda e, c: None))
        source = Source("a")
        context = transformation.run([source], target=None)
        assert not context.trace.has(source)
        assert context.try_resolve(source) is None

    def test_late_resolution_between_rules(self):
        transformation = Transformation("t")
        transformation.add_rule(
            Rule(
                "special",
                Special,
                lambda e, c: Target("special:" + e.name),
            )
        )

        seen = []

        def resolve_rule(element, context):
            # Resolves what the earlier sweep element produced.
            seen.append(context.resolve(element.ref).label)

        class RefElement:
            def __init__(self, ref):
                self.ref = ref

        transformation.add_rule(Rule("use", RefElement, resolve_rule))
        special = Special("s")
        transformation.run([special, RefElement(special)], target=None)
        assert seen == ["special:s"]


class TestDeferred:
    def test_deferred_actions_run_after_sweep(self):
        transformation = Transformation("t")
        order = []

        def rule_fn(element, context):
            order.append(f"rule:{element.name}")
            context.defer(lambda c: order.append(f"deferred:{element.name}"))

        transformation.add_rule(Rule("r", Source, rule_fn))
        transformation.run([Source("a"), Source("b")], target=None)
        assert order == ["rule:a", "rule:b", "deferred:a", "deferred:b"]

    def test_deferred_can_enqueue_more(self):
        context = TransformationContext(target=None)
        order = []
        context.defer(
            lambda c: (order.append(1), c.defer(lambda c2: order.append(2)))
        )
        context.run_deferred()
        assert order == [1, 2]

    def test_options_passed_through(self):
        transformation = Transformation("t")
        seen = {}
        transformation.add_rule(
            Rule("r", Source, lambda e, c: seen.update(c.options))
        )
        transformation.run([Source("a")], target=None, options={"k": 1})
        assert seen == {"k": 1}
