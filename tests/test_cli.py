"""Unit tests for the command-line interface (repro.cli)."""

import json
import os

import pytest

from repro.cli import main


@pytest.fixture()
def crane_xmi(tmp_path):
    path = tmp_path / "crane.xmi"
    assert main(["demo", "crane", str(path)]) == 0
    return str(path)


@pytest.fixture()
def didactic_xmi(tmp_path):
    path = tmp_path / "didactic.xmi"
    assert main(["demo", "didactic", str(path)]) == 0
    return str(path)


class TestDemo:
    def test_exports_every_case_study(self, tmp_path, capsys):
        for name in ("didactic", "crane", "synthetic", "mjpeg"):
            path = tmp_path / f"{name}.xmi"
            assert main(["demo", name, str(path)]) == 0
            assert path.exists() and path.stat().st_size > 100
        assert "wrote" in capsys.readouterr().out

    def test_unknown_demo(self, tmp_path, capsys):
        assert main(["demo", "nonsense", str(tmp_path / "x.xmi")]) == 2
        assert "unknown demo" in capsys.readouterr().err


class TestValidate:
    def test_ok_model(self, didactic_xmi, capsys):
        assert main(["validate", didactic_xmi]) == 0
        assert "OK" in capsys.readouterr().out

    def test_warnings_do_not_fail(self, crane_xmi, capsys):
        assert main(["validate", crane_xmi]) == 0
        assert "warning" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["validate", "/nonexistent.xmi"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_require_deployment_flag(self, crane_xmi):
        assert main(["validate", crane_xmi, "--require-deployment"]) == 0


class TestSynthesize:
    def test_produces_mdl(self, crane_xmi, tmp_path, capsys):
        out = tmp_path / "crane.mdl"
        code = main(
            ["synthesize", crane_xmi, "-o", str(out), "--summary"]
        )
        assert code == 0
        assert out.exists()
        output = capsys.readouterr().out
        assert "CAAM" in output
        assert "temporal barriers inserted: 1" in output

    def test_intermediate_artifact(self, didactic_xmi, tmp_path):
        out = tmp_path / "d.mdl"
        inter = tmp_path / "d.caam.xml"
        assert (
            main(
                [
                    "synthesize",
                    didactic_xmi,
                    "-o",
                    str(out),
                    "--intermediate",
                    str(inter),
                ]
            )
            == 0
        )
        assert inter.read_text().startswith("<?xml")

    def test_auto_allocate(self, tmp_path):
        xmi = tmp_path / "s.xmi"
        main(["demo", "synthetic", str(xmi)])
        out = tmp_path / "s.mdl"
        assert (
            main(["synthesize", str(xmi), "-o", str(out), "--auto-allocate"])
            == 0
        )

    def test_strict_mode_fails_on_inference(self, tmp_path, capsys):
        from repro.uml import ModelBuilder, write_xmi

        b = ModelBuilder("ghosted")
        b.thread("T1")
        b.instance("Obj")
        b.processor("CPU1", threads=["T1"])
        sd = b.interaction("main")
        sd.call("T1", "Obj", "f", args=["ghost"])  # no producer anywhere
        xmi = tmp_path / "g.xmi"
        write_xmi(b.build(), str(xmi))
        out = tmp_path / "g.mdl"
        assert main(["synthesize", str(xmi), "-o", str(out), "--strict"]) != 0
        assert "ghost" in capsys.readouterr().err
        assert main(["synthesize", str(xmi), "-o", str(out)]) == 0


class TestSimulate:
    def test_runs_generated_model(self, didactic_xmi, tmp_path, capsys):
        out = tmp_path / "d.mdl"
        main(["synthesize", didactic_xmi, "-o", str(out)])
        code = main(
            ["simulate", str(out), "--steps", "3", "--input", "In1=2,4,6"]
        )
        assert code == 0
        assert "Out1:" in capsys.readouterr().out

    def test_deadlocked_model_reports_failure(self, crane_xmi, tmp_path, capsys):
        out = tmp_path / "c.mdl"
        main(
            ["synthesize", crane_xmi, "-o", str(out), "--no-barriers"]
        )
        assert main(["simulate", str(out)]) == 1
        assert "deadlock" in capsys.readouterr().err

    def test_bad_stimulus_syntax(self, didactic_xmi, tmp_path, capsys):
        out = tmp_path / "d.mdl"
        main(["synthesize", didactic_xmi, "-o", str(out)])
        assert main(["simulate", str(out), "--input", "oops"]) == 2
        assert "expected NAME=" in capsys.readouterr().err

    def test_bad_stimulus_values(self, didactic_xmi, tmp_path, capsys):
        out = tmp_path / "d.mdl"
        main(["synthesize", didactic_xmi, "-o", str(out)])
        code = main(["simulate", str(out), "--input", "In1=2,x,6"])
        assert code == 2
        err = capsys.readouterr().err
        assert "bad sample values" in err
        assert "Traceback" not in err  # argparse error line, not a crash

    def test_model_without_output_ports_prints_hint(self, tmp_path, capsys):
        from repro.simulink.mdl import to_mdl
        from repro.simulink.model import Block, SimulinkModel

        model = SimulinkModel("quiet")
        const = model.root.add(
            Block("c", "Constant", inputs=0, parameters={"Value": 1.0})
        )
        gain = model.root.add(Block("g", "Gain", parameters={"Gain": 2.0}))
        model.root.connect(const.output(), gain.input())
        path = tmp_path / "quiet.mdl"
        path.write_text(to_mdl(model), encoding="utf-8")

        assert main(["simulate", str(path), "--steps", "3"]) == 0
        out = capsys.readouterr().out
        assert "no root-level output ports" in out
        assert "--monitor" in out

        # With a monitor the same model produces a trace and no hint.
        assert (
            main(
                ["simulate", str(path), "--steps", "3", "--monitor", "quiet/g"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "quiet/g: 2, 2, 2" in out
        assert "no root-level output ports" not in out


class TestCodegen:
    @pytest.mark.parametrize("backend", ["simulink", "java", "kpn"])
    def test_backends(self, crane_xmi, tmp_path, backend):
        out = tmp_path / backend
        assert (
            main(
                ["codegen", crane_xmi, "--backend", backend, "-o", str(out)]
            )
            == 0
        )
        assert os.listdir(out)

    def test_sdf_backend_writes_sources_and_manifest(
        self, crane_xmi, tmp_path, capsys
    ):
        out = tmp_path / "sdf"
        code = main(
            [
                "codegen",
                crane_xmi,
                "--backend",
                "sdf",
                "--lang",
                "c",
                "--lang",
                "java",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        assert sorted(os.listdir(out)) == [
            "CraneSchedule.java",
            "crane.c",
            "crane.h",
            "trace_manifest.json",
        ]
        output = capsys.readouterr().out
        assert "schedule: 3 PE(s)" in output
        assert "firing order T1 -> T2 -> T3" in output
        manifest = json.loads((out / "trace_manifest.json").read_text())
        assert manifest["schema"] == "repro.codegen.trace/1"

    def test_sdf_backend_separate_manifest_path(self, crane_xmi, tmp_path):
        out = tmp_path / "src"
        manifest = tmp_path / "thread.json"
        code = main(
            [
                "codegen",
                crane_xmi,
                "--backend",
                "sdf",
                "-o",
                str(out),
                "--trace-manifest",
                str(manifest),
            ]
        )
        assert code == 0
        assert sorted(os.listdir(out)) == ["crane.c", "crane.h"]
        assert json.loads(manifest.read_text())["model"] == "crane"

    def test_unknown_backend(self, crane_xmi, tmp_path, capsys):
        assert (
            main(
                [
                    "codegen",
                    crane_xmi,
                    "--backend",
                    "cobol",
                    "-o",
                    str(tmp_path / "x"),
                ]
            )
            == 2
        )
        assert "unknown backend" in capsys.readouterr().err


class TestAllocateAndExplore:
    def test_allocate_prints_clustering(self, tmp_path, capsys):
        xmi = tmp_path / "s.xmi"
        main(["demo", "synthetic", str(xmi)])
        assert main(["allocate", str(xmi)]) == 0
        output = capsys.readouterr().out
        assert "task graph: 12 threads" in output
        assert "critical path: A -> B -> C -> D -> F -> J" in output

    def test_explore_prints_pareto(self, crane_xmi, capsys):
        assert main(["explore", crane_xmi]) == 0
        output = capsys.readouterr().out
        assert "Pareto front" in output

    def test_explore_with_budget(self, crane_xmi, capsys):
        assert main(["explore", crane_xmi, "--max-cpus", "1"]) == 0


class TestCsvAndPartition:
    def test_simulate_csv_output(self, didactic_xmi, tmp_path, capsys):
        out = tmp_path / "d.mdl"
        main(["synthesize", didactic_xmi, "-o", str(out)])
        csv = tmp_path / "trace.csv"
        assert (
            main(
                [
                    "simulate",
                    str(out),
                    "--steps",
                    "2",
                    "--input",
                    "In1=2,4",
                    "--csv",
                    str(csv),
                ]
            )
            == 0
        )
        lines = csv.read_text().strip().splitlines()
        assert lines[0].startswith("step,Out1")
        assert len(lines) == 3

    def test_partition_command(self, tmp_path, capsys):
        from repro.uml import ModelBuilder, read_xmi, write_xmi

        b = ModelBuilder("mono")
        b.thread("Main")
        b.io_device("Dev")
        sd = b.interaction("main")
        sd.call("Main", "Dev", "getIn", result="v0")
        sd.call("Main", "Main", "f0", args=["v0"], result="v1")
        sd.call("Main", "Main", "f1", args=["v1"], result="v2")
        sd.call("Main", "Dev", "setOut", args=["v2"])
        xmi = tmp_path / "mono.xmi"
        write_xmi(b.build(), str(xmi))
        out = tmp_path / "split.xmi"
        assert (
            main(["partition", str(xmi), "Main", "2", "-o", str(out)]) == 0
        )
        loaded = read_xmi(str(out))
        names = {i.name for i in loaded.all_instances()}
        assert {"Main_p0", "Main_p1"} <= names
        assert "split into" in capsys.readouterr().out

    def test_partition_error_path(self, tmp_path, capsys):
        from repro.uml import ModelBuilder, write_xmi

        b = ModelBuilder("m")
        b.thread("T")
        sd = b.interaction("main")
        sd.call("T", "T", "only")
        xmi = tmp_path / "m.xmi"
        write_xmi(b.build(), str(xmi))
        assert (
            main(["partition", str(xmi), "T", "5", "-o", str(tmp_path / "o.xmi")])
            != 0
        )
        assert "cannot split" in capsys.readouterr().err


class TestRenderCommand:
    def test_render_without_diagrams_fails(self, tmp_path, capsys):
        from repro.uml import Model, write_xmi

        xmi = tmp_path / "empty.xmi"
        write_xmi(Model("empty"), str(xmi))
        assert main(["render", str(xmi), "-o", str(tmp_path / "d")]) == 1
        assert "no diagrams" in capsys.readouterr().err

    def test_render_produces_puml_per_diagram(self, crane_xmi, tmp_path):
        out = tmp_path / "diagrams"
        assert main(["render", crane_xmi, "-o", str(out)]) == 0
        files = sorted(p.name for p in out.iterdir())
        assert "deployment.puml" in files
        assert "sd_T3_control.puml" in files


class TestProcessConventions:
    def test_argparse_errors_return_2_instead_of_exiting(self, capsys):
        # main() must stay embeddable: argparse failures become return
        # codes, never SystemExit escaping to the caller.
        assert main(["serve", "--port", "not-a-number"]) == 2
        assert "invalid int value" in capsys.readouterr().err
        assert main(["no-such-command"]) == 2

    def test_keyboard_interrupt_exits_130(
        self, didactic_xmi, capsys, monkeypatch
    ):
        import repro.cli as cli_module

        def interrupt(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_module, "_cmd_validate", interrupt)
        assert main(["validate", didactic_xmi]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "Traceback" not in err
