"""Unit tests for activity diagrams and their lowering (repro.uml.activity)."""

import pytest

from repro.uml import (
    ActivityEdge,
    Activity,
    ActivityNode,
    ActivityNodeKind,
    CallAction,
    InstanceSpecification,
    Model,
    ObjectNode,
    interaction_from_activity,
)
from repro.uml.activity import ActivityError
from repro.uml.stereotypes import SA_SCHED_RES


def _thread_instance(name: str) -> InstanceSpecification:
    inst = InstanceSpecification(name)
    inst.apply_stereotype(SA_SCHED_RES)
    return inst


def _linear_activity():
    performer = _thread_instance("T1")
    target = InstanceSpecification("Obj")
    activity = Activity("behaviour", performer=performer)
    a = activity.add_node(CallAction("read", target, "getSample", result="x"))
    b = activity.add_node(
        CallAction("proc", target, "process", arguments=["x"], result="y")
    )
    c = activity.add_node(CallAction("write", target, "setOut", arguments=["y"]))
    activity.add_edge(ActivityEdge(a, b))
    activity.add_edge(ActivityEdge(b, c))
    return activity, performer


class TestActivityStructure:
    def test_duplicate_node_rejected(self):
        activity = Activity("a")
        activity.add_node(ActivityNode("n"))
        with pytest.raises(ActivityError):
            activity.add_node(ActivityNode("n"))

    def test_edge_with_foreign_node_rejected(self):
        activity = Activity("a")
        n1 = activity.add_node(ActivityNode("n1"))
        stray = ActivityNode("stray")
        with pytest.raises(ActivityError):
            activity.add_edge(ActivityEdge(n1, stray))

    def test_object_flow_detection(self):
        activity = Activity("a")
        action = activity.add_node(ActivityNode("act"))
        buffer = activity.add_node(ObjectNode("buf"))
        edge = activity.add_edge(ActivityEdge(action, buffer))
        assert edge.is_object_flow

    def test_actions_in_order_is_topological(self):
        activity, _ = _linear_activity()
        names = [a.name for a in activity.actions_in_order()]
        assert names == ["read", "proc", "write"]

    def test_cyclic_control_flow_rejected(self):
        activity = Activity("a")
        n1 = activity.add_node(ActivityNode("n1"))
        n2 = activity.add_node(ActivityNode("n2"))
        activity.add_edge(ActivityEdge(n1, n2))
        activity.add_edge(ActivityEdge(n2, n1))
        with pytest.raises(ActivityError, match="cyclic"):
            activity.actions_in_order()


class TestLowering:
    def test_lowering_produces_equivalent_interaction(self):
        activity, performer = _linear_activity()
        interaction = interaction_from_activity(activity)
        messages = interaction.messages()
        assert [m.operation for m in messages] == [
            "getSample",
            "process",
            "setOut",
        ]
        assert messages[0].result == "x"
        assert messages[1].variables_read() == ["x"]
        assert all(m.sender.instance is performer for m in messages)

    def test_lowering_without_performer_rejected(self):
        activity = Activity("orphan")
        with pytest.raises(ActivityError, match="performer"):
            interaction_from_activity(activity)

    def test_untargeted_action_becomes_self_message(self):
        performer = _thread_instance("T1")
        activity = Activity("a", performer=performer)
        activity.add_node(CallAction("local", operation="compute", result="r"))
        interaction = interaction_from_activity(activity)
        message = interaction.messages()[0]
        assert message.sender is message.receiver

    def test_lowered_activity_feeds_the_mapping(self):
        """The paper's future-work path: activity → interaction → CAAM."""
        from repro.core import synthesize
        from repro.uml import DeploymentPlan

        performer = _thread_instance("T1")
        model = Model("from_activity")
        model.add(performer)
        activity = Activity("beh", performer=performer)
        a = activity.add_node(CallAction("calc", operation="calc", result="y"))
        model.add_activity(activity)
        model.add_interaction(interaction_from_activity(activity))
        plan = DeploymentPlan.from_mapping({"T1": "CPU1"})
        result = synthesize(model, plan)
        assert result.caam.thread("T1") is not None
        assert result.summary.sfunctions == 1
