"""Unit tests for UML validation (repro.uml.validate)."""

import pytest

from repro.uml import (
    ModelBuilder,
    ValidationError,
    check_model,
    validate_model,
)


def _base_builder():
    b = ModelBuilder("m")
    b.passive_class("C").op("f", inputs=["x:int"], returns="int")
    b.thread("T1")
    b.thread("T2")
    b.instance("Obj", "C")
    b.io_device("Dev")
    return b


class TestCleanModels:
    def test_valid_model_has_no_issues(self):
        b = _base_builder()
        sd = b.interaction("main")
        sd.call("T1", "Obj", "f", args=["x"], result="r")
        # x has no producer -> warning, not error
        issues = validate_model(b.build())
        assert all(i.severity == "warning" for i in issues)

    def test_check_model_passes_on_warnings_only(self):
        b = _base_builder()
        sd = b.interaction("main")
        sd.call("T1", "Obj", "f", args=["x"], result="r")
        check_model(b.build())  # must not raise


class TestMessageChecks:
    def test_unknown_operation_is_error(self):
        b = _base_builder()
        sd = b.interaction("main")
        sd.call("T1", "Obj", "missing_op")
        issues = validate_model(b.build())
        assert any(
            i.severity == "error" and "no operation" in i.message
            for i in issues
        )
        with pytest.raises(ValidationError):
            check_model(b.build())

    def test_argument_count_mismatch_is_error(self):
        b = _base_builder()
        sd = b.interaction("main")
        sd.call("T1", "Obj", "f", args=["a", "b"])  # f takes one input
        issues = validate_model(b.build())
        assert any("input argument" in i.message for i in issues)

    def test_untyped_receiver_is_allowed(self):
        b = _base_builder()
        sd = b.interaction("main")
        sd.call("T1", "T2", "setX", args=[1])
        assert not [
            i for i in validate_model(b.build()) if i.severity == "error"
        ]

    def test_platform_calls_are_allowed(self):
        b = _base_builder()
        sd = b.interaction("main")
        sd.call("T1", "Platform", "mult", args=[1, 2], result="r")
        assert not [
            i for i in validate_model(b.build()) if i.severity == "error"
        ]

    def test_setget_on_passive_object_warns(self):
        b = _base_builder()
        b.instance("Plain")
        sd = b.interaction("main")
        sd.call("T1", "Plain", "setThing", args=[1])
        issues = validate_model(b.build())
        assert any("no channel will be inferred" in i.message for i in issues)


class TestDataflowChecks:
    def test_read_before_producer_warns(self):
        b = _base_builder()
        sd = b.interaction("main")
        sd.call("T1", "Obj", "f", args=["ghost"], result="r")
        issues = validate_model(b.build())
        assert any(
            i.severity == "warning" and "ghost" in i.message for i in issues
        )

    def test_produced_then_consumed_is_clean(self):
        b = _base_builder()
        sd = b.interaction("main")
        sd.call("T1", "Dev", "getSample", result="x")
        sd.call("T1", "Obj", "f", args=["x"], result="r")
        assert validate_model(b.build()) == []


class TestStereotypeChecks:
    def test_bogus_stereotype_is_error(self):
        b = _base_builder()
        b.model.instance("T1").apply_stereotype("NotAProfile")
        issues = validate_model(b.build())
        assert any("unknown stereotype" in i.message for i in issues)


class TestDeploymentChecks:
    def test_undeployed_thread_with_require_deployment(self):
        b = _base_builder()
        b.processor("CPU1", threads=["T1"])  # T2 not deployed
        sd = b.interaction("main")
        sd.call("T1", "T2", "setX", args=[1])
        issues = validate_model(b.build(), require_deployment=True)
        assert any(
            "T2" in i.message and "not deployed" in i.message for i in issues
        )

    def test_fully_deployed_model_passes(self):
        b = _base_builder()
        b.processor("CPU1", threads=["T1", "T2"])
        sd = b.interaction("main")
        sd.call("T1", "T2", "setX", args=[1])
        issues = validate_model(b.build(), require_deployment=True)
        assert not [i for i in issues if "not deployed" in i.message]


class TestBehaviorReferences:
    def test_missing_behaviour_interaction_warns(self):
        b = ModelBuilder("m")
        b.passive_class("C").op("f", returns="int").body("ghost_beh", "uml")
        b.thread("T1")
        b.instance("Obj", "C")
        sd = b.interaction("main")
        sd.call("T1", "Obj", "f", result="y")
        issues = validate_model(b.build())
        assert any(
            "behaviour interaction 'ghost_beh' not found" in i.message
            for i in issues
        )

    def test_existing_behaviour_interaction_is_clean(self):
        b = ModelBuilder("m")
        b.passive_class("C").op("f", inputs=["x:int"], returns="int").body(
            "beh", "uml"
        )
        b.thread("T1")
        b.instance("Obj", "C")
        sd = b.interaction("main")
        sd.call("T1", "T1", "src", result="x")
        sd.call("T1", "Obj", "f", args=["x"], result="y")
        beh = b.interaction("beh")
        beh.call("Obj", "Platform", "gain", args=["x", 2.0], result="result")
        issues = validate_model(b.build())
        assert not any("behaviour interaction" in i.message for i in issues)

    def test_c_bodies_not_flagged(self):
        b = ModelBuilder("m")
        b.passive_class("C").op("f").body("return 1;", "c")
        issues = validate_model(b.build())
        assert not any("behaviour interaction" in i.message for i in issues)
