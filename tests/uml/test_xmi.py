"""Unit + property tests for XMI import/export (repro.uml.xmi)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uml import (
    ModelBuilder,
    Pseudostate,
    Region,
    State,
    StateMachine,
    Transition,
    XmiError,
    from_xmi_string,
    to_xmi_string,
)


def _full_model():
    b = ModelBuilder("full")
    b.passive_class("C").op("f", inputs=["x:int"], returns="int").body(
        "return x;", "c"
    ).done().attr("k:double", default=1.5)
    b.thread("T1")
    b.thread("T2")
    b.instance("Obj", "C")
    b.io_device("Dev")
    b.processor("CPU1", threads=["T1"])
    b.processor("CPU2", threads=["T2"])
    b.bus("CPU1", "CPU2")
    sd = b.interaction("main")
    sd.call("T1", "Dev", "getSample", result="x")
    sd.call("T1", "Obj", "f", args=["x"], result="y")
    loop = sd.loop(iterations=3, guard="i < 3")
    loop.call("T1", "T2", "setValue", args=["y"])
    machine = StateMachine("sm")
    region = machine.main_region()
    init = region.add_vertex(Pseudostate())
    s1 = region.add_vertex(State("S1", entry="x = 0"))
    region.add_transition(Transition(init, s1))
    region.add_transition(Transition(s1, s1, trigger="tick", effect="x = x + 1"))
    b.model.add_state_machine(machine)
    return b.build()


class TestRoundTrip:
    def test_structure_survives(self):
        model = _full_model()
        text = to_xmi_string(model)
        loaded = from_xmi_string(text)
        assert loaded.name == model.name
        assert {c.name for c in loaded.all_classes()} == {"C"}
        assert {i.name for i in loaded.all_instances()} == {
            "T1",
            "T2",
            "Obj",
            "Dev",
        }
        assert [n.name for n in loaded.nodes] == ["CPU1", "CPU2"]

    def test_operation_details_survive(self):
        loaded = from_xmi_string(to_xmi_string(_full_model()))
        op = loaded.class_named("C").operation("f")
        assert op.body == "return x;"
        assert [p.name for p in op.inputs()] == ["x"]
        assert op.return_parameter is not None
        assert op.inputs()[0].type.name == "int"

    def test_property_default_survives(self):
        loaded = from_xmi_string(to_xmi_string(_full_model()))
        prop = loaded.class_named("C").properties[0]
        assert prop.default == 1.5

    def test_messages_and_fragments_survive(self):
        loaded = from_xmi_string(to_xmi_string(_full_model()))
        interaction = loaded.interaction("main")
        messages = interaction.messages()
        assert [m.operation for m in messages] == ["getSample", "f", "setValue"]
        assert messages[1].result == "y"
        assert messages[1].variables_read() == ["x"]
        looped = messages[2]
        assert interaction.message_multiplicity(looped) == 3

    def test_stereotypes_survive(self):
        loaded = from_xmi_string(to_xmi_string(_full_model()))
        assert loaded.instance("T1").has_stereotype("SASchedRes")
        assert loaded.instance("Dev").has_stereotype("IO")
        assert loaded.nodes[0].has_stereotype("SAengine")

    def test_deployment_survives(self):
        from repro.uml import DeploymentPlan

        loaded = from_xmi_string(to_xmi_string(_full_model()))
        plan = DeploymentPlan.from_nodes(loaded.nodes)
        assert plan.as_mapping() == {"T1": "CPU1", "T2": "CPU2"}

    def test_state_machine_survives(self):
        loaded = from_xmi_string(to_xmi_string(_full_model()))
        machine = loaded.state_machines[0]
        assert {s.name for s in machine.all_states()} == {"S1"}
        transitions = machine.all_transitions()
        assert any(t.trigger == "tick" for t in transitions)

    def test_double_round_trip_is_stable(self):
        once = to_xmi_string(_full_model())
        twice = to_xmi_string(from_xmi_string(once))
        assert once == twice

    def test_lifeline_instances_relinked(self):
        loaded = from_xmi_string(to_xmi_string(_full_model()))
        lifeline = loaded.interaction("main").lifeline("T1")
        assert lifeline.instance is loaded.instance("T1")
        assert lifeline.is_thread


class TestErrors:
    def test_invalid_xml_rejected(self):
        with pytest.raises(XmiError, match="invalid XML"):
            from_xmi_string("<not-closed")

    def test_wrong_root_rejected(self):
        with pytest.raises(XmiError, match="unexpected root"):
            from_xmi_string("<foo/>")

    def test_missing_model_rejected(self):
        with pytest.raises(XmiError, match="no uml:Model"):
            from_xmi_string(
                '<xmi:XMI xmlns:xmi="http://www.omg.org/spec/XMI/20131001"/>'
            )


_names = st.from_regex(r"[A-Z][a-z]{1,6}", fullmatch=True)


@st.composite
def _random_models(draw):
    b = ModelBuilder(draw(_names))
    thread_names = draw(
        st.lists(_names, min_size=1, max_size=4, unique=True)
    )
    for name in thread_names:
        b.thread("Th" + name)
    device = draw(st.booleans())
    if device:
        b.io_device("Dev")
    sd = b.interaction("main")
    message_count = draw(st.integers(min_value=0, max_value=6))
    for i in range(message_count):
        sender = "Th" + draw(st.sampled_from(thread_names))
        kind = draw(st.sampled_from(["self", "send", "io"]))
        if kind == "self":
            sd.call(sender, sender, f"op{i}", result=f"v{i}")
        elif kind == "send":
            receiver = "Th" + draw(st.sampled_from(thread_names))
            if receiver == sender:
                sd.call(sender, sender, f"op{i}", result=f"v{i}")
            else:
                sd.call(sender, receiver, f"setC{i}", args=[f"v{i}"])
        elif device:
            sd.call(sender, "Dev", f"getS{i}", result=f"v{i}")
        else:
            sd.call(sender, sender, f"op{i}", result=f"v{i}")
    return b.build()


class TestRoundTripProperties:
    @given(_random_models())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_preserves_census(self, model):
        loaded = from_xmi_string(to_xmi_string(model))
        assert {i.name for i in loaded.all_instances()} == {
            i.name for i in model.all_instances()
        }
        original = [
            (m.operation, m.sender.name, m.receiver.name, m.result)
            for m in model.interactions[0].messages()
        ]
        reloaded = [
            (m.operation, m.sender.name, m.receiver.name, m.result)
            for m in loaded.interactions[0].messages()
        ]
        assert original == reloaded

    @given(_random_models())
    @settings(max_examples=20, deadline=None)
    def test_round_trip_idempotent(self, model):
        once = to_xmi_string(model)
        assert to_xmi_string(from_xmi_string(once)) == once


class TestActivityRoundTrip:
    def test_activity_survives(self):
        from repro.uml import (
            Activity,
            ActivityEdge,
            CallAction,
            InstanceSpecification,
            Model,
            ObjectNode,
        )

        model = Model("m")
        performer = model.add(InstanceSpecification("T1"))
        performer.apply_stereotype("SASchedRes")
        target = model.add(InstanceSpecification("Obj"))
        activity = Activity("beh", performer=performer)
        model.add_activity(activity)
        read = activity.add_node(
            CallAction("read", target, "getX", result="x")
        )
        buffer = activity.add_node(ObjectNode("buf"))
        use = activity.add_node(
            CallAction("use", target, "consume", arguments=["x"])
        )
        activity.add_edge(ActivityEdge(read, buffer))
        activity.add_edge(ActivityEdge(buffer, use, guard="x > 0"))

        loaded = from_xmi_string(to_xmi_string(model))
        acts = loaded.activities
        assert len(acts) == 1
        loaded_activity = acts[0]
        assert loaded_activity.performer.name == "T1"
        names = [n.name for n in loaded_activity.nodes]
        assert names == ["read", "buf", "use"]
        read2 = loaded_activity.node("read")
        assert read2.operation == "getX" and read2.result == "x"
        assert read2.target.name == "Obj"
        assert loaded_activity.edges[1].guard == "x > 0"

    def test_lowered_loaded_activity_still_maps(self):
        from repro.core import synthesize
        from repro.uml import (
            Activity,
            CallAction,
            DeploymentPlan,
            InstanceSpecification,
            Model,
            interaction_from_activity,
        )

        model = Model("m")
        performer = model.add(InstanceSpecification("T1"))
        performer.apply_stereotype("SASchedRes")
        activity = Activity("beh", performer=performer)
        model.add_activity(activity)
        activity.add_node(CallAction("calc", operation="calc", result="y"))

        loaded = from_xmi_string(to_xmi_string(model))
        loaded.add_interaction(
            interaction_from_activity(loaded.activities[0])
        )
        result = synthesize(
            loaded, DeploymentPlan.from_mapping({"T1": "CPU1"})
        )
        assert result.summary.sfunctions == 1
