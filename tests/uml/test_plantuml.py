"""Unit tests for PlantUML export (repro.uml.plantuml)."""

import pytest

from repro.uml import (
    ModelBuilder,
    Pseudostate,
    Region,
    State,
    StateMachine,
    Transition,
    deployment_to_plantuml,
    interaction_to_plantuml,
    model_to_plantuml,
    state_machine_to_plantuml,
)
from repro.uml.statemachine import FinalState


def _model():
    b = ModelBuilder("sys")
    b.thread("T1")
    b.thread("T2")
    b.instance("Obj")
    b.io_device("Dev")
    b.processor("CPU1", threads=["T1"])
    b.processor("CPU2", threads=["T2"])
    b.bus("CPU1", "CPU2")
    sd = b.interaction("main")
    sd.call("T1", "Dev", "getIn", result="x")
    sd.call("T1", "Platform", "gain", args=["x", 2.0], result="y")
    loop = sd.loop(iterations=3)
    loop.call("T1", "T2", "setValue", args=["y"])
    then_branch, else_branch = sd.alt("y", "else")
    then_branch.call("T2", "Obj", "hot")
    else_branch.call("T2", "Obj", "cold")
    return b.build()


class TestSequenceExport:
    def test_roles_stereotyped(self):
        text = interaction_to_plantuml(_model().interaction("main"))
        assert text.startswith("@startuml")
        assert text.rstrip().endswith("@enduml")
        assert 'participant "T1" as T1 <<SASchedRes>>' in text
        assert 'entity "Dev" as Dev <<IO>>' in text
        assert 'collections "Platform"' in text

    def test_messages_with_assignment_and_args(self):
        text = interaction_to_plantuml(_model().interaction("main"))
        assert "T1 -> Dev: x = getIn()" in text
        assert "T1 -> Platform: y = gain(x, 2.0)" in text

    def test_loop_fragment_rendered(self):
        text = interaction_to_plantuml(_model().interaction("main"))
        assert "loop 3x" in text
        assert text.count("end") >= 2  # loop + alt

    def test_alt_fragment_rendered(self):
        text = interaction_to_plantuml(_model().interaction("main"))
        assert "alt y" in text
        assert "else else" in text or "else" in text


class TestDeploymentExport:
    def test_nodes_threads_and_bus(self):
        text = deployment_to_plantuml(_model())
        assert 'node "CPU1" <<SAengine>>' in text
        assert 'artifact "T1"' in text
        assert '"CPU1" -- "CPU2" : bus' in text


class TestStateMachineExport:
    def test_states_and_transitions(self):
        machine = StateMachine("sm")
        region = machine.main_region()
        init = region.add_vertex(Pseudostate())
        a = region.add_vertex(State("a", entry="x = 1"))
        b = region.add_vertex(State("b"))
        end = region.add_vertex(FinalState("end"))
        region.add_transition(Transition(init, a))
        region.add_transition(Transition(a, b, trigger="go", guard="x > 0"))
        region.add_transition(Transition(b, end, trigger="stop"))
        text = state_machine_to_plantuml(machine)
        assert "[*] --> a" in text
        assert "a : entry / x = 1" in text
        assert "a --> b : go [x > 0]" in text
        assert "b --> [*] : stop" in text

    def test_composite_states_nested(self):
        machine = StateMachine("sm")
        region = machine.main_region()
        init = region.add_vertex(Pseudostate())
        comp = region.add_vertex(State("comp"))
        inner = comp.add_region(Region("inner"))
        iinit = inner.add_vertex(Pseudostate())
        leaf = inner.add_vertex(State("leaf"))
        inner.add_transition(Transition(iinit, leaf))
        region.add_transition(Transition(init, comp))
        text = state_machine_to_plantuml(machine)
        assert 'state "comp" as comp {' in text
        assert 'state "leaf" as leaf' in text


class TestModelBundle:
    def test_one_file_per_diagram(self):
        model = _model()
        machine = StateMachine("modes")
        region = machine.main_region()
        init = region.add_vertex(Pseudostate())
        only = region.add_vertex(State("only"))
        region.add_transition(Transition(init, only))
        model.add_state_machine(machine)
        artifacts = model_to_plantuml(model)
        assert set(artifacts) == {
            "sd_main.puml",
            "deployment.puml",
            "sm_modes.puml",
        }
        assert all(text.startswith("@startuml") for text in artifacts.values())

    def test_cli_render(self, tmp_path):
        from repro.cli import main
        from repro.uml import write_xmi

        xmi = tmp_path / "m.xmi"
        write_xmi(_model(), str(xmi))
        out = tmp_path / "diagrams"
        assert main(["render", str(xmi), "-o", str(out)]) == 0
        assert (out / "sd_main.puml").exists()
        assert (out / "deployment.puml").exists()
