"""uml.validate against generator-produced pathological models.

The contract under test: every diagnostic *names the offending element*
(thread, channel, operation, or variable) so a modeller can act on it —
never a generic "model invalid".
"""

import pytest

from repro.uml.builder import ModelBuilder
from repro.uml.validate import check_model, validate_model
from repro.zoo import generate_pathological


def _issues(kind, seed=1):
    return validate_model(generate_pathological(seed, kind))


class TestPathologicalDiagnostics:
    def test_channel_cycle_names_threads_and_channels(self):
        issues = _issues("channel_cycle")
        cyclic = [i for i in issues if "cyclic inter-thread" in i.message]
        assert cyclic, issues
        message = cyclic[0].message
        # The full path, with the channels on each hop.
        assert "A -[ping]-> B" in message
        assert "B -[pong]-> A" in message
        assert cyclic[0].severity == "warning"

    def test_dangling_get_names_channel_and_threads(self):
        issues = _issues("dangling_get")
        dangling = [i for i in issues if "no matching set" in i.message]
        assert dangling, issues
        message = dangling[0].message
        assert "'level'" in message
        assert "getLevel" in message
        assert "A" in message and "B" in message

    def test_unknown_operation_names_classifier_and_operation(self):
        issues = _issues("unknown_operation")
        errors = [i for i in issues if i.severity == "error"]
        assert errors, issues
        assert "'Calc'" in errors[0].message
        assert "'mul3'" in errors[0].message

    def test_bad_arity_names_operation_and_counts(self):
        issues = _issues("bad_arity")
        errors = [i for i in issues if i.severity == "error"]
        assert errors, issues
        assert "'combine'" in errors[0].message
        assert "2" in errors[0].message and "1" in errors[0].message

    def test_read_before_produce_names_variable_and_message(self):
        issues = _issues("read_before_produce")
        warnings = [i for i in issues if "before any producer" in i.message]
        assert warnings, issues
        assert "'ghost'" in warnings[0].message
        # The message end-points, not just the operation name.
        assert "T1->T1.use" in warnings[0].message

    @pytest.mark.parametrize(
        "kind", ["channel_cycle", "dangling_get", "read_before_produce"]
    )
    def test_warning_kinds_do_not_raise(self, kind):
        check_model(generate_pathological(1, kind))  # must not raise


class TestChannelChecksPrecision:
    def test_matched_set_get_is_clean(self):
        b = ModelBuilder("ok")
        b.thread("P")
        b.thread("C")
        sd = b.interaction("main")
        sd.call("P", "P", "mk", result="x")
        sd.call("P", "C", "setData", args=["x"])
        sd.call("C", "P", "getData", result="y")
        issues = validate_model(b.build())
        assert not [i for i in issues if "no matching set" in i.message]

    def test_set_across_interactions_satisfies_get(self):
        b = ModelBuilder("cross")
        b.thread("P")
        b.thread("C")
        one = b.interaction("produce")
        one.call("P", "P", "mk", result="x")
        one.call("P", "C", "setData", args=["x"])
        two = b.interaction("consume")
        two.call("C", "P", "getData", result="y")
        issues = validate_model(b.build())
        assert not [i for i in issues if "no matching set" in i.message]

    def test_self_loop_channel_is_not_a_cycle(self):
        # A thread talking to itself is a local variable, not a channel.
        b = ModelBuilder("selfie")
        b.thread("T")
        sd = b.interaction("main")
        sd.call("T", "T", "setX", args=[1.0])
        issues = validate_model(b.build())
        assert not [i for i in issues if "cyclic" in i.message]

    def test_three_thread_cycle_reported_once(self):
        b = ModelBuilder("ring")
        for name in ("A", "B", "C"):
            b.thread(name)
        sd = b.interaction("main")
        sd.call("A", "A", "mk", result="x")
        sd.call("A", "B", "setAb", args=["x"])
        sd.call("B", "B", "fb", result="y")
        sd.call("B", "C", "setBc", args=["y"])
        sd.call("C", "C", "fc", result="z")
        sd.call("C", "A", "setCa", args=["z"])
        issues = [
            i
            for i in validate_model(b.build())
            if "cyclic inter-thread" in i.message
        ]
        assert len(issues) == 1
        assert "A -[ab]-> B" in issues[0].message
        assert "B -[bc]-> C" in issues[0].message
        assert "C -[ca]-> A" in issues[0].message
