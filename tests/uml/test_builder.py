"""Unit tests for the fluent model builder (repro.uml.builder)."""

import pytest

from repro.uml import (
    BuilderError,
    ModelBuilder,
    ParameterDirection,
    PLATFORM_OBJECT,
)


class TestClasses:
    def test_passive_class_with_operation(self):
        b = ModelBuilder("m")
        b.passive_class("C").op("f", inputs=["x:int"], returns="int")
        cls = b.model.class_named("C")
        op = cls.operation("f")
        assert not cls.is_active
        assert [p.name for p in op.inputs()] == ["x"]
        assert op.return_parameter.type.name == "int"

    def test_active_class(self):
        b = ModelBuilder("m")
        b.active_class("T")
        assert b.model.class_named("T").is_active

    def test_duplicate_class_rejected(self):
        b = ModelBuilder("m")
        b.passive_class("C")
        with pytest.raises(BuilderError):
            b.passive_class("C")

    def test_operation_body(self):
        b = ModelBuilder("m")
        b.passive_class("C").op("f").body("return 1;", "c")
        assert b.model.class_named("C").operation("f").body == "return 1;"

    def test_attributes(self):
        b = ModelBuilder("m")
        b.passive_class("C").attr("gain:double", default=2.0)
        prop = b.model.class_named("C").properties[0]
        assert prop.name == "gain" and prop.default == 2.0

    def test_class_types_resolve_before_primitives(self):
        b = ModelBuilder("m")
        b.passive_class("Payload")
        b.passive_class("C").op("f", inputs=["p:Payload"])
        param = b.model.class_named("C").operation("f").inputs()[0]
        assert param.type is b.model.class_named("Payload")

    def test_out_parameters(self):
        b = ModelBuilder("m")
        b.passive_class("C").op("f", inputs=["a:int"], outputs=["b:int"])
        op = b.model.class_named("C").operation("f")
        assert op.outputs()[0].direction is ParameterDirection.OUT


class TestInstancesAndDeployment:
    def test_thread_gets_stereotype(self):
        b = ModelBuilder("m")
        t = b.thread("T1")
        assert t.has_stereotype("SASchedRes")

    def test_io_device_gets_stereotype(self):
        b = ModelBuilder("m")
        d = b.io_device("Dev")
        assert d.has_stereotype("IO")

    def test_duplicate_instance_rejected(self):
        b = ModelBuilder("m")
        b.thread("T1")
        with pytest.raises(BuilderError):
            b.instance("T1")

    def test_instance_with_unknown_classifier_rejected(self):
        b = ModelBuilder("m")
        with pytest.raises(BuilderError):
            b.instance("o", "Missing")

    def test_processor_deploys_threads(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.thread("T2")
        node = b.processor("CPU1", threads=["T1", "T2"])
        assert node.is_processor
        assert [t.name for t in node.threads()] == ["T1", "T2"]

    def test_duplicate_processor_rejected(self):
        b = ModelBuilder("m")
        b.processor("CPU1")
        with pytest.raises(BuilderError):
            b.processor("CPU1")

    def test_bus_connects_processors(self):
        b = ModelBuilder("m")
        b.processor("CPU1")
        b.processor("CPU2")
        path = b.bus("CPU1", "CPU2")
        assert path.ends[0].name == "CPU1"
        assert path.ends[1].name == "CPU2"


class TestInteractions:
    def test_call_creates_lifelines_on_demand(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.instance("Obj")
        sd = b.interaction("main")
        msg = sd.call("T1", "Obj", "f", args=["x", 3], result="r")
        assert msg.sender.name == "T1"
        assert msg.arguments[0].is_variable
        assert not msg.arguments[1].is_variable
        assert msg.result == "r"

    def test_undeclared_participant_rejected(self):
        b = ModelBuilder("m")
        b.thread("T1")
        sd = b.interaction("main")
        with pytest.raises(BuilderError):
            sd.call("T1", "Ghost", "f")

    def test_platform_is_implicit(self):
        b = ModelBuilder("m")
        b.thread("T1")
        sd = b.interaction("main")
        msg = sd.call("T1", PLATFORM_OBJECT, "mult", args=["a", "b"])
        assert msg.receiver.instance is b.platform()

    def test_loop_fragment(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.thread("T2")
        sd = b.interaction("main")
        loop = sd.loop(iterations=7)
        msg = loop.call("T1", "T2", "setX", args=["v"])
        interaction = b.model.interaction("main")
        assert interaction.message_multiplicity(msg) == 7

    def test_same_instance_shared_across_interactions(self):
        b = ModelBuilder("m")
        b.thread("T1")
        sd1 = b.interaction("a")
        sd2 = b.interaction("b")
        m1 = sd1.call("T1", "T1", "f")
        m2 = sd2.call("T1", "T1", "g")
        assert m1.sender.instance is m2.sender.instance


class TestAltOptBuilders:
    def test_alt_creates_one_operand_per_guard(self):
        from repro.uml import InteractionOperator

        b = ModelBuilder("m")
        b.thread("T1")
        b.instance("Obj")
        sd = b.interaction("main")
        branches = sd.alt("cond", "else")
        assert len(branches) == 2
        fragment = b.model.interaction("main").fragments[0]
        assert fragment.operator is InteractionOperator.ALT
        assert [op.guard for op in fragment.operands] == ["cond", "else"]

    def test_alt_needs_a_guard(self):
        b = ModelBuilder("m")
        sd = b.interaction("main")
        with pytest.raises(BuilderError):
            sd.alt()

    def test_opt_single_operand(self):
        from repro.uml import InteractionOperator

        b = ModelBuilder("m")
        b.thread("T1")
        b.instance("Obj")
        sd = b.interaction("main")
        branch = sd.opt("cond")
        branch.call("T1", "Obj", "maybe")
        fragment = b.model.interaction("main").fragments[0]
        assert fragment.operator is InteractionOperator.OPT
        assert len(fragment.operands) == 1
        assert fragment.operands[0].fragments[0].operation == "maybe"

    def test_alt_messages_flattened_into_interaction(self):
        b = ModelBuilder("m")
        b.thread("T1")
        b.instance("Obj")
        sd = b.interaction("main")
        then_branch, else_branch = sd.alt("c", "else")
        then_branch.call("T1", "Obj", "yes")
        else_branch.call("T1", "Obj", "no")
        ops = [m.operation for m in b.model.interaction("main").messages()]
        assert ops == ["yes", "no"]


class TestParBuilder:
    def test_par_operands(self):
        from repro.uml import InteractionOperator

        b = ModelBuilder("m")
        b.thread("T1")
        b.instance("Obj")
        sd = b.interaction("main")
        left, right = sd.par(2)
        left.call("T1", "Obj", "a")
        right.call("T1", "Obj", "b")
        fragment = b.model.interaction("main").fragments[0]
        assert fragment.operator is InteractionOperator.PAR
        assert len(fragment.operands) == 2

    def test_par_needs_operands(self):
        b = ModelBuilder("m")
        sd = b.interaction("main")
        with pytest.raises(BuilderError):
            sd.par(0)

    def test_par_messages_map_like_sequential_ones(self):
        from repro.core import map_model
        from repro.uml import DeploymentPlan

        b = ModelBuilder("m")
        b.thread("T1")
        b.instance("Obj")
        sd = b.interaction("main")
        left, right = sd.par(2)
        left.call("T1", "Obj", "a", result="x")
        right.call("T1", "Obj", "bb", result="y")
        result = map_model(
            b.build(), DeploymentPlan.from_mapping({"T1": "CPU1"})
        )
        system = result.caam.thread("T1").system
        assert system.has_block("a") and system.has_block("bb")
