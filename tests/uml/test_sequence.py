"""Unit tests for interactions (repro.uml.sequence)."""

import pytest

from repro.uml import (
    Argument,
    Class,
    CombinedFragment,
    InstanceSpecification,
    Interaction,
    InteractionOperand,
    InteractionOperator,
    Lifeline,
    Message,
    Model,
    Operation,
    Parameter,
    ParameterDirection,
    SequenceError,
    UnknownElementError,
    dataflow_pairs,
)
from repro.uml.stereotypes import IO, SA_SCHED_RES


def _thread(name: str) -> Lifeline:
    instance = InstanceSpecification(name)
    instance.apply_stereotype(SA_SCHED_RES)
    return Lifeline(name, instance=instance)


def _passive(name: str) -> Lifeline:
    return Lifeline(name, instance=InstanceSpecification(name))


class TestArgument:
    def test_identifier_string_is_variable(self):
        assert Argument("x").is_variable
        assert Argument("x").variable == "x"

    def test_numbers_are_literals(self):
        assert not Argument(42).is_variable
        assert Argument(42).variable is None

    def test_non_identifier_strings_are_literals(self):
        assert not Argument("3x+1").is_variable

    def test_explicit_override(self):
        assert not Argument("x", is_variable=False).is_variable

    def test_equality_and_hash(self):
        assert Argument("x") == Argument("x")
        assert Argument("x") != Argument("x", is_variable=False)
        assert len({Argument("x"), Argument("x")}) == 1


class TestMessageClassification:
    def test_set_get_prefixes(self):
        t1, t2 = _thread("T1"), _thread("T2")
        send = Message(t1, t2, "setValue", arguments=["v"])
        recv = Message(t1, t2, "getValue", result="v")
        assert send.is_send and not send.is_receive
        assert recv.is_receive and not recv.is_send

    def test_channel_name_strips_prefix_and_lowercases(self):
        t1, t2 = _thread("T1"), _thread("T2")
        assert Message(t1, t2, "setValue").channel_name == "value"
        assert Message(t1, t2, "getValue").channel_name == "value"
        assert Message(t1, t2, "set_pos").channel_name == "pos"
        assert Message(t1, t2, "compute").channel_name == "compute"

    def test_bare_set_defaults_channel_to_data(self):
        t1, t2 = _thread("T1"), _thread("T2")
        assert Message(t1, t2, "set").channel_name == "data"

    def test_inter_thread_requires_two_threads(self):
        t1, t2 = _thread("T1"), _thread("T2")
        passive = _passive("Obj")
        assert Message(t1, t2, "setX").is_inter_thread
        assert not Message(t1, passive, "setX").is_inter_thread
        assert not Message(t1, t1, "setX").is_inter_thread

    def test_io_access(self):
        t1 = _thread("T1")
        io_instance = InstanceSpecification("Dev")
        io_instance.apply_stereotype(IO)
        io = Lifeline("Dev", instance=io_instance)
        assert Message(t1, io, "getSample").is_io_access
        assert not Message(t1, _passive("P"), "getSample").is_io_access

    def test_io_via_classifier_stereotype(self):
        cls = Class("Device")
        cls.apply_stereotype(IO)
        lifeline = Lifeline("d", instance=InstanceSpecification("d", cls))
        assert lifeline.is_io

    def test_empty_operation_rejected(self):
        t1, t2 = _thread("T1"), _thread("T2")
        with pytest.raises(SequenceError):
            Message(t1, t2, "")


class TestMessageDataflow:
    def test_variables_read_and_written(self):
        t1, t2 = _thread("T1"), _thread("T2")
        msg = Message(t1, t2, "f", arguments=["a", 3, "b"], result="r")
        assert msg.variables_read() == ["a", "b"]
        assert msg.variables_written() == ["r"]

    def test_data_width_untyped_counts_args_and_result(self):
        t1, t2 = _thread("T1"), _thread("T2")
        assert Message(t1, t2, "f", arguments=["a"], result="r").data_width_bits() == 64
        assert Message(t1, t2, "f").data_width_bits() == 32

    def test_data_width_uses_operation_signature(self):
        model = Model("m")
        cls = model.add(Class("C"))
        op = Operation("f")
        cls.add_operation(op)
        op.add_parameter(
            Parameter("x", model.primitive("double"), ParameterDirection.IN)
        )
        op.add_parameter(
            Parameter("return", model.primitive("double"), ParameterDirection.RETURN)
        )
        inst = model.add(InstanceSpecification("o", cls))
        receiver = Lifeline("o", instance=inst)
        msg = Message(_thread("T1"), receiver, "f", arguments=["v"], result="r")
        assert msg.data_width_bits() == 128  # 64-bit in + 64-bit return


class TestInteraction:
    def _interaction(self):
        interaction = Interaction("sd")
        t1 = interaction.add_lifeline(_thread("T1"))
        t2 = interaction.add_lifeline(_thread("T2"))
        obj = interaction.add_lifeline(_passive("Obj"))
        return interaction, t1, t2, obj

    def test_duplicate_lifeline_rejected(self):
        interaction, t1, _, _ = self._interaction()
        with pytest.raises(SequenceError):
            interaction.add_lifeline(Lifeline("T1"))

    def test_message_ends_must_be_covered(self):
        interaction, t1, _, _ = self._interaction()
        foreign = _thread("T9")
        with pytest.raises(SequenceError):
            interaction.add_message(Message(t1, foreign, "f"))

    def test_messages_in_diagram_order(self):
        interaction, t1, t2, obj = self._interaction()
        interaction.add_message(Message(t1, obj, "a"))
        interaction.add_message(Message(t1, t2, "setB", arguments=["x"]))
        assert [m.operation for m in interaction.messages()] == ["a", "setB"]

    def test_messages_from_and_to(self):
        interaction, t1, t2, obj = self._interaction()
        interaction.add_message(Message(t1, obj, "a"))
        interaction.add_message(Message(t2, obj, "b"))
        assert len(interaction.messages_from(t1)) == 1
        assert len(interaction.messages_to(obj)) == 2

    def test_thread_lifelines_excludes_passive(self):
        interaction, t1, t2, obj = self._interaction()
        assert interaction.thread_lifelines() == [t1, t2]

    def test_lifeline_lookup(self):
        interaction, t1, _, _ = self._interaction()
        assert interaction.lifeline("T1") is t1
        with pytest.raises(UnknownElementError):
            interaction.lifeline("nope")

    def test_lifeline_for_creates_on_demand(self):
        interaction, *_ = self._interaction()
        inst = InstanceSpecification("New")
        lifeline = interaction.lifeline_for(inst)
        assert lifeline.instance is inst
        assert interaction.lifeline_for(inst) is lifeline


class TestCombinedFragments:
    def test_loop_messages_flattened(self):
        interaction = Interaction("sd")
        t1 = interaction.add_lifeline(_thread("T1"))
        t2 = interaction.add_lifeline(_thread("T2"))
        fragment = CombinedFragment(InteractionOperator.LOOP, iterations=5)
        operand = InteractionOperand("i < 5")
        fragment.add_operand(operand)
        msg = Message(t1, t2, "setX", arguments=["v"])
        operand.add(msg)
        interaction.add_fragment(fragment)
        assert msg in interaction.messages()
        assert msg not in interaction.messages(flatten=False)

    def test_message_multiplicity_multiplies_nested_loops(self):
        interaction = Interaction("sd")
        t1 = interaction.add_lifeline(_thread("T1"))
        t2 = interaction.add_lifeline(_thread("T2"))
        outer = CombinedFragment(InteractionOperator.LOOP, iterations=3)
        outer_op = InteractionOperand()
        outer.add_operand(outer_op)
        inner = CombinedFragment(InteractionOperator.LOOP, iterations=4)
        inner_op = InteractionOperand()
        inner.add_operand(inner_op)
        msg = Message(t1, t2, "setX", arguments=["v"])
        inner_op.add(msg)
        outer_op.add(inner)
        interaction.add_fragment(outer)
        assert interaction.message_multiplicity(msg) == 12

    def test_plain_message_multiplicity_is_one(self):
        interaction = Interaction("sd")
        t1 = interaction.add_lifeline(_thread("T1"))
        t2 = interaction.add_lifeline(_thread("T2"))
        msg = interaction.add_message(Message(t1, t2, "setX"))
        assert interaction.message_multiplicity(msg) == 1

    def test_fragment_checks_lifeline_coverage(self):
        interaction = Interaction("sd")
        t1 = interaction.add_lifeline(_thread("T1"))
        foreign = _thread("T9")
        fragment = CombinedFragment(InteractionOperator.LOOP)
        operand = InteractionOperand()
        fragment.add_operand(operand)
        operand.add(Message(t1, foreign, "setX"))
        with pytest.raises(SequenceError):
            interaction.add_fragment(fragment)


class TestDataflowPairs:
    def test_index_by_variable(self):
        interaction = Interaction("sd")
        t1 = interaction.add_lifeline(_thread("T1"))
        obj = interaction.add_lifeline(_passive("Obj"))
        m1 = interaction.add_message(Message(t1, obj, "f", result="x"))
        m2 = interaction.add_message(Message(t1, obj, "g", arguments=["x"]))
        index = dataflow_pairs([interaction])
        assert index["x"] == [m1, m2]
