"""Unit tests for UML state machines (repro.uml.statemachine)."""

import pytest

from repro.uml import (
    FinalState,
    Model,
    Pseudostate,
    PseudostateKind,
    Region,
    State,
    StateMachine,
    StateMachineError,
    Transition,
    UnknownElementError,
)


def _simple_machine():
    machine = StateMachine("sm")
    region = machine.main_region()
    initial = region.add_vertex(Pseudostate())
    a = region.add_vertex(State("A", entry="x = 1"))
    b = region.add_vertex(State("B"))
    final = region.add_vertex(FinalState("end"))
    region.add_transition(Transition(initial, a))
    region.add_transition(Transition(a, b, trigger="go", guard="x > 0"))
    region.add_transition(Transition(b, final, trigger="stop"))
    return machine, region, a, b, final


class TestStructure:
    def test_main_region_created_on_demand(self):
        machine = StateMachine("sm")
        region = machine.main_region()
        assert machine.regions == [region]
        assert machine.main_region() is region

    def test_duplicate_vertex_name_rejected(self):
        region = Region("r")
        region.add_vertex(State("A"))
        with pytest.raises(StateMachineError):
            region.add_vertex(State("A"))

    def test_vertex_lookup(self):
        machine, region, a, *_ = _simple_machine()
        assert region.vertex("A") is a
        with pytest.raises(UnknownElementError):
            region.vertex("Z")

    def test_initial_pseudostate_found(self):
        machine, region, *_ = _simple_machine()
        initial = region.initial()
        assert initial is not None
        assert initial.kind is PseudostateKind.INITIAL

    def test_final_state_cannot_have_outgoing(self):
        machine, region, a, b, final = _simple_machine()
        with pytest.raises(StateMachineError):
            Transition(final, a)

    def test_transitions_update_vertex_links(self):
        machine, region, a, b, _ = _simple_machine()
        assert any(t.target is b for t in a.outgoing)
        assert any(t.source is a for t in b.incoming)


class TestQueries:
    def test_all_states_and_transitions(self):
        machine, *_ = _simple_machine()
        assert {s.name for s in machine.all_states()} == {"A", "B", "end"}
        assert len(machine.all_transitions()) == 3

    def test_events_in_first_seen_order(self):
        machine, *_ = _simple_machine()
        assert machine.events() == ["go", "stop"]

    def test_composite_state(self):
        machine = StateMachine("sm")
        region = machine.main_region()
        composite = region.add_vertex(State("C"))
        inner = composite.add_region(Region("inner"))
        inner.add_vertex(State("C1"))
        assert composite.is_composite
        assert "C1" in {s.name for s in machine.all_states()}

    def test_model_registration(self):
        model = Model("m")
        machine, *_ = _simple_machine()
        model.add_state_machine(machine)
        assert machine.xmi_id is not None
        assert all(s.xmi_id is not None for s in machine.all_states())
