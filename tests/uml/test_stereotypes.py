"""Unit tests for profiles and stereotypes (repro.uml.stereotypes)."""

import pytest

from repro.uml import (
    InstanceSpecification,
    Node,
    Profile,
    ProfileRegistry,
    StereotypeDefinition,
    StereotypeError,
    io_profile,
    is_io,
    is_processor,
    is_thread,
    spt_profile,
)
from repro.uml.stereotypes import IO, SA_ENGINE, SA_SCHED_RES


class TestProfiles:
    def test_spt_profile_defines_paper_stereotypes(self):
        profile = spt_profile()
        assert SA_ENGINE in profile.stereotypes
        assert SA_SCHED_RES in profile.stereotypes

    def test_io_profile_defines_io(self):
        assert IO in io_profile().stereotypes

    def test_unknown_stereotype_lookup_raises(self):
        with pytest.raises(StereotypeError):
            spt_profile().stereotype("Nope")


class TestApplicability:
    def test_saengine_applies_to_nodes_only(self):
        definition = spt_profile().stereotype(SA_ENGINE)
        assert definition.applicable_to(Node("cpu"))
        assert not definition.applicable_to(InstanceSpecification("x"))

    def test_empty_metaclasses_means_any(self):
        definition = StereotypeDefinition("Anything")
        assert definition.applicable_to(Node("n"))
        assert definition.applicable_to(InstanceSpecification("i"))


class TestRegistry:
    def test_default_registry_validates_correct_application(self):
        registry = ProfileRegistry()
        node = Node("cpu")
        node.apply_stereotype(SA_ENGINE, SARate=100)
        registry.validate_application(node, SA_ENGINE)

    def test_unknown_stereotype_rejected(self):
        registry = ProfileRegistry()
        node = Node("cpu")
        node.apply_stereotype("Bogus")
        with pytest.raises(StereotypeError, match="unknown stereotype"):
            registry.validate_application(node, "Bogus")

    def test_wrong_metaclass_rejected(self):
        registry = ProfileRegistry()
        instance = InstanceSpecification("x")
        instance.apply_stereotype(SA_ENGINE)
        with pytest.raises(StereotypeError, match="not applicable"):
            registry.validate_application(instance, SA_ENGINE)

    def test_unknown_tag_rejected(self):
        registry = ProfileRegistry()
        node = Node("cpu")
        node.apply_stereotype(SA_ENGINE, BogusTag=1)
        with pytest.raises(StereotypeError, match="no tag"):
            registry.validate_application(node, SA_ENGINE)

    def test_custom_profile_registration(self):
        registry = ProfileRegistry(profiles=[])
        custom = Profile("Custom")
        custom.define(StereotypeDefinition("Mine", tags=("level",)))
        registry.register(custom)
        assert registry.lookup("Mine") is not None
        assert len(registry.profiles()) == 1


class TestPredicates:
    def test_is_processor(self):
        node = Node("cpu", processor=True)
        assert is_processor(node)
        assert not is_processor(Node("plain"))

    def test_is_thread(self):
        inst = InstanceSpecification("t")
        inst.apply_stereotype(SA_SCHED_RES)
        assert is_thread(inst)
        assert not is_thread(InstanceSpecification("o"))

    def test_is_io(self):
        dev = InstanceSpecification("dev")
        dev.apply_stereotype(IO)
        assert is_io(dev)
        assert not is_io(InstanceSpecification("o"))
