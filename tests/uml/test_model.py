"""Unit tests for the core UML metamodel (repro.uml.model)."""

import pytest

from repro.uml import (
    ArrayType,
    Class,
    DuplicateNameError,
    InstanceSpecification,
    Model,
    Operation,
    Package,
    Parameter,
    ParameterDirection,
    PrimitiveType,
    Property,
    UmlError,
    UnknownElementError,
)
from repro.uml.model import elements_of_type


class TestParameterDirection:
    def test_in_is_input_only(self):
        assert ParameterDirection.IN.is_input
        assert not ParameterDirection.IN.is_output

    def test_return_is_output_only(self):
        assert ParameterDirection.RETURN.is_output
        assert not ParameterDirection.RETURN.is_input

    def test_inout_is_both(self):
        assert ParameterDirection.INOUT.is_input
        assert ParameterDirection.INOUT.is_output


class TestPrimitiveType:
    def test_known_width_defaults(self):
        assert PrimitiveType("int").width_bits == 32
        assert PrimitiveType("double").width_bits == 64
        assert PrimitiveType("bool").width_bits == 1

    def test_unknown_name_defaults_to_32(self):
        assert PrimitiveType("mystery").width_bits == 32

    def test_explicit_width_overrides(self):
        assert PrimitiveType("int", width_bits=16).width_bits == 16

    def test_width_words_rounds_up(self):
        assert PrimitiveType("double").width_words == 2
        assert PrimitiveType("bool").width_words == 1
        assert PrimitiveType("void").width_words == 0

    def test_case_insensitive_lookup(self):
        assert PrimitiveType("Double").width_bits == 64


class TestArrayType:
    def test_width_is_element_times_length(self):
        arr = ArrayType(PrimitiveType("int"), 8)
        assert arr.width_bits == 256
        assert arr.name == "int[8]"

    def test_negative_length_rejected(self):
        with pytest.raises(UmlError):
            ArrayType(PrimitiveType("int"), -1)


class TestOperation:
    def _op(self):
        op = Operation("calc")
        op.add_parameter(Parameter("a", PrimitiveType("int"), ParameterDirection.IN))
        op.add_parameter(Parameter("b", PrimitiveType("int"), ParameterDirection.OUT))
        op.add_parameter(
            Parameter("return", PrimitiveType("int"), ParameterDirection.RETURN)
        )
        return op

    def test_inputs_and_outputs_views(self):
        op = self._op()
        assert [p.name for p in op.inputs()] == ["a"]
        assert [p.name for p in op.outputs()] == ["b", "return"]

    def test_return_parameter(self):
        op = self._op()
        assert op.return_parameter is not None
        assert op.return_parameter.direction is ParameterDirection.RETURN

    def test_parameter_lookup(self):
        op = self._op()
        assert op.parameter("a").name == "a"
        with pytest.raises(UnknownElementError):
            op.parameter("missing")

    def test_parameters_are_owned(self):
        op = self._op()
        assert all(p.owner is op for p in op.parameters)


class TestClass:
    def test_duplicate_operation_rejected(self):
        cls = Class("C")
        cls.add_operation(Operation("f"))
        with pytest.raises(DuplicateNameError):
            cls.add_operation(Operation("f"))

    def test_duplicate_property_rejected(self):
        cls = Class("C")
        cls.add_property(Property("x"))
        with pytest.raises(DuplicateNameError):
            cls.add_property(Property("x"))

    def test_operation_lookup_searches_superclasses(self):
        base = Class("Base")
        base.add_operation(Operation("inherited"))
        derived = Class("Derived")
        derived.generalizations.append(base)
        assert derived.operation("inherited").name == "inherited"
        assert derived.has_operation("inherited")
        assert not derived.has_operation("missing")

    def test_all_operations_deduplicates_overrides(self):
        base = Class("Base")
        base.add_operation(Operation("f"))
        base.add_operation(Operation("g"))
        derived = Class("Derived")
        derived.add_operation(Operation("f"))  # override
        derived.generalizations.append(base)
        names = [op.name for op in derived.all_operations()]
        assert names == ["f", "g"]
        assert derived.all_operations()[0].owner is derived


class TestInstanceSpecification:
    def test_active_follows_classifier(self):
        passive = InstanceSpecification("o", Class("C"))
        active = InstanceSpecification("t", Class("T", is_active=True))
        assert not passive.is_active
        assert active.is_active

    def test_untyped_instance_not_active(self):
        assert not InstanceSpecification("x").is_active

    def test_classifier_operation_resolution(self):
        cls = Class("C")
        cls.add_operation(Operation("f"))
        inst = InstanceSpecification("o", cls)
        assert inst.classifier_operation("f") is not None
        assert inst.classifier_operation("g") is None
        assert InstanceSpecification("u").classifier_operation("f") is None


class TestModel:
    def test_register_assigns_unique_ids(self):
        model = Model("m")
        a = model.add(Class("A"))
        b = model.add(Class("B"))
        assert a.xmi_id != b.xmi_id
        assert model.by_id(a.xmi_id) is a

    def test_by_id_unknown_raises(self):
        model = Model("m")
        with pytest.raises(UnknownElementError):
            model.by_id("nope")

    def test_primitive_types_are_interned(self):
        model = Model("m")
        assert model.primitive("int") is model.primitive("int")

    def test_qualified_names(self):
        model = Model("m")
        pkg = model.add(Package("pkg"))
        cls = pkg.add(Class("C"))
        assert cls.qualified_name == "m.pkg.C"

    def test_walk_covers_nested_elements(self):
        model = Model("m")
        pkg = model.add(Package("pkg"))
        cls = pkg.add(Class("C"))
        op = Operation("f")
        cls.add_operation(op)
        walked = list(model.walk())
        assert cls in walked and op in walked

    def test_elements_of_type(self):
        model = Model("m")
        model.add(Class("A"))
        model.add(Class("B"))
        model.add(InstanceSpecification("i"))
        assert len(list(elements_of_type(model, Class))) == 2

    def test_class_named_and_instance_lookup(self):
        model = Model("m")
        model.add(Class("A"))
        model.add(InstanceSpecification("i"))
        assert model.class_named("A").name == "A"
        assert model.instance("i").name == "i"
        with pytest.raises(UnknownElementError):
            model.class_named("missing")
        with pytest.raises(UnknownElementError):
            model.instance("missing")

    def test_elements_added_later_get_registered(self):
        model = Model("m")
        cls = model.add(Class("A"))
        op = cls.add_operation(Operation("late"))
        assert op.xmi_id is not None
        assert model.by_id(op.xmi_id) is op


class TestStereotypeApplication:
    def test_apply_and_query(self):
        cls = Class("C")
        cls.apply_stereotype("SAengine", SARate=100)
        assert cls.has_stereotype("SAengine")
        assert cls.tagged_value("SAengine", "SARate") == 100
        assert cls.tagged_value("SAengine", "missing", 7) == 7
        assert cls.tagged_value("other", "x") is None

    def test_reapplication_merges_tags(self):
        cls = Class("C")
        cls.apply_stereotype("S", a=1)
        cls.apply_stereotype("S", b=2)
        assert cls.stereotypes["S"] == {"a": 1, "b": 2}
