"""Unit tests for deployment diagrams (repro.uml.deployment)."""

import pytest

from repro.uml import (
    CommunicationPath,
    DeploymentError,
    DeploymentPlan,
    InstanceSpecification,
    Node,
    UnknownElementError,
)
from repro.uml.stereotypes import SA_SCHED_RES


class TestNode:
    def test_processor_flag_applies_stereotype(self):
        assert Node("cpu", processor=True).is_processor
        assert not Node("plain").is_processor

    def test_deploy_marks_instance_as_thread(self):
        node = Node("cpu", processor=True)
        inst = InstanceSpecification("T1")
        node.deploy(inst)
        assert inst.has_stereotype(SA_SCHED_RES)
        assert node.threads() == [inst]

    def test_deploy_is_idempotent(self):
        node = Node("cpu", processor=True)
        inst = InstanceSpecification("T1")
        node.deploy(inst)
        node.deploy(inst)
        assert node.deployed == [inst]


class TestCommunicationPath:
    def test_connects_two_nodes(self):
        a, b = Node("a"), Node("b")
        path = CommunicationPath(a, b)
        assert path.connects(a) and path.connects(b)
        assert path.other_end(a) is b
        assert path.other_end(b) is a

    def test_self_path_rejected(self):
        a = Node("a")
        with pytest.raises(DeploymentError):
            CommunicationPath(a, a)

    def test_other_end_of_foreign_node_rejected(self):
        a, b, c = Node("a"), Node("b"), Node("c")
        path = CommunicationPath(a, b)
        with pytest.raises(DeploymentError):
            path.other_end(c)


class TestDeploymentPlan:
    def test_assign_and_query(self):
        plan = DeploymentPlan()
        plan.assign("T1", "CPU1")
        plan.assign("T2", "CPU1")
        plan.assign("T3", "CPU2")
        assert plan.cpu_of("T1") == "CPU1"
        assert sorted(plan.threads_on("CPU1")) == ["T1", "T2"]
        assert plan.co_located("T1", "T2")
        assert not plan.co_located("T1", "T3")
        assert len(plan) == 3

    def test_conflicting_assignment_rejected(self):
        plan = DeploymentPlan()
        plan.assign("T1", "CPU1")
        with pytest.raises(DeploymentError):
            plan.assign("T1", "CPU2")

    def test_reassignment_to_same_cpu_is_fine(self):
        plan = DeploymentPlan()
        plan.assign("T1", "CPU1")
        plan.assign("T1", "CPU1")
        assert len(plan) == 1

    def test_unknown_thread_raises(self):
        plan = DeploymentPlan()
        with pytest.raises(UnknownElementError):
            plan.cpu_of("T9")
        assert not plan.has_thread("T9")

    def test_cpu_order_preserved(self):
        plan = DeploymentPlan()
        plan.assign("T1", "CPU2")
        plan.assign("T2", "CPU1")
        assert plan.cpus == ["CPU2", "CPU1"]

    def test_from_nodes_reads_saengine_only(self):
        cpu = Node("CPU1", processor=True)
        plain = Node("Disk")  # not a processor
        t1 = InstanceSpecification("T1")
        t2 = InstanceSpecification("T2")
        cpu.deploy(t1)
        plain.deploy(t2)
        plan = DeploymentPlan.from_nodes([cpu, plain])
        assert plan.as_mapping() == {"T1": "CPU1"}

    def test_from_mapping_round_trip(self):
        source = {"T1": "CPU1", "T2": "CPU2"}
        plan = DeploymentPlan.from_mapping(source)
        assert plan.as_mapping() == source

    def test_add_cpu_without_threads(self):
        plan = DeploymentPlan()
        plan.add_cpu("CPU1")
        assert plan.cpus == ["CPU1"]
        assert plan.threads_on("CPU1") == []
