"""Shared fixtures: the paper's case-study models and synthesized CAAMs."""

from __future__ import annotations

import pytest

from repro.apps import crane, didactic, synthetic
from repro.core import synthesize


@pytest.fixture()
def didactic_model():
    return didactic.build_model()


@pytest.fixture()
def crane_model():
    return crane.build_model()


@pytest.fixture()
def synthetic_model():
    return synthetic.build_model()


@pytest.fixture(scope="session")
def didactic_result():
    return synthesize(didactic.build_model(), behaviors=didactic.behaviors())


@pytest.fixture(scope="session")
def crane_result():
    return synthesize(crane.build_model(), behaviors=crane.behaviors())


@pytest.fixture(scope="session")
def synthetic_result():
    return synthesize(
        synthetic.build_model(),
        auto_allocate=True,
        behaviors=synthetic.behaviors(),
    )
