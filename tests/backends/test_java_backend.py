"""Unit tests for the multithreaded Java back-end."""

import pytest

from repro.backends import JavaBackend, JavaBackendError
from repro.uml import ModelBuilder


def _model():
    b = ModelBuilder("app")
    b.thread("T1")
    b.thread("T2")
    b.instance("Obj")
    b.io_device("Dev")
    sd = b.interaction("main")
    sd.call("T1", "Dev", "getSample", result="x")
    sd.call("T1", "Obj", "filter", args=["x"], result="y")
    sd.call("T1", "T2", "setValue", args=["y"])
    sd.call("T2", "T1", "getValue", result="z")
    sd.call("T2", "Platform", "gain", args=["z"], result="w")
    sd.call("T2", "Dev", "setActuator", args=["w"])
    return b.build()


class TestArtifacts:
    def test_one_class_per_thread_plus_support(self):
        artifacts = JavaBackend().generate(_model())
        assert set(artifacts) == {
            "T1Thread.java",
            "T2Thread.java",
            "Channels.java",
            "Environment.java",
            "Main.java",
        }

    def test_thread_class_structure(self):
        source = JavaBackend().generate(_model())["T1Thread.java"]
        assert "public class T1Thread implements Runnable" in source
        assert "void step() throws InterruptedException" in source
        assert "private double x;" in source
        assert "private double y;" in source

    def test_io_calls_environment(self):
        artifacts = JavaBackend().generate(_model())
        assert "x = env.getSample();" in artifacts["T1Thread.java"]
        assert "env.setActuator(w);" in artifacts["T2Thread.java"]
        env = artifacts["Environment.java"]
        assert "double getSample();" in env
        assert "void setActuator(double value);" in env

    def test_channels_use_blocking_queues(self):
        artifacts = JavaBackend().generate(_model())
        channels = artifacts["Channels.java"]
        assert "ArrayBlockingQueue" in channels
        assert "T1_T2_value" in channels
        assert "channels.T1_T2_value.put(y);" in artifacts["T1Thread.java"]
        assert "z = channels.T1_T2_value.take();" in artifacts["T2Thread.java"]

    def test_matching_set_get_share_one_queue(self):
        channels = JavaBackend().generate(_model())["Channels.java"]
        assert channels.count("T1_T2_value") == 1

    def test_queue_capacity_configurable(self):
        channels = JavaBackend(queue_capacity=4).generate(_model())[
            "Channels.java"
        ]
        assert "ArrayBlockingQueue<>(4)" in channels

    def test_local_calls_dispatch_to_ops(self):
        artifacts = JavaBackend().generate(_model())
        assert "y = Ops.Obj_filter(x);" in artifacts["T1Thread.java"]
        assert "w = Ops.gain(z);" in artifacts["T2Thread.java"]

    def test_literal_arguments(self):
        b = ModelBuilder("lit")
        b.thread("T1")
        b.instance("Obj")
        sd = b.interaction("main")
        sd.call("T1", "Obj", "f", args=[2])
        artifacts = JavaBackend().generate(b.build())
        assert "Ops.Obj_f(2.0);" in artifacts["T1Thread.java"]

    def test_main_starts_all_threads(self):
        main = JavaBackend().generate(_model())["Main.java"]
        assert 'new Thread(new T1Thread(), "T1").start();' in main
        assert 'new Thread(new T2Thread(), "T2").start();' in main

    def test_balanced_braces_everywhere(self):
        for source in JavaBackend().generate(_model()).values():
            assert source.count("{") == source.count("}")


class TestErrors:
    def test_no_interactions_rejected(self):
        b = ModelBuilder("empty")
        with pytest.raises(JavaBackendError, match="no interactions"):
            JavaBackend().generate(b.build())

    def test_no_threads_rejected(self):
        b = ModelBuilder("none")
        b.instance("Obj")
        b.instance("Obj2")
        sd = b.interaction("main")
        sd.call("Obj", "Obj2", "f")
        with pytest.raises(JavaBackendError, match="no thread"):
            JavaBackend().generate(b.build())
