"""Unit tests for the Simulink back-end façade."""

from repro.apps import didactic
from repro.backends import SimulinkBackend
from repro.simulink import from_mdl


class TestSimulinkBackend:
    def test_generates_mdl_and_intermediate(self, didactic_model):
        backend = SimulinkBackend(behaviors=didactic.behaviors())
        artifacts = backend.generate(didactic_model)
        assert set(artifacts) == {"didactic.mdl", "didactic.caam.xml"}
        assert artifacts["didactic.mdl"].startswith("Model {")
        assert "caam:Model" in artifacts["didactic.caam.xml"]

    def test_mdl_artifact_parses(self, didactic_model):
        backend = SimulinkBackend()
        artifacts = backend.generate(didactic_model)
        loaded = from_mdl(artifacts["didactic.mdl"])
        assert loaded.name == "didactic"

    def test_last_result_exposed(self, didactic_model):
        backend = SimulinkBackend()
        backend.generate(didactic_model)
        assert backend.last_result is not None
        assert backend.last_result.summary.cpus == 2

    def test_auto_allocation_mode(self, synthetic_model):
        backend = SimulinkBackend(auto_allocate=True)
        artifacts = backend.generate(synthetic_model)
        assert backend.last_result.summary.cpus == 4
        assert "synthetic.mdl" in artifacts
