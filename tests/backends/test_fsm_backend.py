"""Unit tests for the FSM back-end."""

import pytest

from repro.backends import FsmBackend, FsmBackendError
from repro.uml import (
    ModelBuilder,
    Pseudostate,
    State,
    StateMachine,
    Transition,
)


def _model_with_machine():
    b = ModelBuilder("ctrl")
    machine = StateMachine("mode_switch")
    region = machine.main_region()
    init = region.add_vertex(Pseudostate())
    off = region.add_vertex(State("off"))
    on = region.add_vertex(State("on"))
    region.add_transition(Transition(init, off))
    region.add_transition(Transition(off, on, trigger="power"))
    region.add_transition(Transition(on, off, trigger="power"))
    b.model.add_state_machine(machine)
    return b.build()


class TestFsmBackend:
    def test_c_generation(self):
        backend = FsmBackend("c")
        artifacts = backend.generate(_model_with_machine())
        assert list(artifacts) == ["mode_switch.c"]
        assert "STATE_OFF" in artifacts["mode_switch.c"]
        assert "EVENT_POWER" in artifacts["mode_switch.c"]

    def test_java_generation(self):
        backend = FsmBackend("java")
        artifacts = backend.generate(_model_with_machine())
        assert list(artifacts) == ["ModeSwitch.java"]
        assert "public class ModeSwitch" in artifacts["ModeSwitch.java"]

    def test_unknown_language_rejected(self):
        with pytest.raises(FsmBackendError):
            FsmBackend("cobol")

    def test_model_without_machines_rejected(self):
        b = ModelBuilder("empty")
        with pytest.raises(FsmBackendError, match="no state machines"):
            FsmBackend().generate(b.build())

    def test_multiple_machines_one_file_each(self):
        model = _model_with_machine()
        machine2 = StateMachine("second")
        region = machine2.main_region()
        init = region.add_vertex(Pseudostate())
        only = region.add_vertex(State("only"))
        region.add_transition(Transition(init, only))
        model.add_state_machine(machine2)
        artifacts = FsmBackend().generate(model)
        assert set(artifacts) == {"mode_switch.c", "second.c"}
