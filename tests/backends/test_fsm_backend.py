"""Unit tests for the FSM back-end."""

import pytest

from repro.backends import FsmBackend, FsmBackendError
from repro.uml import (
    ModelBuilder,
    Pseudostate,
    State,
    StateMachine,
    Transition,
)


def _model_with_machine():
    b = ModelBuilder("ctrl")
    machine = StateMachine("mode_switch")
    region = machine.main_region()
    init = region.add_vertex(Pseudostate())
    off = region.add_vertex(State("off"))
    on = region.add_vertex(State("on"))
    region.add_transition(Transition(init, off))
    region.add_transition(Transition(off, on, trigger="power"))
    region.add_transition(Transition(on, off, trigger="power"))
    b.model.add_state_machine(machine)
    return b.build()


class TestFsmBackend:
    def test_c_generation(self):
        backend = FsmBackend("c")
        artifacts = backend.generate(_model_with_machine())
        assert list(artifacts) == ["mode_switch.h", "mode_switch.c"]
        assert "STATE_OFF" in artifacts["mode_switch.c"]
        assert "EVENT_POWER" in artifacts["mode_switch.c"]
        assert "#ifndef REPRO_MODE_SWITCH_H" in artifacts["mode_switch.h"]
        assert "void mode_switch_init" in artifacts["mode_switch.h"]

    def test_java_generation(self):
        backend = FsmBackend("java")
        artifacts = backend.generate(_model_with_machine())
        assert list(artifacts) == ["ModeSwitch.java"]
        assert "public class ModeSwitch" in artifacts["ModeSwitch.java"]

    def test_unknown_language_rejected(self):
        with pytest.raises(FsmBackendError):
            FsmBackend("cobol")

    def test_model_without_machines_rejected(self):
        b = ModelBuilder("empty")
        with pytest.raises(FsmBackendError, match="no state machines"):
            FsmBackend().generate(b.build())

    def test_multiple_machines_one_file_each(self):
        model = _model_with_machine()
        machine2 = StateMachine("second")
        region = machine2.main_region()
        init = region.add_vertex(Pseudostate())
        only = region.add_vertex(State("only"))
        region.add_transition(Transition(init, only))
        model.add_state_machine(machine2)
        artifacts = FsmBackend().generate(model)
        assert set(artifacts) == {
            "mode_switch.c",
            "mode_switch.h",
            "second.c",
            "second.h",
        }

    def test_free_form_machine_name_sanitized(self):
        # UML machine names are free-form; the emitted symbol family and
        # filenames must still be valid C/Java identifiers.
        b = ModelBuilder("ctrl")
        machine = StateMachine("lift controller-2")
        region = machine.main_region()
        init = region.add_vertex(Pseudostate())
        idle = region.add_vertex(State("idle"))
        region.add_transition(Transition(init, idle))
        b.model.add_state_machine(machine)
        model = b.build()

        artifacts = FsmBackend("c").generate(model)
        assert set(artifacts) == {"lift_controller_2.c", "lift_controller_2.h"}
        assert "lift_controller_2_state_t" in artifacts["lift_controller_2.c"]
        assert (
            "#ifndef REPRO_LIFT_CONTROLLER_2_H"
            in artifacts["lift_controller_2.h"]
        )

        java = FsmBackend("java").generate(model)
        assert list(java) == ["LiftController2.java"]
        assert "public class LiftController2" in java["LiftController2.java"]
