"""Unit tests for the KPN back-end."""

import pytest

from repro.backends import (
    KpnBackend,
    KpnChannel,
    KpnError,
    KpnNetwork,
    KpnProcess,
)
from repro.uml import ModelBuilder


def _pipeline_network():
    network = KpnNetwork("pipe")
    network.add_process(KpnProcess("P1"))
    network.add_process(KpnProcess("P2"))
    network.add_channel(KpnChannel("in", "", "P1"))
    network.add_channel(KpnChannel("mid", "P1", "P2"))
    network.add_channel(KpnChannel("out", "P2", ""))
    return network


class TestNetworkStructure:
    def test_channels_update_process_ports(self):
        network = _pipeline_network()
        assert network.processes["P1"].inputs == ["in"]
        assert network.processes["P1"].outputs == ["mid"]
        assert [c.name for c in network.network_inputs()] == ["in"]
        assert [c.name for c in network.network_outputs()] == ["out"]

    def test_duplicates_rejected(self):
        network = _pipeline_network()
        with pytest.raises(KpnError):
            network.add_process(KpnProcess("P1"))
        with pytest.raises(KpnError):
            network.add_channel(KpnChannel("in", "", "P1"))


class TestExecution:
    def test_default_behaviour_copies_sum(self):
        network = _pipeline_network()
        outputs = network.run(3, inputs={"in": [1.0, 2.0, 3.0]})
        assert outputs["out"] == [1.0, 2.0, 3.0]

    def test_custom_behaviour(self):
        network = _pipeline_network()
        network.processes["P1"].behavior = lambda ins: {
            "mid": ins["in"] * 10
        }
        outputs = network.run(2, inputs={"in": [1.0, 2.0]})
        assert outputs["out"] == [10.0, 20.0]

    def test_missing_stimulus_padded_with_zero(self):
        network = _pipeline_network()
        outputs = network.run(2, inputs={"in": [5.0]})
        assert outputs["out"] == [5.0, 0.0]

    def test_blocking_read_semantics(self):
        """A process with two inputs fires only when both hold tokens."""
        network = KpnNetwork("join")
        network.add_process(KpnProcess("J"))
        network.add_channel(KpnChannel("a", "", "J"))
        network.add_channel(KpnChannel("b", "", "J"))
        network.add_channel(KpnChannel("o", "J", ""))
        outputs = network.run(1, inputs={"a": [1.0], "b": [2.0]})
        assert outputs["o"] == [3.0]

    def test_source_processes_fire_once_per_round(self):
        network = KpnNetwork("src")
        network.add_process(KpnProcess("S", behavior=lambda ins: {"o": 7.0}))
        network.add_channel(KpnChannel("o", "S", ""))
        outputs = network.run(3)
        assert outputs["o"] == [7.0, 7.0, 7.0]


class TestBackend:
    def test_network_built_from_uml(self, crane_model):
        backend = KpnBackend()
        network = backend.build_network(crane_model)
        assert set(network.processes) == {"T1", "T2", "T3"}
        # 3 inter-thread channels + 3 env inputs + 1 env output
        assert len(network.channels) == 7

    def test_generate_emits_dot(self, crane_model):
        artifacts = KpnBackend().generate(crane_model)
        dot = artifacts["crane.kpn.dot"]
        assert dot.startswith("digraph crane")
        assert '"T1" -> "T3"' in dot
        assert "ENV_IN" in dot and "ENV_OUT" in dot

    def test_crane_network_is_live(self, crane_model):
        backend = KpnBackend()
        network = backend.build_network(crane_model)
        stim = {c.name: [1.0, 1.0] for c in network.network_inputs()}
        outputs = network.run(2, inputs=stim)
        voltage = outputs["out_T3_voltage"]
        assert len(voltage) == 2


class TestCGeneration:
    def test_c_artifact_emitted(self, crane_model):
        artifacts = KpnBackend().generate(crane_model)
        assert "crane_kpn.c" in artifacts
        source = artifacts["crane_kpn.c"]
        assert '#include "kpn_runtime.h"' in source

    def test_process_functions_and_channels(self, crane_model):
        source = KpnBackend().generate(crane_model)["crane_kpn.c"]
        for thread in ("T1", "T2", "T3"):
            assert f"static void process_{thread}(void)" in source
            assert f'kpn_register(process_{thread}, "{thread}");' in source
        assert "static kpn_channel ch_T1_T3_xc;" in source

    def test_blocking_reads_and_writes(self, crane_model):
        source = KpnBackend().generate(crane_model)["crane_kpn.c"]
        # T3 reads its three input channels and writes the env output.
        assert "kpn_read(&ch_T1_T3_xc)" in source
        assert "kpn_read(&ch_T2_T3_ref)" in source
        assert "kpn_write(&ch_out_T3_voltage" in source

    def test_balanced_braces(self, crane_model):
        source = KpnBackend().generate(crane_model)["crane_kpn.c"]
        assert source.count("{") == source.count("}")
