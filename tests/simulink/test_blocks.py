"""Unit tests for block semantics (repro.simulink.blocks)."""

import pytest

from repro.simulink import (
    Block,
    SemanticsError,
    has_semantics,
    is_feedthrough,
    platform_block_for,
    semantics_for,
)
from repro.simulink.blocks import register, BlockSemantics


def _step(block, inputs, state=None):
    semantics = semantics_for(block.block_type)
    if state is None:
        state = semantics.initial_state(block)
    return semantics.step(block, inputs, state)


class TestArithmeticBlocks:
    def test_constant(self):
        block = Block("c", "Constant", inputs=0, parameters={"Value": 3.5})
        outputs, _ = _step(block, [])
        assert outputs == [3.5]

    def test_gain(self):
        block = Block("g", "Gain", parameters={"Gain": -2.0})
        assert _step(block, [4.0])[0] == [-8.0]

    def test_sum_with_signs(self):
        block = Block("s", "Sum", inputs=3, parameters={"Inputs": "+-+"})
        assert _step(block, [5.0, 2.0, 1.0])[0] == [4.0]

    def test_sum_sign_mismatch_raises(self):
        block = Block("s", "Sum", inputs=2, parameters={"Inputs": "+"})
        with pytest.raises(SemanticsError):
            _step(block, [1.0, 2.0])

    def test_sum_accepts_pipe_separators(self):
        block = Block("s", "Sum", inputs=2, parameters={"Inputs": "|+-"})
        assert _step(block, [3.0, 1.0])[0] == [2.0]

    def test_product(self):
        block = Block("p", "Product", inputs=3)
        assert _step(block, [2.0, 3.0, 4.0])[0] == [24.0]

    def test_abs_and_saturation(self):
        assert _step(Block("a", "Abs"), [-3.0])[0] == [3.0]
        sat = Block(
            "s", "Saturation", parameters={"LowerLimit": -1.0, "UpperLimit": 1.0}
        )
        assert _step(sat, [5.0])[0] == [1.0]
        assert _step(sat, [-5.0])[0] == [-1.0]
        assert _step(sat, [0.5])[0] == [0.5]


class TestStatefulBlocks:
    def test_unit_delay_outputs_previous_input(self):
        block = Block("z", "UnitDelay", parameters={"InitialCondition": 9.0})
        semantics = semantics_for("UnitDelay")
        state = semantics.initial_state(block)
        outputs, state = semantics.step(block, [1.0], state)
        assert outputs == [9.0]
        outputs, state = semantics.step(block, [2.0], state)
        assert outputs == [1.0]

    def test_relay_hysteresis(self):
        block = Block(
            "r",
            "Relay",
            parameters={
                "OnSwitchValue": 1.0,
                "OffSwitchValue": -1.0,
                "OnOutputValue": 10.0,
                "OffOutputValue": 0.0,
            },
        )
        semantics = semantics_for("Relay")
        state = semantics.initial_state(block)
        outputs, state = semantics.step(block, [0.0], state)
        assert outputs == [0.0]  # below on-point, stays off
        outputs, state = semantics.step(block, [1.5], state)
        assert outputs == [10.0]  # switches on
        outputs, state = semantics.step(block, [0.0], state)
        assert outputs == [10.0]  # hysteresis: still on
        outputs, state = semantics.step(block, [-2.0], state)
        assert outputs == [0.0]  # below off-point, switches off

    def test_sine_source_advances_time(self):
        block = Block("s", "Sin", inputs=0, parameters={"Amplitude": 1.0})
        semantics = semantics_for("Sin")
        state = semantics.initial_state(block)
        first, state = semantics.step(block, [], state)
        second, state = semantics.step(block, [], state)
        assert first != second

    def test_step_source(self):
        block = Block(
            "st", "Step", inputs=0, parameters={"Time": 2, "Before": 0, "After": 5}
        )
        semantics = semantics_for("Step")
        state = semantics.initial_state(block)
        values = []
        for _ in range(4):
            out, state = semantics.step(block, [], state)
            values.append(out[0])
        assert values == [0.0, 0.0, 5.0, 5.0]


class TestSFunction:
    def test_stateless_callback(self):
        block = Block(
            "f", "S-Function", inputs=2, parameters={"callback": lambda a, b: a - b}
        )
        assert _step(block, [5.0, 3.0])[0] == [2.0]

    def test_tuple_returning_callback(self):
        block = Block(
            "f",
            "S-Function",
            inputs=1,
            outputs=2,
            parameters={"callback": lambda x: (x, -x)},
        )
        assert _step(block, [2.0])[0] == [2.0, -2.0]

    def test_stateful_callback(self):
        def accumulate(state, inputs):
            state = (state or 0.0) + inputs[0]
            return [state], state

        block = Block(
            "acc",
            "S-Function",
            parameters={"callback": accumulate, "Stateful": True},
        )
        semantics = semantics_for("S-Function")
        state = semantics.initial_state(block)
        out, state = semantics.step(block, [2.0], state)
        out, state = semantics.step(block, [3.0], state)
        assert out == [5.0]

    def test_placeholder_without_callback_sums_inputs(self):
        block = Block("f", "S-Function", inputs=2)
        assert _step(block, [1.0, 2.0])[0] == [3.0]


class TestCommChannel:
    def test_channel_is_pass_through(self):
        block = Block("ch", "CommChannel")
        assert _step(block, [7.0])[0] == [7.0]

    def test_channel_is_feedthrough(self):
        assert is_feedthrough(Block("ch", "CommChannel"))


class TestFeedthroughPredicate:
    def test_sources_and_sinks_never_feedthrough(self):
        assert not is_feedthrough(Block("c", "Constant", inputs=0))
        assert not is_feedthrough(
            Block("o", "Outport", inputs=1, outputs=0)
        )

    def test_delay_not_feedthrough(self):
        assert not is_feedthrough(Block("z", "UnitDelay"))

    def test_unknown_type_conservatively_feedthrough(self):
        assert is_feedthrough(Block("x", "FancyUnknown"))


class TestRegistry:
    def test_unknown_semantics_raises(self):
        with pytest.raises(SemanticsError):
            semantics_for("NoSuchBlockType")

    def test_has_semantics(self):
        assert has_semantics("Gain")
        assert not has_semantics("NoSuchBlockType")

    def test_register_custom_type(self):
        register(
            BlockSemantics(
                "Negate", True, lambda b, i, s: ([-i[0]], s)
            )
        )
        assert has_semantics("Negate")
        assert _step(Block("n", "Negate"), [3.0])[0] == [-3.0]


class TestPlatformLibrary:
    def test_known_methods(self):
        block_type, params, inputs = platform_block_for("mult")
        assert block_type == "Product" and inputs == 2
        block_type, params, _ = platform_block_for("sub")
        assert block_type == "Sum" and params["Inputs"] == "+-"

    def test_lookup_is_case_insensitive(self):
        assert platform_block_for("Mult")[0] == "Product"

    def test_unknown_method_returns_none(self):
        assert platform_block_for("fancyDsp") is None

    def test_returned_params_are_copies(self):
        _, params1, _ = platform_block_for("add")
        params1["Inputs"] = "mutated"
        _, params2, _ = platform_block_for("add")
        assert params2["Inputs"] == "++"
