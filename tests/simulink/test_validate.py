"""Unit tests for Simulink model validation (repro.simulink.validate)."""

import pytest

from repro.simulink import (
    Block,
    SimulinkModel,
    SubSystem,
    find_cycles,
    unconnected_inputs,
    validate_model,
    validate_structure,
)


class TestStructure:
    def test_clean_model(self):
        model = SimulinkModel("m")
        a = model.root.add(Block("a", "Constant", inputs=0))
        b = model.root.add(Block("b", "Gain"))
        model.root.connect(a.output(), b.input())
        assert validate_structure(model) == []

    def test_subsystem_interface_mismatch_flagged(self):
        model = SimulinkModel("m")
        sub = SubSystem("S")
        model.root.add(sub)
        sub.add_inport("in")
        sub.num_inputs = 5  # corrupt the derived interface
        problems = validate_structure(model)
        assert any("interface" in p for p in problems)

    def test_foreign_block_line_flagged(self):
        model = SimulinkModel("m")
        a = model.root.add(Block("a", "Constant", inputs=0))
        b = model.root.add(Block("b", "Gain"))
        line = model.root.connect(a.output(), b.input())
        model.root.blocks.remove(b)  # b now foreign to the system
        problems = validate_structure(model)
        assert any("foreign block" in p for p in problems)


class TestWiring:
    def test_unconnected_inputs_reported(self):
        model = SimulinkModel("m")
        model.root.add(Block("g", "Gain"))
        ports = unconnected_inputs(model)
        assert len(ports) == 1
        assert ports[0].block.name == "g"

    def test_root_inports_exempt(self):
        model = SimulinkModel("m")
        model.root.add(
            Block("In1", "Inport", inputs=0, outputs=1, parameters={"Port": 1})
        )
        assert unconnected_inputs(model) == []

    def test_validate_model_reports_unconnected(self):
        model = SimulinkModel("m")
        model.root.add(Block("g", "Gain"))
        problems = validate_model(model)
        assert any("unconnected" in p for p in problems)


class TestCycles:
    def test_simple_cycle_found(self):
        model = SimulinkModel("m")
        a = model.root.add(Block("a", "Gain"))
        b = model.root.add(Block("b", "Gain"))
        model.root.connect(a.output(), b.input())
        model.root.connect(b.output(), a.input())
        cycles = find_cycles(model)
        assert len(cycles) == 1
        assert {blk.name for blk in cycles[0]} == {"a", "b"}

    def test_self_loop_found(self):
        model = SimulinkModel("m")
        a = model.root.add(Block("a", "Gain"))
        model.root.connect(a.output(), a.input())
        cycles = find_cycles(model)
        assert [[b.name for b in c] for c in cycles] == [["a"]]

    def test_delay_breaks_cycle(self):
        model = SimulinkModel("m")
        a = model.root.add(Block("a", "Gain"))
        z = model.root.add(Block("z", "UnitDelay"))
        model.root.connect(a.output(), z.input())
        model.root.connect(z.output(), a.input())
        assert find_cycles(model) == []

    def test_two_independent_cycles(self):
        model = SimulinkModel("m")
        for prefix in ("x", "y"):
            a = model.root.add(Block(f"{prefix}a", "Gain"))
            b = model.root.add(Block(f"{prefix}b", "Gain"))
            model.root.connect(a.output(), b.input())
            model.root.connect(b.output(), a.input())
        assert len(find_cycles(model)) == 2

    def test_cycle_across_hierarchy(self):
        model = SimulinkModel("m")
        sub = SubSystem("S")
        model.root.add(sub)
        sin = sub.add_inport("in")
        sout = sub.add_outport("out")
        g = sub.system.add(Block("g", "Gain"))
        sub.system.connect(sin.output(), g.input())
        sub.system.connect(g.output(), sout.input())
        back = model.root.add(Block("back", "Gain"))
        model.root.connect(sub.output(1), back.input())
        model.root.connect(back.output(), sub.input(1))
        cycles = find_cycles(model)
        assert len(cycles) == 1
        assert {blk.name for blk in cycles[0]} == {"g", "back"}

    def test_validate_model_reports_loop(self):
        model = SimulinkModel("m")
        a = model.root.add(Block("a", "Gain"))
        model.root.connect(a.output(), a.input())
        assert any("algebraic loop" in p for p in validate_model(model))
