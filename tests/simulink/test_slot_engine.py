"""Slot-compiled engine: selection, compile-time analysis, batch runs.

The differential properties (bit-identical results across randomized
models) live in ``test_differential.py``; this file pins the engine flag
plumbing, the compile-time error analysis (same exception types and
messages as the reference interpreter), ``run_many`` episode semantics,
the compile census, and the ragged-trace CSV export.
"""

import pytest

from repro import obs
from repro.simulink import (
    ENGINE_REFERENCE,
    ENGINE_SLOTS,
    AlgebraicLoopError,
    Block,
    SemanticsError,
    SimulationError,
    SimulationResult,
    Simulator,
    SimulinkError,
    SimulinkModel,
    SubSystem,
    UnconnectedInputError,
    default_engine,
    run_model,
)


def _outport(name="Out1", port=1):
    return Block(name, "Outport", inputs=1, outputs=0, parameters={"Port": port})


def _inport(name="In1", port=1):
    return Block(name, "Inport", inputs=0, outputs=1, parameters={"Port": port})


def _accumulator_model():
    model = SimulinkModel("m")
    c = model.root.add(Block("c", "Constant", inputs=0, parameters={"Value": 1.0}))
    s = model.root.add(Block("s", "Sum", inputs=2, parameters={"Inputs": "++"}))
    z = model.root.add(Block("z", "UnitDelay"))
    o = model.root.add(_outport())
    model.root.connect(c.output(), s.input(1))
    model.root.connect(z.output(), s.input(2))
    model.root.connect(s.output(), z.input(), o.input())
    return model


class TestEngineSelection:
    def test_default_engine_is_slots(self):
        assert default_engine() == ENGINE_SLOTS
        assert Simulator(_accumulator_model()).engine == ENGINE_SLOTS

    def test_env_var_selects_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        assert default_engine() == ENGINE_REFERENCE
        assert Simulator(_accumulator_model()).engine == ENGINE_REFERENCE

    def test_explicit_engine_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        simulator = Simulator(_accumulator_model(), engine=ENGINE_SLOTS)
        assert simulator.engine == ENGINE_SLOTS

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError) as excinfo:
            Simulator(_accumulator_model(), engine="turbo")
        assert "turbo" in str(excinfo.value)

    def test_run_model_forwards_engine(self):
        result = run_model(_accumulator_model(), 3, engine=ENGINE_REFERENCE)
        assert result.output("Out1") == [1.0, 2.0, 3.0]


class TestCompileTimeErrorParity:
    """Same exception types and messages as the reference interpreter."""

    def _pair(self, model, monitor=None):
        return (
            Simulator(model, monitor=monitor, engine=ENGINE_SLOTS),
            Simulator(model, monitor=monitor, engine=ENGINE_REFERENCE),
        )

    def test_unconnected_feedthrough_input(self):
        model = SimulinkModel("m")
        model.root.add(Block("g", "Gain"))
        slots, reference = self._pair(model)
        with pytest.raises(UnconnectedInputError) as got:
            slots.run(1)
        with pytest.raises(UnconnectedInputError) as want:
            reference.run(1)
        assert str(got.value) == str(want.value)

    def test_unconnected_update_phase_input(self):
        # A root Outport gathers in the update phase; its unconnected
        # input must raise the same error from both engines.
        model = SimulinkModel("m")
        model.root.add(_outport())
        slots, reference = self._pair(model)
        with pytest.raises(UnconnectedInputError) as got:
            slots.run(1)
        with pytest.raises(UnconnectedInputError) as want:
            reference.run(1)
        assert str(got.value) == str(want.value)

    def test_unconnected_does_not_raise_for_zero_steps(self):
        model = SimulinkModel("m")
        model.root.add(Block("g", "Gain"))
        for engine in (ENGINE_SLOTS, ENGINE_REFERENCE):
            result = Simulator(model, engine=engine).run(0)
            assert result.steps == 0

    def test_first_unconnected_input_wins(self):
        # Two defects: the error must name the first gather site in the
        # reference engine's chronological order (output phase first).
        model = SimulinkModel("m")
        model.root.add(Block("g", "Gain"))
        model.root.add(_outport())
        slots, reference = self._pair(model)
        with pytest.raises(UnconnectedInputError) as got:
            slots.run(1)
        with pytest.raises(UnconnectedInputError) as want:
            reference.run(1)
        assert str(got.value) == str(want.value)
        assert "'m/g'" in str(got.value)

    def test_algebraic_loop_message_identical(self):
        messages = []
        for engine in (ENGINE_SLOTS, ENGINE_REFERENCE):
            model = SimulinkModel("m")
            a = model.root.add(Block("a", "Gain"))
            b = model.root.add(Block("b", "Gain"))
            model.root.connect(a.output(), b.input())
            model.root.connect(b.output(), a.input())
            with pytest.raises(AlgebraicLoopError) as excinfo:
                Simulator(model, engine=engine)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]

    def test_sum_sign_mismatch_parity(self):
        # A Sum whose sign string disagrees with its port count is
        # declined by the kernel factory and must fail through the
        # generic path exactly like the interpreter.
        errors = []
        for engine in (ENGINE_SLOTS, ENGINE_REFERENCE):
            model = SimulinkModel("m")
            c = model.root.add(
                Block("c", "Constant", inputs=0, parameters={"Value": 1.0})
            )
            s = model.root.add(
                Block("s", "Sum", inputs=1, parameters={"Inputs": "++-"})
            )
            o = model.root.add(_outport())
            model.root.connect(c.output(), s.input())
            model.root.connect(s.output(), o.input())
            with pytest.raises(SemanticsError) as excinfo:
                Simulator(model, engine=engine).run(1)
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]

    def test_underproducing_block_scheduling_error_parity(self):
        # An S-Function declaring two outputs whose callback yields one:
        # the consumer of out2 hits the reference engine's "internal
        # scheduling error"; the slot engine's per-step check must raise
        # the same message.
        errors = []
        for engine in (ENGINE_SLOTS, ENGINE_REFERENCE):
            model = SimulinkModel("m")
            i = model.root.add(_inport())
            f = model.root.add(
                Block(
                    "f",
                    "S-Function",
                    inputs=1,
                    outputs=2,
                    parameters={"callback": lambda x: (x,)},
                )
            )
            g = model.root.add(Block("g", "Gain"))
            o = model.root.add(_outport())
            model.root.connect(i.output(), f.input())
            model.root.connect(f.output(2), g.input())
            model.root.connect(g.output(), o.input())
            with pytest.raises(SimulationError) as excinfo:
                Simulator(model, engine=engine).run(1)
            errors.append(str(excinfo.value))
        assert errors[0] == errors[1]
        assert "internal scheduling error" in errors[0]

    def test_bad_monitor_path_raises_at_run_not_construction(self):
        model = _accumulator_model()
        for engine in (ENGINE_SLOTS, ENGINE_REFERENCE):
            simulator = Simulator(model, monitor=["m/missing"], engine=engine)
            with pytest.raises(SimulinkError):
                simulator.run(1)

    def test_monitor_of_subsystem_reads_zero(self):
        # flatten() drops SubSystems; monitoring one yields the reference
        # engine's 0.0 default from both engines.
        model = SimulinkModel("m")
        sub = SubSystem("S")
        model.root.add(sub)
        sin = sub.add_inport("in")
        g = sub.system.add(Block("g", "Gain", parameters={"Gain": 2.0}))
        sout = sub.add_outport("out")
        sub.system.connect(sin.output(), g.input())
        sub.system.connect(g.output(), sout.input())
        c = model.root.add(
            Block("c", "Constant", inputs=0, parameters={"Value": 3.0})
        )
        o = model.root.add(_outport())
        model.root.connect(c.output(), sub.input(1))
        model.root.connect(sub.output(1), o.input())
        for engine in (ENGINE_SLOTS, ENGINE_REFERENCE):
            result = Simulator(model, monitor=["m/S"], engine=engine).run(2)
            assert result.signal("m/S") == [0.0, 0.0]
            assert result.output("Out1") == [6.0, 6.0]


class TestRunMany:
    def test_episodes_match_cold_runs(self):
        model = SimulinkModel("m")
        i = model.root.add(_inport())
        g = model.root.add(Block("g", "Gain", parameters={"Gain": 2.0}))
        o = model.root.add(_outport())
        model.root.connect(i.output(), g.input())
        model.root.connect(g.output(), o.input())
        stimuli = [{"In1": [1.0, 2.0]}, {"In1": [5.0]}, {}]
        batch = Simulator(model).run_many(3, stimuli)
        for episode, stimulus in zip(batch, stimuli):
            cold = Simulator(model).run(3, inputs=stimulus)
            assert episode.to_csv() == cold.to_csv()

    def test_state_resets_between_episodes(self):
        simulator = Simulator(_accumulator_model())
        first, second = simulator.run_many(3, [None, None])
        assert first.output("Out1") == [1.0, 2.0, 3.0]
        assert second.output("Out1") == [1.0, 2.0, 3.0]

    def test_reference_engine_batches_too(self):
        simulator = Simulator(_accumulator_model(), engine=ENGINE_REFERENCE)
        first, second = simulator.run_many(2, [None, None])
        assert first.output("Out1") == second.output("Out1") == [1.0, 2.0]


class TestCompileCensus:
    def test_specialized_and_generic_counts(self):
        model = SimulinkModel("m")
        i = model.root.add(_inport())
        g = model.root.add(Block("g", "Gain", parameters={"Gain": 2.0}))
        f = model.root.add(
            Block(
                "f",
                "S-Function",
                inputs=1,
                outputs=1,
                parameters={"callback": lambda x: x},
            )
        )
        o = model.root.add(_outport())
        model.root.connect(i.output(), g.input())
        model.root.connect(g.output(), f.input())
        model.root.connect(f.output(), o.input())
        simulator = Simulator(model)
        # Inport is stimulus (neither bucket); Gain + Outport specialize;
        # the S-Function falls back to the generic step contract.
        assert simulator.compiled_specialized == 2
        assert simulator.compiled_generic == 1
        assert simulator.compiled_slots >= 4

    def test_value_slot_census_matches_reference(self):
        model = _accumulator_model()
        slots = Simulator(model, engine=ENGINE_SLOTS)
        reference = Simulator(model, engine=ENGINE_REFERENCE)
        slots.run(2)
        reference.run(2)
        assert slots._value_slots == reference._value_slots

    def test_compile_metrics_reported(self):
        recorder = obs.Recorder()
        with obs.use(recorder):
            simulator = Simulator(_accumulator_model())
            simulator.run(5)
        metrics = recorder.metrics
        assert metrics.counter("simulink.compile.models") == 1
        assert metrics.gauge_value("simulink.compile.slots") >= 4
        assert metrics.gauge_value("simulink.compile.specialized") >= 3
        assert "simulink.compile" in [span.name for span in recorder.spans]

    def test_run_many_metrics_reported(self):
        recorder = obs.Recorder()
        with obs.use(recorder):
            Simulator(_accumulator_model()).run_many(4, [None, None])
        metrics = recorder.metrics
        assert metrics.counter("simulink.sim.batches") == 1
        assert metrics.counter("simulink.sim.runs") == 2
        assert metrics.counter("simulink.sim.steps") == 8
        assert metrics.gauge_value("simulink.sim.steps_per_sec") > 0


class TestRaggedCsv:
    def test_short_traces_padded_with_empty_cells(self):
        result = SimulationResult(
            steps=3,
            outputs={"A": [1.0, 2.0]},
            signals={"m/s": [5.0]},
        )
        assert result.to_csv() == "step,A,m/s\n0,1,5\n1,2,\n2,,\n"

    def test_long_traces_truncated_to_steps(self):
        result = SimulationResult(steps=2, outputs={"A": [1.0, 2.0, 3.0]})
        assert result.to_csv() == "step,A\n0,1\n1,2\n"

    def test_empty_run_keeps_exact_header(self):
        assert SimulationResult(steps=0).to_csv() == "step,\n"

    def test_negative_zero_formatting_preserved(self):
        result = SimulationResult(steps=1, outputs={"A": [-0.0]})
        assert result.to_csv() == "step,A\n0,-0\n"
