"""`Simulator.run_many` edge cases and engine parity.

The batch entry point must be exactly N cold single runs: same results
for empty batches, for ragged stimulus/steps mismatches (short traces
pad with 0.0, long traces truncate at `steps`), and on both engines.
"""

import pytest

from repro.simulink import (
    ENGINE_BATCH,
    ENGINE_REFERENCE,
    ENGINE_SLOTS,
    Block,
    SimulationError,
    Simulator,
    SimulinkModel,
    numpy_available,
)

ENGINES_UNDER_TEST = [
    ENGINE_SLOTS,
    ENGINE_REFERENCE,
    pytest.param(
        ENGINE_BATCH,
        marks=pytest.mark.skipif(
            not numpy_available(), reason="requires NumPy"
        ),
    ),
]


def _model():
    """In1 -> Gain(2) -> UnitDelay -> Out1: stateful, so per-episode
    reset discipline is observable."""
    model = SimulinkModel("m")
    inport = model.root.add(
        Block("In1", "Inport", inputs=0, outputs=1, parameters={"Port": 1})
    )
    gain = model.root.add(Block("g", "Gain", parameters={"Gain": 2.0}))
    delay = model.root.add(
        Block("d", "UnitDelay", parameters={"InitialCondition": 0.5})
    )
    out = model.root.add(
        Block("Out1", "Outport", inputs=1, outputs=0, parameters={"Port": 1})
    )
    model.root.connect(inport.output(), gain.input())
    model.root.connect(gain.output(), delay.input())
    model.root.connect(delay.output(), out.input())
    return model


@pytest.mark.parametrize("engine", ENGINES_UNDER_TEST)
class TestRunManyEdges:
    def test_empty_stimuli_list(self, engine):
        simulator = Simulator(_model(), engine=engine)
        assert simulator.run_many(5, []) == []

    def test_zero_steps_episodes(self, engine):
        results = Simulator(_model(), engine=engine).run_many(
            0, [{"In1": [1.0]}, None]
        )
        assert [r.steps for r in results] == [0, 0]

    def test_short_stimulus_pads_with_zero(self, engine):
        simulator = Simulator(_model(), engine=engine)
        (episode,) = simulator.run_many(4, [{"In1": [3.0]}])
        # Steps 2-4 see In1 = 0.0; the delay shifts by one step.
        assert episode.outputs["Out1"] == [0.5, 6.0, 0.0, 0.0]

    def test_long_stimulus_truncates_at_steps(self, engine):
        simulator = Simulator(_model(), engine=engine)
        (short,) = simulator.run_many(2, [{"In1": [1.0, 2.0, 99.0, 99.0]}])
        assert short.steps == 2
        assert short.outputs["Out1"] == [0.5, 2.0]

    def test_none_stimulus_means_all_zero_inputs(self, engine):
        simulator = Simulator(_model(), engine=engine)
        (episode,) = simulator.run_many(3, [None])
        assert episode.outputs["Out1"] == [0.5, 0.0, 0.0]

    def test_negative_steps_rejected(self, engine):
        simulator = Simulator(_model(), engine=engine)
        with pytest.raises(SimulationError, match="steps"):
            simulator.run_many(-1, [None])

    def test_batch_equals_n_cold_single_runs(self, engine):
        stimuli = [{"In1": [1.0, -2.0, 3.0]}, {"In1": [7.0]}, None]
        batch = Simulator(_model(), engine=engine).run_many(3, stimuli)
        for episode, stimulus in zip(batch, stimuli):
            fresh = Simulator(_model(), engine=engine).run(3, inputs=stimulus)
            assert episode.to_csv() == fresh.to_csv()
            assert episode.outputs == fresh.outputs
            assert episode.signals == fresh.signals


class TestRunManyEngineParity:
    def test_engines_agree_episode_by_episode(self):
        stimuli = [{"In1": [1.5, 2.5]}, {"In1": []}, {"In1": [0.0] * 9}, None]
        slots = Simulator(_model(), engine=ENGINE_SLOTS).run_many(6, stimuli)
        reference = Simulator(_model(), engine=ENGINE_REFERENCE).run_many(
            6, stimuli
        )
        assert [r.to_csv() for r in slots] == [r.to_csv() for r in reference]

    @pytest.mark.skipif(not numpy_available(), reason="requires NumPy")
    def test_batch_engine_agrees_on_ragged_stimuli(self):
        stimuli = [{"In1": [1.5, 2.5]}, {"In1": []}, {"In1": [0.0] * 9}, None]
        slots = Simulator(_model(), engine=ENGINE_SLOTS).run_many(6, stimuli)
        batch = Simulator(_model(), engine=ENGINE_BATCH).run_many(6, stimuli)
        assert [r.to_csv() for r in batch] == [r.to_csv() for r in slots]
