"""Unit tests for E-core XML serialization (repro.simulink.ecore)."""

import pytest

from repro.simulink import (
    Block,
    CaamModel,
    EcoreError,
    SimulinkModel,
    SubSystem,
    from_ecore_string,
    run_model,
    to_ecore_string,
)


def _model():
    model = SimulinkModel("m")
    sub = SubSystem("S")
    model.root.add(sub)
    inp = sub.add_inport("in")
    outp = sub.add_outport("out")
    g = sub.system.add(Block("g", "Gain", parameters={"Gain": 4.0}))
    sub.system.connect(inp.output(), g.input())
    sub.system.connect(g.output(), outp.input())
    c = model.root.add(Block("c", "Constant", inputs=0, parameters={"Value": 1.0}))
    o = model.root.add(Block("Out1", "Outport", inputs=1, outputs=0, parameters={"Port": 1}))
    model.root.connect(c.output(), sub.input(1))
    model.root.connect(sub.output(1), o.input())
    return model


class TestRoundTrip:
    def test_structure_and_behaviour(self):
        loaded = from_ecore_string(to_ecore_string(_model()))
        assert loaded.count_blocks() == 6
        assert run_model(loaded, 2).output("Out1") == [4.0, 4.0]

    def test_parameter_types_preserved(self):
        model = SimulinkModel("m")
        model.root.add(
            Block(
                "b",
                "Gain",
                parameters={"I": 3, "F": 2.5, "S": "text", "B": True},
            )
        )
        loaded = from_ecore_string(to_ecore_string(model))
        params = loaded.root.block("b").parameters
        assert params["I"] == 3 and isinstance(params["I"], int)
        assert params["F"] == 2.5 and isinstance(params["F"], float)
        assert params["S"] == "text"
        assert params["B"] is True

    def test_caam_detection(self, didactic_result):
        loaded = from_ecore_string(to_ecore_string(didactic_result.caam))
        assert isinstance(loaded, CaamModel)
        assert loaded.summary() == didactic_result.caam.summary()

    def test_model_parameters_survive(self):
        model = _model()
        model.parameters["FixedStep"] = 0.25
        loaded = from_ecore_string(to_ecore_string(model))
        assert loaded.parameters["FixedStep"] == 0.25

    def test_idempotent(self):
        once = to_ecore_string(_model())
        assert to_ecore_string(from_ecore_string(once)) == once


class TestErrors:
    def test_invalid_xml(self):
        with pytest.raises(EcoreError, match="invalid XML"):
            from_ecore_string("<oops")

    def test_missing_system(self):
        with pytest.raises(EcoreError, match="no <system>"):
            from_ecore_string('<caam:Model xmlns:caam="x" name="m"/>')

    def test_line_without_destination(self):
        text = """<caam:Model xmlns:caam="x" name="m">
  <system name="m">
    <block name="g" type="Gain" inputs="1" outputs="1"/>
    <line srcBlock="g" srcPort="1"/>
  </system>
</caam:Model>"""
        with pytest.raises(EcoreError, match="no destination"):
            from_ecore_string(text)
