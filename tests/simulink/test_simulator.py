"""Unit tests for the dataflow simulator (repro.simulink.simulator)."""

import pytest

from repro.simulink import (
    AlgebraicLoopError,
    Block,
    SimulationError,
    Simulator,
    SimulinkModel,
    SubSystem,
    UnconnectedInputError,
    is_executable,
    run_model,
)


def _outport(name="Out1", port=1):
    return Block(name, "Outport", inputs=1, outputs=0, parameters={"Port": port})


def _inport(name="In1", port=1):
    return Block(name, "Inport", inputs=0, outputs=1, parameters={"Port": port})


class TestBasicExecution:
    def test_constant_through_gain(self):
        model = SimulinkModel("m")
        c = model.root.add(Block("c", "Constant", inputs=0, parameters={"Value": 2.0}))
        g = model.root.add(Block("g", "Gain", parameters={"Gain": 5.0}))
        o = model.root.add(_outport())
        model.root.connect(c.output(), g.input())
        model.root.connect(g.output(), o.input())
        result = run_model(model, 3)
        assert result.output("Out1") == [10.0, 10.0, 10.0]

    def test_stimulus_inputs(self):
        model = SimulinkModel("m")
        i = model.root.add(_inport())
        o = model.root.add(_outport())
        model.root.connect(i.output(), o.input())
        result = run_model(model, 4, inputs={"In1": [1, 2, 3]})
        assert result.output("Out1") == [1.0, 2.0, 3.0, 0.0]  # pad with 0

    def test_accumulator_feedback_through_delay(self):
        model = SimulinkModel("m")
        c = model.root.add(Block("c", "Constant", inputs=0, parameters={"Value": 1.0}))
        s = model.root.add(Block("s", "Sum", inputs=2, parameters={"Inputs": "++"}))
        z = model.root.add(Block("z", "UnitDelay"))
        o = model.root.add(_outport())
        model.root.connect(c.output(), s.input(1))
        model.root.connect(z.output(), s.input(2))
        model.root.connect(s.output(), z.input(), o.input())
        result = run_model(model, 5)
        assert result.output("Out1") == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_delay_initial_condition(self):
        model = SimulinkModel("m")
        i = model.root.add(_inport())
        z = model.root.add(
            Block("z", "UnitDelay", parameters={"InitialCondition": 7.0})
        )
        o = model.root.add(_outport())
        model.root.connect(i.output(), z.input())
        model.root.connect(z.output(), o.input())
        result = run_model(model, 3, inputs={"In1": [1, 2, 3]})
        assert result.output("Out1") == [7.0, 1.0, 2.0]

    def test_zero_steps(self):
        model = SimulinkModel("m")
        c = model.root.add(Block("c", "Constant", inputs=0))
        o = model.root.add(_outport())
        model.root.connect(c.output(), o.input())
        assert run_model(model, 0).output("Out1") == []

    def test_negative_steps_rejected(self):
        model = SimulinkModel("m")
        with pytest.raises(SimulationError):
            run_model(model, -1)


class TestMonitoringAndScopes:
    def test_monitor_records_block_output(self):
        model = SimulinkModel("m")
        c = model.root.add(Block("c", "Constant", inputs=0, parameters={"Value": 4.0}))
        g = model.root.add(Block("g", "Gain", parameters={"Gain": 0.5}))
        model.root.connect(c.output(), g.input())
        result = run_model(model, 2, monitor=["m/g"])
        assert result.signal("m/g") == [2.0, 2.0]

    def test_unknown_signal_raises(self):
        model = SimulinkModel("m")
        model.root.add(Block("c", "Constant", inputs=0))
        result = run_model(model, 1)
        with pytest.raises(SimulationError):
            result.signal("m/none")

    def test_scope_records_history(self):
        model = SimulinkModel("m")
        c = model.root.add(Block("c", "Constant", inputs=0, parameters={"Value": 3.0}))
        scope = model.root.add(Block("scope", "Scope", inputs=1, outputs=0))
        model.root.connect(c.output(), scope.input())
        result = run_model(model, 3)
        assert result.scopes["m/scope"] == [3.0, 3.0, 3.0]


class TestErrorHandling:
    def test_algebraic_loop_detected(self):
        model = SimulinkModel("m")
        a = model.root.add(Block("a", "Gain"))
        b = model.root.add(Block("b", "Gain"))
        model.root.connect(a.output(), b.input())
        model.root.connect(b.output(), a.input())
        with pytest.raises(AlgebraicLoopError) as excinfo:
            Simulator(model)
        assert set(excinfo.value.cycle) == {"m/a", "m/b"}

    def test_loop_with_delay_is_fine(self):
        model = SimulinkModel("m")
        a = model.root.add(Block("a", "Gain"))
        z = model.root.add(Block("z", "UnitDelay"))
        model.root.connect(a.output(), z.input())
        model.root.connect(z.output(), a.input())
        executable, cycle = is_executable(model)
        assert executable and cycle is None

    def test_unconnected_input_raises_at_run(self):
        model = SimulinkModel("m")
        model.root.add(Block("g", "Gain"))
        simulator = Simulator(model)
        with pytest.raises(UnconnectedInputError):
            simulator.run(1)

    def test_is_executable_reports_cycle(self):
        model = SimulinkModel("m")
        a = model.root.add(Block("a", "Gain"))
        model.root.connect(a.output(), a.input())
        executable, cycle = is_executable(model)
        assert not executable
        assert cycle == ["m/a"]


class TestHierarchyExecution:
    def test_two_level_hierarchy(self):
        model = SimulinkModel("m")
        outer = SubSystem("outer")
        model.root.add(outer)
        inner = SubSystem("inner")
        outer.system.add(inner)
        iin = inner.add_inport("in")
        iout = inner.add_outport("out")
        gain = inner.system.add(Block("g", "Gain", parameters={"Gain": 3.0}))
        inner.system.connect(iin.output(), gain.input())
        inner.system.connect(gain.output(), iout.input())
        oin = outer.add_inport("in")
        oout = outer.add_outport("out")
        outer.system.connect(oin.output(), inner.input(1))
        outer.system.connect(inner.output(1), oout.input())
        src = model.root.add(Block("c", "Constant", inputs=0, parameters={"Value": 2.0}))
        dst = model.root.add(_outport())
        model.root.connect(src.output(), outer.input(1))
        model.root.connect(outer.output(1), dst.input())
        assert run_model(model, 1).output("Out1") == [6.0]

    def test_cross_boundary_feedback_needs_delay(self):
        # gain inside subsystem feeding back to itself at root level
        model = SimulinkModel("m")
        sub = SubSystem("S")
        model.root.add(sub)
        sin = sub.add_inport("in")
        sout = sub.add_outport("out")
        g = sub.system.add(Block("g", "Gain"))
        sub.system.connect(sin.output(), g.input())
        sub.system.connect(g.output(), sout.input())
        model.root.connect(sub.output(1), sub.input(1))
        executable, cycle = is_executable(model)
        assert not executable

    def test_state_persists_across_run_calls(self):
        model = SimulinkModel("m")
        c = model.root.add(Block("c", "Constant", inputs=0, parameters={"Value": 1.0}))
        s = model.root.add(Block("s", "Sum", inputs=2, parameters={"Inputs": "++"}))
        z = model.root.add(Block("z", "UnitDelay"))
        o = model.root.add(_outport())
        model.root.connect(c.output(), s.input(1))
        model.root.connect(z.output(), s.input(2))
        model.root.connect(s.output(), z.input(), o.input())
        simulator = Simulator(model)
        assert simulator.run(2).output("Out1") == [1.0, 2.0]
        assert simulator.run(2).output("Out1") == [3.0, 4.0]
        simulator.reset()
        assert simulator.run(1).output("Out1") == [1.0]

    def test_double_driven_flat_input_rejected(self):
        model = SimulinkModel("m")
        sub = SubSystem("S")
        model.root.add(sub)
        sin = sub.add_inport("in")
        g = sub.system.add(Block("g", "Gain"))
        sub.system.connect(sin.output(), g.input())
        c1 = model.root.add(Block("c1", "Constant", inputs=0))
        model.root.connect(c1.output(), sub.input(1))
        # Driving g.input directly too would double-drive after flattening;
        # the metamodel already prevents it inside one system, so emulate by
        # a second inner line: sin has one output line that merges branches,
        # so instead verify the simulator accepts the clean model.
        assert is_executable(model)[0]


class TestCsvExport:
    def test_csv_contains_outputs_and_signals(self):
        model = SimulinkModel("m")
        c = model.root.add(
            Block("c", "Constant", inputs=0, parameters={"Value": 2.0})
        )
        g = model.root.add(Block("g", "Gain", parameters={"Gain": 3.0}))
        o = model.root.add(_outport())
        model.root.connect(c.output(), g.input())
        model.root.connect(g.output(), o.input())
        result = run_model(model, 2, monitor=["m/g"])
        csv = result.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "step,Out1,m/g"
        assert lines[1] == "0,6,6"
        assert lines[2] == "1,6,6"

    def test_csv_of_empty_run(self):
        model = SimulinkModel("m")
        model.root.add(Block("c", "Constant", inputs=0))
        result = run_model(model, 0)
        assert result.to_csv() == "step,\n"
