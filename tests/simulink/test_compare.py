"""Unit tests for structural model comparison (repro.simulink.compare)."""

import pytest

from repro.simulink import (
    Block,
    SimulinkModel,
    SubSystem,
    diff_models,
    from_mdl,
    models_equivalent,
    to_mdl,
)


def _model():
    model = SimulinkModel("m")
    sub = SubSystem("S")
    model.root.add(sub)
    inp = sub.add_inport("in")
    g = sub.system.add(Block("g", "Gain", parameters={"Gain": 2.0}))
    sub.system.connect(inp.output(), g.input())
    c = model.root.add(Block("c", "Constant", inputs=0, parameters={"Value": 1.0}))
    model.root.connect(c.output(), sub.input(1))
    return model


class TestEquivalence:
    def test_identical_models(self):
        assert models_equivalent(_model(), _model())
        assert diff_models(_model(), _model()) == []

    def test_mdl_round_trip_equivalent(self, crane_result):
        loaded = from_mdl(to_mdl(crane_result.caam))
        assert models_equivalent(crane_result.caam, loaded), diff_models(
            crane_result.caam, loaded
        )

    def test_ecore_round_trip_equivalent(self, synthetic_result):
        from repro.simulink import from_ecore_string, to_ecore_string

        loaded = from_ecore_string(to_ecore_string(synthetic_result.caam))
        assert models_equivalent(synthetic_result.caam, loaded)


class TestDifferences:
    def test_missing_block_reported(self):
        left, right = _model(), _model()
        right.root.add(Block("extra", "Gain"))
        diffs = diff_models(left, right)
        assert any("'extra' only in right" in d for d in diffs)

    def test_type_change_reported(self):
        left, right = _model(), _model()
        right.root.block("c").block_type = "Step"
        assert any("type" in d for d in diff_models(left, right))

    def test_parameter_change_reported(self):
        left, right = _model(), _model()
        right.find("S/g").parameters["Gain"] = 9.0
        diffs = diff_models(left, right)
        assert any("'Gain'" in d and "9.0" in d for d in diffs)

    def test_nested_difference_has_path(self):
        left, right = _model(), _model()
        right.find("S/g").parameters["Gain"] = 9.0
        assert any(d.startswith("m/S/g") for d in diff_models(left, right))

    def test_wiring_change_reported(self):
        left, right = _model(), _model()
        line = right.root.lines[0]
        right.root.disconnect(line)
        diffs = diff_models(left, right)
        assert any("connection" in d and "only in left" in d for d in diffs)

    def test_port_count_change_reported(self):
        left, right = _model(), _model()
        right.root.block("c").num_outputs = 2
        assert any("ports" in d for d in diff_models(left, right))

    def test_model_name_and_params(self):
        left = _model()
        right = _model()
        right.name = "other"
        right.parameters["FixedStep"] = 9.0
        diffs = diff_models(left, right)
        assert any("model name" in d for d in diffs)
        assert any("model parameters" in d for d in diffs)

    def test_callables_ignored(self):
        left, right = _model(), _model()
        right.find("S/g").parameters["callback"] = lambda x: x
        assert models_equivalent(left, right)
