"""Unit + property tests for MDL serialization (repro.simulink.mdl)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulink import (
    Block,
    CaamModel,
    MdlError,
    SimulinkModel,
    SubSystem,
    from_mdl,
    run_model,
    to_mdl,
)
from repro.simulink.caam import CpuSubsystem, ThreadSubsystem


def _accumulator_model():
    model = SimulinkModel("acc")
    c = model.root.add(Block("c", "Constant", inputs=0, parameters={"Value": 1.0}))
    s = model.root.add(Block("s", "Sum", inputs=2, parameters={"Inputs": "++"}))
    z = model.root.add(Block("z", "UnitDelay"))
    o = model.root.add(Block("Out1", "Outport", inputs=1, outputs=0, parameters={"Port": 1}))
    model.root.connect(c.output(), s.input(1))
    model.root.connect(z.output(), s.input(2))
    model.root.connect(s.output(), z.input(), o.input())
    return model


class TestWriter:
    def test_sections_present(self):
        text = to_mdl(_accumulator_model())
        assert text.startswith("Model {")
        assert 'Name "acc"' in text
        assert "System {" in text
        assert 'BlockType "UnitDelay"' in text
        assert "Branch {" in text  # the branched line

    def test_parameters_serialized_sorted(self):
        model = SimulinkModel("m")
        model.root.add(
            Block("b", "Gain", parameters={"Zeta": 1, "Alpha": 2})
        )
        text = to_mdl(model)
        assert text.index("Alpha") < text.index("Zeta")

    def test_callables_skipped(self):
        model = SimulinkModel("m")
        model.root.add(
            Block("f", "S-Function", parameters={"callback": lambda x: x})
        )
        text = to_mdl(model)
        assert "callback" not in text

    def test_booleans_as_on_off(self):
        model = SimulinkModel("m")
        model.root.add(Block("b", "Gain", parameters={"Flag": True}))
        assert 'Flag "on"' in to_mdl(model)

    def test_string_escaping(self):
        model = SimulinkModel("m")
        model.root.add(
            Block("b", "S-Function", parameters={"Source": 'say "hi"'})
        )
        text = to_mdl(model)
        loaded = from_mdl(text)
        assert loaded.root.block("b").parameters["Source"] == 'say "hi"'


class TestRoundTrip:
    def test_structure_survives(self):
        model = _accumulator_model()
        loaded = from_mdl(to_mdl(model))
        assert loaded.count_blocks() == model.count_blocks()
        assert len(loaded.root.lines) == len(model.root.lines)

    def test_behaviour_survives(self):
        loaded = from_mdl(to_mdl(_accumulator_model()))
        assert run_model(loaded, 4).output("Out1") == [1.0, 2.0, 3.0, 4.0]

    def test_caam_roles_reconstructed(self, didactic_result):
        loaded = from_mdl(to_mdl(didactic_result.caam))
        assert isinstance(loaded, CaamModel)
        assert isinstance(loaded.cpu("CPU1"), CpuSubsystem)
        assert isinstance(loaded.thread("T1"), ThreadSubsystem)
        assert loaded.summary() == didactic_result.caam.summary()

    def test_plain_model_stays_plain(self):
        loaded = from_mdl(to_mdl(_accumulator_model()))
        assert not isinstance(loaded, CaamModel)

    def test_double_round_trip_stable(self, crane_result):
        once = to_mdl(crane_result.caam)
        assert to_mdl(from_mdl(once)) == once


class TestParserErrors:
    def test_missing_model_section(self):
        with pytest.raises(MdlError, match="no Model section"):
            from_mdl("NotAModel { }")

    def test_unbalanced_braces(self):
        with pytest.raises(MdlError):
            from_mdl("Model { System {")

    def test_unterminated_string(self):
        with pytest.raises(MdlError, match="unterminated"):
            from_mdl('Model { Name "oops }')

    def test_line_without_destination(self):
        text = """
Model {
  Name "m"
  System {
    Name "m"
    Block { BlockType "Gain"  Name "g"  Ports [1, 1] }
    Line { SrcBlock "g"  SrcPort 1 }
  }
}
"""
        with pytest.raises(MdlError, match="no destination"):
            from_mdl(text)

    def test_comments_ignored(self):
        text = """
# header comment
Model {
  Name "m"   # trailing comment
  System { Name "m" }
}
"""
        assert from_mdl(text).name == "m"

    def test_malformed_ports(self):
        text = """
Model {
  Name "m"
  System {
    Name "m"
    Block { BlockType "Gain"  Name "g"  Ports [x, y] }
  }
}
"""
        with pytest.raises(MdlError, match="Ports"):
            from_mdl(text)


_BLOCK_TYPES = ["Gain", "Sum", "Product", "UnitDelay", "Abs", "Saturation"]


@st.composite
def _random_simulink_models(draw):
    model = SimulinkModel("rnd")
    count = draw(st.integers(min_value=1, max_value=6))
    blocks = []
    for index in range(count):
        block_type = draw(st.sampled_from(_BLOCK_TYPES))
        inputs = 2 if block_type in ("Sum", "Product") else 1
        params = {}
        if block_type == "Gain":
            params["Gain"] = draw(
                st.floats(min_value=-5, max_value=5, allow_nan=False)
            )
        if block_type == "Sum":
            params["Inputs"] = "".join(
                draw(st.sampled_from(["++", "+-", "-+"]))
            )
        blocks.append(
            model.root.add(
                Block(f"b{index}", block_type, inputs=inputs, parameters=params)
            )
        )
    # Wire a random forward chain (acyclic by construction).
    for position in range(1, len(blocks)):
        source = blocks[draw(st.integers(0, position - 1))]
        dest = blocks[position]
        port = draw(st.integers(1, dest.num_inputs))
        if model.root.driver_of(dest.input(port)) is None:
            model.root.connect(source.output(1), dest.input(port))
    return model


class TestRoundTripProperties:
    @given(_random_simulink_models())
    @settings(max_examples=40, deadline=None)
    def test_census_preserved(self, model):
        loaded = from_mdl(to_mdl(model))
        assert loaded.count_blocks() == model.count_blocks()
        original = {
            (b.name, b.block_type, b.num_inputs, b.num_outputs)
            for b in model.all_blocks()
        }
        reloaded = {
            (b.name, b.block_type, b.num_inputs, b.num_outputs)
            for b in loaded.all_blocks()
        }
        assert original == reloaded

    @given(_random_simulink_models())
    @settings(max_examples=20, deadline=None)
    def test_idempotent(self, model):
        once = to_mdl(model)
        assert to_mdl(from_mdl(once)) == once
