"""Unit tests for the extended block library (repro.simulink.blocks_ext)."""

import math

import pytest

import repro.simulink  # noqa: F401 - triggers extended registration
from repro.simulink import (
    Block,
    SemanticsError,
    platform_block_for,
    semantics_for,
)


def _step(block, inputs, state=None):
    semantics = semantics_for(block.block_type)
    if state is None:
        state = semantics.initial_state(block)
    return semantics.step(block, inputs, state)


class TestRouting:
    def test_switch_threshold(self):
        block = Block("sw", "Switch", inputs=3, parameters={"Threshold": 0.5})
        assert _step(block, [10.0, 1.0, 20.0])[0] == [10.0]
        assert _step(block, [10.0, 0.0, 20.0])[0] == [20.0]

    def test_switch_criteria_nonzero(self):
        block = Block(
            "sw", "Switch", inputs=3, parameters={"Criteria": "~=0"}
        )
        assert _step(block, [1.0, 0.0, 2.0])[0] == [2.0]
        assert _step(block, [1.0, -3.0, 2.0])[0] == [1.0]

    def test_switch_bad_criteria(self):
        block = Block("sw", "Switch", inputs=3, parameters={"Criteria": "??"})
        with pytest.raises(SemanticsError):
            _step(block, [1.0, 1.0, 2.0])

    def test_minmax(self):
        low = Block("m", "MinMax", inputs=3, parameters={"Function": "min"})
        high = Block("m", "MinMax", inputs=3, parameters={"Function": "max"})
        assert _step(low, [3.0, 1.0, 2.0])[0] == [1.0]
        assert _step(high, [3.0, 1.0, 2.0])[0] == [3.0]


class TestNonlinearities:
    def test_sign(self):
        block = Block("s", "Signum")
        assert _step(block, [-4.0])[0] == [-1.0]
        assert _step(block, [0.0])[0] == [0.0]
        assert _step(block, [9.0])[0] == [1.0]

    def test_dead_zone(self):
        block = Block(
            "dz", "DeadZone", parameters={"Start": -1.0, "End": 1.0}
        )
        assert _step(block, [0.5])[0] == [0.0]
        assert _step(block, [2.0])[0] == [1.0]
        assert _step(block, [-3.0])[0] == [-2.0]

    def test_quantizer(self):
        block = Block(
            "q", "Quantizer", parameters={"QuantizationInterval": 0.5}
        )
        assert _step(block, [1.26])[0] == [1.5]
        assert _step(block, [1.1])[0] == [1.0]

    def test_quantizer_bad_interval(self):
        block = Block(
            "q", "Quantizer", parameters={"QuantizationInterval": 0.0}
        )
        with pytest.raises(SemanticsError):
            _step(block, [1.0])


class TestDiscreteDynamics:
    def test_integrator_accumulates(self):
        block = Block(
            "i",
            "DiscreteIntegrator",
            parameters={"InitialCondition": 1.0, "SampleTime": 0.5},
        )
        semantics = semantics_for("DiscreteIntegrator")
        state = semantics.initial_state(block)
        out, state = semantics.step(block, [2.0], state)
        assert out == [1.0]  # initial condition first
        out, state = semantics.step(block, [2.0], state)
        assert out == [2.0]  # 1 + 0.5*2

    def test_lowpass_converges(self):
        block = Block("f", "DiscreteFilter", parameters={"Pole": 0.5})
        semantics = semantics_for("DiscreteFilter")
        state = semantics.initial_state(block)
        value = 0.0
        for _ in range(30):
            out, state = semantics.step(block, [1.0], state)
            value = out[0]
        assert value == pytest.approx(1.0, abs=1e-6)

    def test_rate_limiter_clamps_slew(self):
        block = Block(
            "r",
            "RateLimiter",
            parameters={"RisingSlewLimit": 0.5, "FallingSlewLimit": -0.5},
        )
        semantics = semantics_for("RateLimiter")
        state = semantics.initial_state(block)
        out, state = semantics.step(block, [10.0], state)
        assert out == [0.5]
        out, state = semantics.step(block, [10.0], state)
        assert out == [1.0]
        out, state = semantics.step(block, [-10.0], state)
        assert out == [0.5]


class TestLogicAndRelational:
    @pytest.mark.parametrize(
        "operator,inputs,expected",
        [
            ("AND", [1.0, 1.0], 1.0),
            ("AND", [1.0, 0.0], 0.0),
            ("OR", [0.0, 1.0], 1.0),
            ("NOT", [0.0], 1.0),
            ("XOR", [1.0, 1.0], 0.0),
            ("NAND", [1.0, 1.0], 0.0),
            ("NOR", [0.0, 0.0], 1.0),
        ],
    )
    def test_logic_table(self, operator, inputs, expected):
        block = Block(
            "l", "Logic", inputs=len(inputs), parameters={"Operator": operator}
        )
        assert _step(block, inputs)[0] == [expected]

    def test_logic_bad_operator(self):
        block = Block("l", "Logic", inputs=2, parameters={"Operator": "IMPLIES"})
        with pytest.raises(SemanticsError):
            _step(block, [1.0, 1.0])

    @pytest.mark.parametrize(
        "operator,a,b,expected",
        [
            ("==", 2.0, 2.0, 1.0),
            ("~=", 2.0, 2.0, 0.0),
            ("<", 1.0, 2.0, 1.0),
            (">=", 2.0, 2.0, 1.0),
        ],
    )
    def test_relational(self, operator, a, b, expected):
        block = Block(
            "r", "RelationalOperator", inputs=2, parameters={"Operator": operator}
        )
        assert _step(block, [a, b])[0] == [expected]


class TestMath:
    def test_sqrt(self):
        assert _step(Block("s", "Sqrt"), [9.0])[0] == [3.0]
        with pytest.raises(SemanticsError):
            _step(Block("s", "Sqrt"), [-1.0])

    def test_trigonometry(self):
        block = Block("t", "Trigonometry", parameters={"Operator": "cos"})
        assert _step(block, [0.0])[0] == [1.0]

    def test_math_function_variants(self):
        assert _step(
            Block("m", "MathFunction", parameters={"Operator": "square"}),
            [3.0],
        )[0] == [9.0]
        assert _step(
            Block("m", "MathFunction", parameters={"Operator": "exp"}), [0.0]
        )[0] == [1.0]
        with pytest.raises(SemanticsError):
            _step(
                Block("m", "MathFunction", parameters={"Operator": "log"}),
                [0.0],
            )
        with pytest.raises(SemanticsError):
            _step(
                Block(
                    "m", "MathFunction", parameters={"Operator": "reciprocal"}
                ),
                [0.0],
            )


class TestLookup:
    def test_interpolation_and_clamping(self):
        block = Block(
            "lut",
            "Lookup",
            parameters={
                "InputValues": "0, 1, 2",
                "OutputValues": "0, 10, 40",
            },
        )
        assert _step(block, [0.5])[0] == [5.0]
        assert _step(block, [1.5])[0] == [25.0]
        assert _step(block, [-1.0])[0] == [0.0]
        assert _step(block, [9.0])[0] == [40.0]

    def test_mismatched_tables(self):
        block = Block(
            "lut",
            "Lookup",
            parameters={"InputValues": "0, 1", "OutputValues": "0"},
        )
        with pytest.raises(SemanticsError):
            _step(block, [0.5])


class TestPlatformIntegration:
    def test_new_methods_reachable(self):
        assert platform_block_for("lowpass")[0] == "DiscreteFilter"
        assert platform_block_for("integrator")[0] == "DiscreteIntegrator"
        assert platform_block_for("switch")[0] == "Switch"
        assert platform_block_for("max")[0] == "MinMax"

    def test_uml_to_extended_block(self):
        from repro.core import map_model
        from repro.uml import DeploymentPlan, ModelBuilder

        b = ModelBuilder("m")
        b.thread("T1")
        sd = b.interaction("main")
        sd.call("T1", "T1", "src", result="x")
        sd.call("T1", "Platform", "lowpass", args=["x", 0.8], result="y")
        result = map_model(
            b.build(), DeploymentPlan.from_mapping({"T1": "CPU1"})
        )
        block = result.caam.thread("T1").system.block("lowpass")
        assert block.block_type == "DiscreteFilter"
        assert block.parameters["Pole"] == 0.8

    def test_extended_blocks_in_simulation(self):
        from repro.simulink import SimulinkModel, run_model

        model = SimulinkModel("m")
        const = model.root.add(
            Block("c", "Constant", inputs=0, parameters={"Value": 1.0})
        )
        integ = model.root.add(
            Block("i", "DiscreteIntegrator", parameters={"SampleTime": 1.0})
        )
        out = model.root.add(
            Block("Out1", "Outport", inputs=1, outputs=0, parameters={"Port": 1})
        )
        model.root.connect(const.output(), integ.input())
        model.root.connect(integ.output(), out.input())
        assert run_model(model, 4).output("Out1") == [0.0, 1.0, 2.0, 3.0]
