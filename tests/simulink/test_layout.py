"""Unit tests for the automatic layout pass (repro.simulink.layout)."""

import pytest

from repro.simulink import (
    Block,
    SimulinkModel,
    from_mdl,
    layout_model,
    layout_system,
    overlaps,
    positions,
    to_mdl,
)


def _chain_model():
    model = SimulinkModel("m")
    c = model.root.add(Block("c", "Constant", inputs=0))
    g = model.root.add(Block("g", "Gain"))
    o = model.root.add(Block("Out1", "Outport", inputs=1, outputs=0, parameters={"Port": 1}))
    model.root.connect(c.output(), g.input())
    model.root.connect(g.output(), o.input())
    return model


class TestLayout:
    def test_every_block_gets_a_position(self):
        model = _chain_model()
        layout_model(model)
        assert len(positions(model.root)) == 3

    def test_dataflow_goes_left_to_right(self):
        model = _chain_model()
        layout_model(model)
        boxes = positions(model.root)
        assert boxes["c"][0] < boxes["g"][0] < boxes["Out1"][0]

    def test_no_overlapping_boxes(self):
        model = _chain_model()
        layout_model(model)
        assert overlaps(model.root) == []

    def test_parallel_blocks_stack_vertically(self):
        model = SimulinkModel("m")
        a = model.root.add(Block("a", "Constant", inputs=0))
        b = model.root.add(Block("b", "Constant", inputs=0))
        layout_system(model.root)
        boxes = positions(model.root)
        assert boxes["a"][0] == boxes["b"][0]
        assert boxes["a"][3] <= boxes["b"][1]  # no vertical overlap

    def test_cyclic_system_still_lays_out(self):
        model = SimulinkModel("m")
        a = model.root.add(Block("a", "Gain"))
        b = model.root.add(Block("b", "Gain"))
        model.root.connect(a.output(), b.input())
        model.root.connect(b.output(), a.input())
        layout_system(model.root)
        assert overlaps(model.root) == []

    def test_height_scales_with_ports(self):
        model = SimulinkModel("m")
        small = model.root.add(Block("small", "Gain"))
        wide = model.root.add(Block("wide", "Sum", inputs=4))
        layout_system(model.root)
        boxes = positions(model.root)
        assert (boxes["wide"][3] - boxes["wide"][1]) > (
            boxes["small"][3] - boxes["small"][1]
        )

    def test_positions_survive_mdl_round_trip(self):
        model = _chain_model()
        layout_model(model)
        loaded = from_mdl(to_mdl(model))
        assert positions(loaded.root) == positions(model.root)

    def test_caam_layout_recursive(self, didactic_result):
        layout_model(didactic_result.caam)
        for system in didactic_result.caam.all_systems():
            if system.blocks:
                assert overlaps(system) == []
                assert len(positions(system)) == len(system.blocks)
