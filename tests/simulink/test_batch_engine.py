"""The vectorized batch slot engine: dispatch, exactness, fallbacks.

The contract under test is *bit*-identity with the scalar slot engine —
including sign-of-zero and NaN payloads — so float comparisons here go
through ``struct.pack`` rather than ``==``.
"""

import math
import struct

import pytest

from repro import obs
from repro.simulink import (
    ENGINE_BATCH,
    ENGINE_REFERENCE,
    ENGINE_SLOTS,
    BatchUnavailableError,
    Block,
    SimulationError,
    Simulator,
    SimulinkModel,
    numpy_available,
)
from repro.simulink import batch as libbatch

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="requires NumPy"
)


def _bits(value):
    return struct.pack("<d", value)


def _trace_bits(trace):
    return [_bits(v) for v in trace]


def assert_identical(got, want):
    """Bitwise equality of two SimulationResults (NaN-safe)."""
    assert got.steps == want.steps
    assert set(got.outputs) == set(want.outputs)
    for name in want.outputs:
        assert _trace_bits(got.outputs[name]) == _trace_bits(
            want.outputs[name]
        ), name
    assert set(got.signals) == set(want.signals)
    for path in want.signals:
        assert _trace_bits(got.signals[path]) == _trace_bits(
            want.signals[path]
        ), path
    assert set(got.scopes) == set(want.scopes)
    for name in want.scopes:
        assert _trace_bits(got.scopes[name]) == _trace_bits(
            want.scopes[name]
        ), name
    assert got.to_csv() == want.to_csv()


def _stateful_model():
    """Every vectorizable kernel in one diagram, with signed-zero bait.

    In1 -> Gain(-1) feeds a Sum(+-), a Saturation, Abs, Relay, UnitDelay
    and a Scope; Constant anchors a Product.  Gain(-1) of 0.0 is -0.0, so
    any engine that loses the sign of zero fails here.
    """
    model = SimulinkModel("kernels")
    root = model.root
    inport = root.add(
        Block("In1", "Inport", inputs=0, outputs=1, parameters={"Port": 1})
    )
    neg = root.add(Block("neg", "Gain", parameters={"Gain": -1.0}))
    offset = root.add(
        Block("k", "Constant", inputs=0, outputs=1, parameters={"Value": 0.25})
    )
    diff = root.add(
        Block("diff", "Sum", inputs=2, parameters={"Signs": "+-"})
    )
    prod = root.add(Block("prod", "Product", inputs=2))
    sat = root.add(
        Block(
            "sat",
            "Saturation",
            parameters={"LowerLimit": -0.5, "UpperLimit": 0.5},
        )
    )
    mag = root.add(Block("mag", "Abs"))
    relay = root.add(
        Block(
            "relay",
            "Relay",
            parameters={
                "OnSwitchValue": 0.3,
                "OffSwitchValue": 0.1,
                "OnOutputValue": 1.0,
                "OffOutputValue": 0.0,
            },
        )
    )
    delay = root.add(
        Block("dly", "UnitDelay", parameters={"InitialCondition": 0.0})
    )
    scope = root.add(Block("probe", "Scope", inputs=1, outputs=0))
    out1 = root.add(
        Block("Out1", "Outport", inputs=1, outputs=0, parameters={"Port": 1})
    )
    out2 = root.add(
        Block("Out2", "Outport", inputs=1, outputs=0, parameters={"Port": 2})
    )
    root.connect(inport.output(), neg.input())
    root.connect(neg.output(), diff.input(1))
    root.connect(offset.output(), diff.input(2))
    root.connect(diff.output(), prod.input(1))
    root.connect(neg.output(), prod.input(2))
    root.connect(prod.output(), sat.input())
    root.connect(sat.output(), mag.input())
    root.connect(mag.output(), relay.input())
    root.connect(relay.output(), delay.input())
    root.connect(delay.output(), out1.input())
    root.connect(mag.output(), out2.input())
    root.connect(mag.output(), scope.input())
    return model


RAGGED = [
    {"In1": [0.0, 1.0, -1.0, 0.4]},
    {"In1": []},
    {"In1": [math.nan, 0.2]},
    None,
    {"In1": [-0.0, math.inf, -math.inf, 0.1, 0.6, 0.05, 0.6]},
]


@requires_numpy
class TestDispatch:
    def test_slots_engine_loops_below_threshold(self):
        simulator = Simulator(_stateful_model(), engine=ENGINE_SLOTS)
        simulator.run_many(3, [None] * (libbatch.batch_threshold() - 1))
        assert simulator._batch_sim is None

    def test_slots_engine_batches_at_threshold(self):
        simulator = Simulator(_stateful_model(), engine=ENGINE_SLOTS)
        simulator.run_many(3, [None] * libbatch.batch_threshold())
        assert simulator._batch_sim is not None

    def test_batch_engine_batches_any_size(self):
        simulator = Simulator(_stateful_model(), engine=ENGINE_BATCH)
        simulator.run_many(3, [None])
        assert simulator._batch_sim is not None

    def test_reference_engine_never_batches(self):
        simulator = Simulator(_stateful_model(), engine=ENGINE_REFERENCE)
        simulator.run_many(3, [None] * (libbatch.batch_threshold() + 4))
        assert simulator._batch_sim is None

    def test_threshold_env_override(self, monkeypatch):
        monkeypatch.setenv(libbatch.BATCH_THRESHOLD_ENV, "2")
        assert libbatch.batch_threshold() == 2
        simulator = Simulator(_stateful_model(), engine=ENGINE_SLOTS)
        simulator.run_many(3, [None, None])
        assert simulator._batch_sim is not None

    def test_threshold_env_garbage_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(libbatch.BATCH_THRESHOLD_ENV, "many")
        assert libbatch.batch_threshold() == libbatch.DEFAULT_BATCH_THRESHOLD
        monkeypatch.setenv(libbatch.BATCH_THRESHOLD_ENV, "-3")
        assert libbatch.batch_threshold() == libbatch.DEFAULT_BATCH_THRESHOLD

    def test_single_run_uses_scalar_path(self):
        batch = Simulator(_stateful_model(), engine=ENGINE_BATCH)
        slots = Simulator(_stateful_model(), engine=ENGINE_SLOTS)
        assert_identical(
            batch.run(5, inputs=RAGGED[0]), slots.run(5, inputs=RAGGED[0])
        )


class TestUnavailable:
    def test_batch_engine_requires_numpy(self, monkeypatch):
        monkeypatch.setattr(libbatch, "_np", None)
        assert not libbatch.numpy_available()
        with pytest.raises(BatchUnavailableError) as excinfo:
            Simulator(_stateful_model(), engine=ENGINE_BATCH)
        message = str(excinfo.value)
        assert "NumPy" in message
        assert "slots" in message  # points at the scalar fallback engines

    def test_scalar_engines_work_without_numpy(self, monkeypatch):
        monkeypatch.setattr(libbatch, "_np", None)
        for engine in (ENGINE_SLOTS, ENGINE_REFERENCE):
            simulator = Simulator(_stateful_model(), engine=engine)
            results = simulator.run_many(3, [None] * 20)
            assert len(results) == 20
            assert simulator._batch_sim is None


@requires_numpy
class TestEdgeCases:
    def test_empty_batch(self):
        assert Simulator(_stateful_model(), engine=ENGINE_BATCH).run_many(
            5, []
        ) == []

    def test_zero_steps(self):
        results = Simulator(_stateful_model(), engine=ENGINE_BATCH).run_many(
            0, RAGGED
        )
        assert [r.steps for r in results] == [0] * len(RAGGED)

    def test_negative_steps_rejected(self):
        with pytest.raises(SimulationError, match="steps"):
            Simulator(_stateful_model(), engine=ENGINE_BATCH).run_many(
                -1, [None]
            )

    def test_batch_of_one_equals_cold_single_run(self):
        (episode,) = Simulator(_stateful_model(), engine=ENGINE_BATCH).run_many(
            6, [RAGGED[0]]
        )
        fresh = Simulator(_stateful_model(), engine=ENGINE_SLOTS).run(
            6, inputs=RAGGED[0]
        )
        assert_identical(episode, fresh)


@requires_numpy
class TestBitIdentity:
    def test_ragged_batch_matches_scalar_episode_by_episode(self):
        batch = Simulator(_stateful_model(), engine=ENGINE_BATCH)
        scalar = Simulator(_stateful_model(), engine=ENGINE_SLOTS)
        monitored = batch.run_many(7, RAGGED)
        for episode, stimulus in zip(monitored, RAGGED):
            scalar.reset()
            assert_identical(episode, scalar.run(7, inputs=stimulus))

    def test_monitors_match_scalar(self):
        monitor = ["kernels/mag"]
        batch = Simulator(
            _stateful_model(), monitor=monitor, engine=ENGINE_BATCH
        )
        scalar = Simulator(
            _stateful_model(), monitor=monitor, engine=ENGINE_SLOTS
        )
        for episode, stimulus in zip(batch.run_many(5, RAGGED), RAGGED):
            scalar.reset()
            assert_identical(episode, scalar.run(5, inputs=stimulus))

    def test_warm_state_after_batch_matches_scalar_loop(self):
        """A batched run_many must leave the simulator in the same state
        the scalar loop would — the next single run() pins it."""
        batch = Simulator(_stateful_model(), engine=ENGINE_BATCH)
        scalar = Simulator(_stateful_model(), engine=ENGINE_SLOTS)
        batch.run_many(6, RAGGED)
        scalar.run_many(6, RAGGED)
        probe = {"In1": [0.2, 0.4]}
        assert_identical(
            batch._run_steps_slots(3, probe), scalar._run_steps_slots(3, probe)
        )

    def test_value_slot_census_matches_scalar(self):
        batch = Simulator(_stateful_model(), engine=ENGINE_BATCH)
        scalar = Simulator(_stateful_model(), engine=ENGINE_SLOTS)
        batch.run_many(4, RAGGED)
        scalar.run_many(4, RAGGED)
        assert batch._value_slots == scalar._value_slots

    def test_sfunction_spec_blocks_vectorize_on_crane(self):
        from repro.apps import crane
        from repro.core.flow import synthesize

        caam = synthesize(
            crane.build_model(), behaviors=crane.behaviors()
        ).caam
        batch = Simulator(caam, engine=ENGINE_BATCH)
        scalar = Simulator(caam, engine=ENGINE_SLOTS)
        stimuli = [
            {"Operator_getCommand": [0.1 * k for k in range(n)]}
            for n in (0, 3, 12, 25)
        ]
        episodes = batch.run_many(20, stimuli)
        assert batch._batch_sim.generic_blocks == 0
        for episode, stimulus in zip(episodes, stimuli):
            scalar.reset()
            assert_identical(episode, scalar.run(20, inputs=stimulus))

    def test_generic_fallback_blocks_stay_exact(self):
        """Blocks without batch kernels (extension library) run per
        episode inside the batch — results still bit-identical."""
        model = SimulinkModel("ext")
        root = model.root
        inport = root.add(
            Block(
                "In1", "Inport", inputs=0, outputs=1, parameters={"Port": 1}
            )
        )
        switch = root.add(
            Block("mm", "MinMax", inputs=2, parameters={"Function": "max"})
        )
        gain = root.add(Block("g", "Gain", parameters={"Gain": 3.0}))
        out = root.add(
            Block(
                "Out1", "Outport", inputs=1, outputs=0, parameters={"Port": 1}
            )
        )
        root.connect(inport.output(), switch.input(1))
        root.connect(inport.output(), switch.input(2))
        root.connect(switch.output(), gain.input())
        root.connect(gain.output(), out.input())
        batch = Simulator(model, engine=ENGINE_BATCH)
        scalar = Simulator(model, engine=ENGINE_SLOTS)
        assert batch._batch_engine_for(2).generic_blocks >= 1
        for episode, stimulus in zip(batch.run_many(4, RAGGED), RAGGED):
            scalar.reset()
            assert_identical(episode, scalar.run(4, inputs=stimulus))


@requires_numpy
class TestObservability:
    def test_batch_metrics_reported(self):
        recorder = obs.Recorder()
        with obs.use(recorder):
            Simulator(_stateful_model(), engine=ENGINE_BATCH).run_many(
                4, [None, None, None]
            )
        metrics = recorder.metrics
        assert metrics.counter("sim.batch.runs") == 1
        assert metrics.counter("sim.batch.episodes") == 3
        assert metrics.counter("sim.batch.steps") == 12
        assert metrics.gauge_value("sim.batch.steps_per_sec") > 0
        assert metrics.gauge_value("sim.batch.vectorized_blocks") > 0
        assert "sim.batch.run" in [span.name for span in recorder.spans]

    def test_run_many_span_flags_batched_dispatch(self):
        recorder = obs.Recorder()
        with obs.use(recorder):
            Simulator(_stateful_model(), engine=ENGINE_BATCH).run_many(
                2, [None, None]
            )
        spans = {span.name: span for span in recorder.spans}
        assert spans["simulink.run_many"].attrs["batched"] is True
