"""Unit tests for the ASCII tree renderer (repro.simulink.render)."""

import pytest

from repro.simulink import (
    Block,
    CaamModel,
    SimulinkModel,
    SubSystem,
    SWFIFO,
    make_channel,
    render_tree,
)


class TestRenderTree:
    def test_plain_model(self):
        model = SimulinkModel("m")
        model.root.add(Block("g", "Gain", parameters={"Gain": 2.0}))
        text = render_tree(model)
        assert text.startswith("m\n")
        assert "g  [Gain Gain=2.0]" in text
        assert "[CAAM]" not in text

    def test_caam_roles_annotated(self, didactic_result):
        text = render_tree(didactic_result.caam)
        assert text.startswith("didactic  [CAAM]")
        assert "CPU1  <<CPU-SS>>" in text
        assert "T1  <<Thread-SS>>" in text
        assert "[CommChannel GFIFO" in text
        assert "[CommChannel SWFIFO" in text
        assert "mult  [Product]" in text

    def test_auto_inserted_delay_marked(self, crane_result):
        text = render_tree(crane_result.caam)
        assert "Delay  [UnitDelay (auto-inserted)]" in text

    def test_wiring_listing(self):
        model = SimulinkModel("m")
        a = model.root.add(Block("a", "Constant", inputs=0))
        b = model.root.add(Block("b", "Gain"))
        model.root.connect(a.output(), b.input())
        text = render_tree(model, wiring=True)
        assert "wiring:" in text
        assert "a.out1 -> b.in1" in text

    def test_nested_indentation(self):
        model = SimulinkModel("m")
        outer = SubSystem("outer")
        model.root.add(outer)
        inner = SubSystem("inner")
        outer.system.add(inner)
        inner.system.add(Block("deep", "Gain"))
        text = render_tree(model)
        lines = text.splitlines()
        deep_line = next(l for l in lines if "deep" in l)
        assert deep_line.startswith("   " * 0 + "|") or deep_line.startswith("   ")
        assert deep_line.index("deep") > 6  # indented at depth 3
