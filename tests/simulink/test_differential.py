"""Differential tests: slot-compiled engine vs the reference interpreter.

The slot engine is an optimization, not a re-specification: on any model
the two engines must produce bit-identical results — outputs, scope
histories, monitored signals, and the rendered CSV (which also pins the
sign of zero).  Random block diagrams are generated with hypothesis;
the paper's demo pipelines (crane, synthetic) are checked end-to-end.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulink import (
    ENGINE_BATCH,
    ENGINE_REFERENCE,
    ENGINE_SLOTS,
    Block,
    Simulator,
    SimulinkModel,
    numpy_available,
)

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="requires NumPy"
)
from repro.zoo.strategies import scenarios as zoo_scenarios

_FINITE = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def _outport(name, port):
    return Block(name, "Outport", inputs=1, outputs=0, parameters={"Port": port})


@st.composite
def _random_models(draw):
    """A random executable dataflow diagram plus a stimulus batch.

    Sources (Inports/Constants) feed a random DAG of arithmetic and
    stateful blocks; wiring only ever reaches backwards, so the diagram
    is loop-free by construction.  Stimulus traces are deliberately
    ragged (shorter or longer than the run) to exercise padding.
    """
    model = SimulinkModel("m")
    signals = []  # output ports available for wiring

    n_in = draw(st.integers(min_value=1, max_value=3))
    for i in range(n_in):
        block = model.root.add(
            Block(
                f"In{i + 1}",
                "Inport",
                inputs=0,
                outputs=1,
                parameters={"Port": i + 1},
            )
        )
        signals.append(block.output())
    for i in range(draw(st.integers(min_value=0, max_value=2))):
        block = model.root.add(
            Block(
                f"k{i}",
                "Constant",
                inputs=0,
                parameters={"Value": draw(_FINITE)},
            )
        )
        signals.append(block.output())

    kinds = ("gain", "sum", "product", "saturation", "delay", "abs", "relay")
    for i in range(draw(st.integers(min_value=1, max_value=8))):
        kind = draw(st.sampled_from(kinds))
        name = f"b{i}"
        if kind == "gain":
            block = Block(name, "Gain", parameters={"Gain": draw(_FINITE)})
        elif kind == "sum":
            signs = draw(st.sampled_from(["++", "+-", "-+", "--", "+++"]))
            block = Block(
                name, "Sum", inputs=len(signs), parameters={"Inputs": signs}
            )
        elif kind == "product":
            block = Block(name, "Product", inputs=2)
        elif kind == "saturation":
            low = draw(_FINITE)
            high = draw(_FINITE)
            low, high = min(low, high), max(low, high)
            block = Block(
                name,
                "Saturation",
                parameters={"LowerLimit": low, "UpperLimit": high},
            )
        elif kind == "delay":
            block = Block(
                name, "UnitDelay", parameters={"InitialCondition": draw(_FINITE)}
            )
        elif kind == "abs":
            block = Block(name, "Abs")
        else:
            low = draw(_FINITE)
            high = draw(_FINITE)
            block = Block(
                name,
                "Relay",
                parameters={
                    "OnSwitchValue": max(low, high),
                    "OffSwitchValue": min(low, high),
                    "OnOutputValue": draw(_FINITE),
                    "OffOutputValue": draw(_FINITE),
                },
            )
        model.root.add(block)
        for port in range(1, block.num_inputs + 1):
            source = draw(st.sampled_from(signals))
            model.root.connect(source, block.input(port))
        signals.append(block.output())

    for i in range(draw(st.integers(min_value=1, max_value=2))):
        out = model.root.add(_outport(f"Out{i + 1}", i + 1))
        model.root.connect(draw(st.sampled_from(signals)), out.input())
    if draw(st.booleans()):
        scope = model.root.add(Block("scope", "Scope", outputs=0))
        model.root.connect(draw(st.sampled_from(signals)), scope.input())

    steps = draw(st.integers(min_value=0, max_value=12))
    stimuli = []
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        stimulus = {}
        for i in range(n_in):
            length = draw(st.integers(min_value=0, max_value=steps + 2))
            stimulus[f"In{i + 1}"] = [draw(_FINITE) for _ in range(length)]
        stimuli.append(stimulus)

    monitor = []
    if draw(st.booleans()) and len(model.root.blocks) > n_in:
        target = draw(st.sampled_from(model.root.blocks))
        monitor.append(f"m/{target.name}")
    return model, steps, stimuli, monitor


def _identical(a, b):
    assert a.steps == b.steps
    assert a.outputs == b.outputs
    assert a.signals == b.signals
    assert a.scopes == b.scopes
    assert a.to_csv() == b.to_csv()


class TestRandomizedDifferential:
    @given(_random_models())
    @settings(max_examples=60, deadline=None)
    def test_engines_bit_identical(self, case):
        model, steps, stimuli, monitor = case
        slots = Simulator(model, monitor=monitor, engine=ENGINE_SLOTS)
        reference = Simulator(model, monitor=monitor, engine=ENGINE_REFERENCE)
        for stimulus in stimuli:
            _identical(
                slots.run(steps, inputs=stimulus),
                reference.run(steps, inputs=stimulus),
            )

    @given(_random_models())
    @settings(max_examples=30, deadline=None)
    def test_engines_identical_after_reset(self, case):
        model, steps, stimuli, monitor = case
        slots = Simulator(model, monitor=monitor, engine=ENGINE_SLOTS)
        reference = Simulator(model, monitor=monitor, engine=ENGINE_REFERENCE)
        slots.run(steps, inputs=stimuli[0])
        reference.run(steps, inputs=stimuli[0])
        slots.reset()
        reference.reset()
        _identical(
            slots.run(steps, inputs=stimuli[0]),
            reference.run(steps, inputs=stimuli[0]),
        )

    @given(_random_models())
    @settings(max_examples=30, deadline=None)
    def test_run_many_matches_reference_loop(self, case):
        model, steps, stimuli, monitor = case
        batch = Simulator(model, monitor=monitor, engine=ENGINE_SLOTS).run_many(
            steps, stimuli
        )
        reference = Simulator(model, monitor=monitor, engine=ENGINE_REFERENCE)
        for episode, stimulus in zip(batch, stimuli):
            reference.reset()
            _identical(episode, reference.run(steps, inputs=stimulus))


@requires_numpy
class TestBatchEngineDifferential:
    """The vectorized batch engine against the scalar slot oracle."""

    @given(_random_models())
    @settings(max_examples=60, deadline=None)
    def test_batch_run_many_bit_identical(self, case):
        model, steps, stimuli, monitor = case
        batched = Simulator(
            model, monitor=monitor, engine=ENGINE_BATCH
        ).run_many(steps, stimuli)
        scalar = Simulator(model, monitor=monitor, engine=ENGINE_SLOTS)
        for episode, stimulus in zip(batched, stimuli):
            scalar.reset()
            _identical(episode, scalar.run(steps, inputs=stimulus))

    @given(_random_models())
    @settings(max_examples=20, deadline=None)
    def test_auto_dispatch_above_threshold_bit_identical(self, case):
        model, steps, stimuli, monitor = case
        # Pad the batch past the dispatch threshold so the plain slots
        # engine takes the vectorized path on its own.
        from repro.simulink import batch as libbatch

        stimuli = (stimuli * libbatch.batch_threshold())[
            : libbatch.batch_threshold() + 1
        ]
        dispatched = Simulator(
            model, monitor=monitor, engine=ENGINE_SLOTS
        )
        episodes = dispatched.run_many(steps, stimuli)
        assert dispatched._batch_sim is not None
        scalar = Simulator(model, monitor=monitor, engine=ENGINE_REFERENCE)
        for episode, stimulus in zip(episodes, stimuli):
            scalar.reset()
            _identical(episode, scalar.run(steps, inputs=stimulus))


@pytest.fixture(scope="module")
def crane_caam():
    from repro.apps import crane
    from repro.core import synthesize

    return synthesize(crane.build_model(), behaviors=crane.behaviors()).caam


@pytest.fixture(scope="module")
def synthetic_caam():
    from repro.apps import synthetic
    from repro.core import synthesize

    return synthesize(synthetic.build_model()).caam


class TestDemoPipelineDifferential:
    def test_crane_bit_identical(self, crane_caam):
        stimulus = {"In1": [0.0] * 100, "In2": [0.0] * 100, "In3": [5.0] * 100}
        slots = Simulator(crane_caam, engine=ENGINE_SLOTS)
        reference = Simulator(crane_caam, engine=ENGINE_REFERENCE)
        _identical(
            slots.run(100, inputs=stimulus),
            reference.run(100, inputs=stimulus),
        )
        # Warm state after the first run must stay in lockstep too.
        _identical(
            slots.run(50, inputs=stimulus),
            reference.run(50, inputs=stimulus),
        )

    def test_synthetic_bit_identical(self, synthetic_caam):
        slots = Simulator(synthetic_caam, engine=ENGINE_SLOTS)
        reference = Simulator(synthetic_caam, engine=ENGINE_REFERENCE)
        _identical(slots.run(200), reference.run(200))

    @requires_numpy
    def test_crane_batch_engine_bit_identical(self, crane_caam):
        stimuli = [
            {"In1": [0.1 * k] * 60, "In3": [5.0] * (k % 70)}
            for k in range(24)
        ]
        batched = Simulator(crane_caam, engine=ENGINE_BATCH).run_many(
            60, stimuli
        )
        scalar = Simulator(crane_caam, engine=ENGINE_SLOTS)
        for episode, stimulus in zip(batched, stimuli):
            scalar.reset()
            _identical(episode, scalar.run(60, inputs=stimulus))


class TestZooScenarioDifferential:
    """The hypothesis lift from block graphs to full UML scenarios.

    Instead of wiring random Simulink diagrams directly, these draw
    complete zoo scenarios (threads, channels, deployments, feedback)
    and push them through the whole flow before comparing engines —
    the shrunk counterexample is a replayable (seed, index, family)
    triple.
    """

    @given(case=zoo_scenarios())
    @settings(max_examples=15, deadline=None)
    def test_full_flow_engines_bit_identical(self, case):
        from repro.core import synthesize
        from repro.zoo import stimuli_for

        result = synthesize(
            case.model,
            auto_allocate=case.params.auto_allocate,
            behaviors=case.behaviors,
        )
        inports = sorted(
            (b for b in result.caam.root.blocks if b.block_type == "Inport"),
            key=lambda b: int(b.parameters.get("Port", 0)),
        )
        stimuli = stimuli_for(case.params, [b.name for b in inports])
        slots = Simulator(result.caam, engine=ENGINE_SLOTS)
        reference = Simulator(result.caam, engine=ENGINE_REFERENCE)
        for stimulus in stimuli:
            slots.reset()
            reference.reset()
            _identical(
                slots.run(case.params.steps, inputs=stimulus),
                reference.run(case.params.steps, inputs=stimulus),
            )
