"""Unit tests for the Simulink metamodel (repro.simulink.model)."""

import pytest

from repro.simulink import (
    Block,
    PortError,
    SimulinkError,
    SimulinkModel,
    SubSystem,
    flatten,
)


def _gain(name="g", gain=2.0):
    return Block(name, "Gain", parameters={"Gain": gain})


class TestBlock:
    def test_name_constraints(self):
        with pytest.raises(SimulinkError):
            Block("", "Gain")
        with pytest.raises(SimulinkError):
            Block("a/b", "Gain")

    def test_port_accessors(self):
        block = Block("s", "Sum", inputs=2)
        assert block.input(2).index == 2
        assert len(block.inputs()) == 2
        assert len(block.outputs()) == 1

    def test_out_of_range_port_rejected(self):
        block = Block("g", "Gain")
        with pytest.raises(PortError):
            block.input(2)
        with pytest.raises(PortError):
            block.output(5)

    def test_path(self):
        model = SimulinkModel("m")
        sub = SubSystem("S")
        model.root.add(sub)
        inner = sub.system.add(_gain())
        assert inner.path == "m/S/g"
        assert sub.path == "m/S"


class TestSystem:
    def test_duplicate_block_name_rejected(self):
        model = SimulinkModel("m")
        model.root.add(_gain("a"))
        with pytest.raises(SimulinkError):
            model.root.add(_gain("a"))

    def test_connect_and_driver_lookup(self):
        model = SimulinkModel("m")
        a = model.root.add(_gain("a"))
        b = model.root.add(_gain("b"))
        line = model.root.connect(a.output(), b.input())
        assert model.root.driver_of(b.input()) is line
        assert model.root.driver_of(a.input()) is None

    def test_connect_merges_branches_on_same_source(self):
        model = SimulinkModel("m")
        a = model.root.add(_gain("a"))
        b = model.root.add(_gain("b"))
        c = model.root.add(_gain("c"))
        line1 = model.root.connect(a.output(), b.input())
        line2 = model.root.connect(a.output(), c.input())
        assert line1 is line2
        assert len(line1.destinations) == 2
        assert len(model.root.lines) == 1

    def test_double_driving_an_input_rejected(self):
        model = SimulinkModel("m")
        a = model.root.add(_gain("a"))
        b = model.root.add(_gain("b"))
        c = model.root.add(_gain("c"))
        model.root.connect(a.output(), c.input())
        with pytest.raises(PortError, match="already driven"):
            model.root.connect(b.output(), c.input())

    def test_connect_rejects_foreign_ports(self):
        model = SimulinkModel("m")
        a = model.root.add(_gain("a"))
        foreign = _gain("f")
        with pytest.raises(PortError):
            model.root.connect(a.output(), foreign.input())

    def test_block_lookup(self):
        model = SimulinkModel("m")
        a = model.root.add(_gain("a"))
        assert model.root.block("a") is a
        assert model.root.has_block("a")
        with pytest.raises(SimulinkError):
            model.root.block("zz")


class TestSubSystem:
    def test_ports_grow_with_port_blocks(self):
        sub = SubSystem("S")
        assert sub.num_inputs == 0
        sub.add_inport("In1")
        sub.add_inport("In2")
        sub.add_outport("Out1")
        assert (sub.num_inputs, sub.num_outputs) == (2, 1)

    def test_port_blocks_sorted_by_port_number(self):
        sub = SubSystem("S")
        sub.add_inport("first")
        sub.add_inport("second")
        assert [b.name for b in sub.inport_blocks()] == ["first", "second"]
        assert sub.inport_blocks()[1].parameters["Port"] == 2

    def test_named_port_resolution(self):
        sub = SubSystem("S")
        sub.add_inport("a")
        sub.add_inport("b")
        assert sub.inport_named("b").index == 2
        with pytest.raises(PortError):
            sub.inport_named("zz")
        sub.add_outport("o")
        assert sub.outport_named("o").index == 1


class TestPathLookup:
    def _hier(self):
        model = SimulinkModel("m")
        cpu = SubSystem("CPU1")
        model.root.add(cpu)
        thread = SubSystem("T1")
        cpu.system.add(thread)
        thread.system.add(_gain("calc"))
        return model

    def test_find_with_and_without_model_prefix(self):
        model = self._hier()
        assert model.find("m/CPU1/T1/calc").name == "calc"
        assert model.find("CPU1/T1/calc").name == "calc"

    def test_find_rejects_path_through_primitive(self):
        model = self._hier()
        with pytest.raises(SimulinkError):
            model.find("CPU1/T1/calc/deeper")

    def test_counting_helpers(self):
        model = self._hier()
        assert model.count_blocks() == 3
        assert model.count_blocks("Gain") == 1
        assert len(model.all_systems()) == 3


class TestFlatten:
    def test_flatten_dissolves_boundaries(self):
        model = SimulinkModel("m")
        sub = SubSystem("S")
        model.root.add(sub)
        inp = sub.add_inport("In1")
        outp = sub.add_outport("Out1")
        inner = sub.system.add(_gain("inner"))
        sub.system.connect(inp.output(), inner.input())
        sub.system.connect(inner.output(), outp.input())
        src = model.root.add(Block("c", "Constant", inputs=0))
        dst = model.root.add(_gain("after"))
        model.root.connect(src.output(), sub.input(1))
        model.root.connect(sub.output(1), dst.input())
        blocks, edges = flatten(model)
        names = {b.name for b in blocks}
        assert names == {"c", "inner", "after"}
        edge_names = {(s.block.name, d.block.name) for s, d in edges}
        assert edge_names == {("c", "inner"), ("inner", "after")}

    def test_flatten_keeps_root_ports(self):
        model = SimulinkModel("m")
        inp = model.root.add(
            Block("In1", "Inport", inputs=0, outputs=1, parameters={"Port": 1})
        )
        out = model.root.add(
            Block("Out1", "Outport", inputs=1, outputs=0, parameters={"Port": 1})
        )
        model.root.connect(inp.output(), out.input())
        blocks, edges = flatten(model)
        assert {b.name for b in blocks} == {"In1", "Out1"}
        assert len(edges) == 1

    def test_flatten_unconnected_subsystem_port(self):
        model = SimulinkModel("m")
        sub = SubSystem("S")
        model.root.add(sub)
        sub.add_inport("In1")  # nothing inside consumes it
        src = model.root.add(Block("c", "Constant", inputs=0))
        model.root.connect(src.output(), sub.input(1))
        blocks, edges = flatten(model)
        assert edges == []

    def test_flatten_dedupes_boundary_edges(self):
        model = SimulinkModel("m")
        sub = SubSystem("S")
        model.root.add(sub)
        inp = sub.add_inport("In1")
        inner = sub.system.add(_gain("inner"))
        sub.system.connect(inp.output(), inner.input())
        src = model.root.add(Block("c", "Constant", inputs=0))
        model.root.connect(src.output(), sub.input(1))
        _, edges = flatten(model)
        assert len(edges) == 1
