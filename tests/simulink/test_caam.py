"""Unit tests for the CAAM layer (repro.simulink.caam)."""

import pytest

from repro.simulink import (
    Block,
    CaamError,
    CaamModel,
    CpuSubsystem,
    GFIFO,
    SWFIFO,
    ThreadSubsystem,
    is_channel,
    is_cpu_subsystem,
    is_thread_subsystem,
    make_channel,
    validate_caam,
)


def _minimal_caam():
    caam = CaamModel("c")
    cpu1 = caam.add_cpu("CPU1")
    cpu2 = caam.add_cpu("CPU2")
    t1 = caam.add_thread("CPU1", "T1")
    t2 = caam.add_thread("CPU2", "T2")
    return caam, cpu1, cpu2, t1, t2


class TestConstruction:
    def test_add_cpu_and_thread(self):
        caam, cpu1, cpu2, t1, t2 = _minimal_caam()
        assert [c.name for c in caam.cpus()] == ["CPU1", "CPU2"]
        assert caam.thread("T1") is t1
        assert caam.cpu_of_thread("T2") is cpu2

    def test_unknown_lookups_raise(self):
        caam, *_ = _minimal_caam()
        with pytest.raises(CaamError):
            caam.cpu("CPU9")
        with pytest.raises(CaamError):
            caam.thread("T9")
        with pytest.raises(CaamError):
            caam.cpu_of_thread("T9")

    def test_role_predicates(self):
        caam, cpu1, _, t1, _ = _minimal_caam()
        assert is_cpu_subsystem(cpu1)
        assert is_thread_subsystem(t1)
        assert not is_cpu_subsystem(t1)
        assert not is_thread_subsystem(cpu1)


class TestChannels:
    def test_make_channel_parameters(self):
        channel = make_channel("ch", SWFIFO, 64)
        assert is_channel(channel)
        assert channel.parameters["Protocol"] == SWFIFO
        assert channel.parameters["DataWidthBits"] == 64

    def test_unknown_protocol_rejected(self):
        with pytest.raises(CaamError):
            make_channel("ch", "MAGICFIFO")

    def test_channel_census(self):
        caam, cpu1, cpu2, t1, t2 = _minimal_caam()
        intra = make_channel("sw", SWFIFO)
        cpu1.system.add(intra)
        inter = make_channel("gf", GFIFO)
        caam.root.add(inter)
        assert len(caam.channels()) == 2
        assert caam.intra_cpu_channels() == [intra]
        assert caam.inter_cpu_channels() == [inter]


class TestSummary:
    def test_summary_counts(self):
        caam, cpu1, cpu2, t1, t2 = _minimal_caam()
        t1.system.add(Block("f", "S-Function"))
        t1.system.add(Block("z", "UnitDelay"))
        summary = caam.summary()
        assert summary.cpus == 2
        assert summary.threads == 2
        assert summary.sfunctions == 1
        assert summary.delays == 1
        assert "2 CPU-SS" in str(summary)


class TestValidation:
    def test_clean_caam_validates(self, didactic_result):
        assert validate_caam(didactic_result.caam) == []

    def test_wrong_protocol_at_top_level_flagged(self):
        caam, cpu1, cpu2, t1, t2 = _minimal_caam()
        bad = make_channel("bad", SWFIFO)
        caam.root.add(bad)
        problems = validate_caam(caam)
        assert any("must be GFIFO" in p for p in problems)

    def test_wrong_protocol_in_cpu_flagged(self):
        caam, cpu1, *_ = _minimal_caam()
        bad = make_channel("bad", GFIFO)
        cpu1.system.add(bad)
        problems = validate_caam(caam)
        assert any("must be SWFIFO" in p for p in problems)

    def test_unconnected_channel_flagged(self):
        caam, cpu1, *_ = _minimal_caam()
        orphan = make_channel("orphan", SWFIFO)
        cpu1.system.add(orphan)
        problems = validate_caam(caam)
        assert any("no producer" in p for p in problems)
        assert any("no consumer" in p for p in problems)

    def test_stray_block_at_top_level_flagged(self):
        caam, *_ = _minimal_caam()
        caam.root.add(Block("stray", "Gain"))
        problems = validate_caam(caam)
        assert any("non-architecture block" in p for p in problems)

    def test_stray_block_in_cpu_flagged(self):
        caam, cpu1, *_ = _minimal_caam()
        cpu1.system.add(Block("stray", "Gain"))
        problems = validate_caam(caam)
        assert any("non-architecture block 'stray'" in p for p in problems)
