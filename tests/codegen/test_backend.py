"""Tests for the backend front door (repro.codegen.backend) and its obs."""

import pytest

from repro import obs
from repro.codegen import CodegenError, generate, generate_from_model

pytestmark = pytest.mark.codegen


class TestGenerate:
    def test_default_language_is_c(self, crane_result):
        generated = generate(crane_result.caam)
        assert sorted(generated.artifacts) == ["c"]
        assert sorted(generated.artifacts["c"]) == ["crane.c", "crane.h"]

    def test_unknown_language_rejected(self, crane_result):
        with pytest.raises(CodegenError, match="unsupported language"):
            generate(crane_result.caam, languages=("c", "cobol"))

    def test_empty_languages_rejected(self, crane_result):
        with pytest.raises(CodegenError, match="no languages"):
            generate(crane_result.caam, languages=())

    def test_files_merge_sources_and_manifest(self, crane_result):
        generated = generate(crane_result.caam, languages=("c", "java"))
        assert set(generated.files) == {
            "crane.c",
            "crane.h",
            "CraneSchedule.java",
            "trace_manifest.json",
        }
        assert generated.files["trace_manifest.json"] == generated.manifest_text

    def test_generate_from_model_carries_uml_provenance(self, crane_model):
        from repro.apps import crane

        generated = generate_from_model(
            crane_model, languages=("c",), behaviors=crane.behaviors()
        )
        buffers = [
            r for r in generated.manifest["records"] if r["kind"] == "buffer"
        ]
        assert any(record["uml_elements"] for record in buffers)


class TestObservability:
    def test_spans_and_counters(self, crane_result):
        recorder = obs.Recorder()
        with obs.use(recorder):
            generate(crane_result.caam, languages=("c", "java"))
        names = [span.name for span in recorder.spans]
        assert "codegen.schedule" in names
        assert "codegen.emit.c" in names
        assert "codegen.emit.java" in names
        (schedule_span,) = [
            s for s in recorder.spans if s.name == "codegen.schedule"
        ]
        assert schedule_span.attrs["pes"] == 3
        registry = recorder.metrics
        assert registry.counter("codegen.models") == 1
        assert registry.counter("codegen.schedules") == 1
        assert registry.counter("codegen.emit.c.files") == 2
        assert registry.counter("codegen.emit.java.files") == 1
        assert registry.counter("codegen.artifacts") == 3
