"""Unit tests for PASS derivation (repro.codegen.schedule)."""

import pytest

from repro.codegen import CodegenError, build_schedule

pytestmark = pytest.mark.codegen


class TestCraneSchedule:
    def test_one_pe_per_thread(self, crane_result):
        schedule = build_schedule(crane_result.caam)
        assert sorted(pe.name for pe in schedule.pes) == ["T1", "T2", "T3"]

    def test_firing_order_is_a_pass(self, crane_result):
        # Single-rate graph: every PE fires exactly once per period, and
        # producers fire before their consumers (T3 reads all channels).
        schedule = build_schedule(crane_result.caam)
        order = schedule.firing_order
        assert sorted(order) == ["T1", "T2", "T3"]
        assert order.index("T3") > order.index("T1")
        assert order.index("T3") > order.index("T2")

    def test_buffers_sized_from_analyzer_bounds(self, crane_result):
        schedule = build_schedule(crane_result.caam)
        bounds = schedule.analysis.buffer_bounds
        assert bounds  # the sdf pass produced real bounds
        for buffer in schedule.buffers:
            assert buffer.capacity >= 1
            assert buffer.capacity >= buffer.delay

    def test_stats_document(self, crane_result):
        stats = build_schedule(crane_result.caam).stats()
        assert stats == {
            "pes": 3,
            "blocks": 15,
            "buffers": 3,
            "initial_tokens": 0,
            "inports": 3,
            "outports": 1,
        }

    def test_schedule_is_deterministic(self, crane_result):
        first = build_schedule(crane_result.caam)
        second = build_schedule(crane_result.caam)
        assert first.firing_order == second.firing_order
        assert [b.capacity for b in first.buffers] == [
            b.capacity for b in second.buffers
        ]


class TestRejections:
    def test_opaque_callback_without_spec_rejected(self):
        # An S-Function carrying only a Python callback cannot be lowered
        # to static C/Java; the schedule builder must say which block.
        from repro.apps import crane
        from repro.core import synthesize

        behaviors = crane.behaviors()
        for callback in behaviors.values():
            if hasattr(callback, "codegen_spec"):
                del callback.codegen_spec
        result = synthesize(crane.build_model(), behaviors=behaviors)
        with pytest.raises(CodegenError, match="codegen_spec"):
            build_schedule(result.caam)
