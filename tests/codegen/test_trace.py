"""Unit tests for the digital-thread manifest (repro.codegen.trace)."""

import json

import pytest

from repro.codegen import (
    MANIFEST_SCHEMA,
    generate,
    manifest_json,
    verify_manifest,
)
from repro.codegen.trace import flatten_artifacts

pytestmark = pytest.mark.codegen


@pytest.fixture(scope="module")
def crane_generated(crane_result):
    return generate(
        crane_result.caam,
        languages=("c", "java"),
        uml_trace=crane_result.mapping.context.trace,
    )


class TestManifestShape:
    def test_required_keys_and_schema(self, crane_generated):
        manifest = crane_generated.manifest
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert set(manifest) == {
            "schema",
            "model",
            "generator",
            "languages",
            "schedule",
            "artifacts",
            "records",
            "requirements",
        }

    def test_every_artifact_is_hashed(self, crane_generated):
        sources = flatten_artifacts(crane_generated.artifacts)
        listed = {entry["file"] for entry in crane_generated.manifest["artifacts"]}
        assert listed == set(sources)
        for entry in crane_generated.manifest["artifacts"]:
            assert len(entry["sha256"]) == 64
            assert entry["bytes"] == len(sources[entry["file"]].encode())

    def test_records_cover_entries_functions_and_buffers(self, crane_generated):
        records = crane_generated.manifest["records"]
        kinds = {record["kind"] for record in records}
        assert kinds == {"entry", "function", "buffer"}
        functions = {r["symbol"]: r for r in records if r["kind"] == "function"}
        assert set(functions) == {"pe:T1", "pe:T2", "pe:T3"}
        # T2/T3 carry computation blocks that map back to the CAAM; T1 is
        # a pure forwarding firing (env samples straight into channels).
        assert functions["pe:T2"]["caam_blocks"] == ["crane/CPU1/T2/jobctrl"]
        assert len(functions["pe:T3"]["caam_blocks"]) == 14

    def test_buffers_map_back_to_uml_messages(self, crane_generated):
        buffers = [
            r for r in crane_generated.manifest["records"] if r["kind"] == "buffer"
        ]
        assert len(buffers) == 3
        # The crane channels come from Set/Get message pairs; provenance
        # must reach the UML interaction level.
        uml = [src for record in buffers for src in record["uml_elements"]]
        assert any("->" in entry for entry in uml)

    def test_requirement_per_outport_with_test_stub(self, crane_generated):
        (req,) = crane_generated.manifest["requirements"]
        assert req["id"] == "REQ-CRANE-001"
        assert "bit-identical" in req["text"] or "bit" in req["text"].lower()
        assert "def test_" in req["test_stub"]


class TestVerification:
    def test_round_trip_verifies(self, crane_generated):
        sources = flatten_artifacts(crane_generated.artifacts)
        manifest = json.loads(manifest_json(crane_generated.manifest))
        assert verify_manifest(manifest, sources) == []

    def test_tampered_source_is_detected(self, crane_generated):
        sources = dict(flatten_artifacts(crane_generated.artifacts))
        sources["crane.c"] = sources["crane.c"].replace("0x", "0X", 1)
        problems = verify_manifest(crane_generated.manifest, sources)
        assert any("crane.c" in problem for problem in problems)

    def test_missing_artifact_is_detected(self, crane_generated):
        sources = dict(flatten_artifacts(crane_generated.artifacts))
        del sources["CraneSchedule.java"]
        problems = verify_manifest(crane_generated.manifest, sources)
        assert any("CraneSchedule.java" in problem for problem in problems)

    def test_schema_mismatch_is_detected(self, crane_generated):
        manifest = json.loads(manifest_json(crane_generated.manifest))
        manifest["schema"] = "something/else"
        sources = flatten_artifacts(crane_generated.artifacts)
        assert any("schema" in p for p in verify_manifest(manifest, sources))

    def test_manifest_json_is_stable(self, crane_generated):
        assert manifest_json(crane_generated.manifest) == manifest_json(
            crane_generated.manifest
        )
        assert manifest_json(crane_generated.manifest).endswith("\n")
