"""Unit tests for the shared identifier sanitizer (repro.codegen.identifiers)."""

from repro.codegen import SymbolTable, camel, header_guard, sanitize


class TestSanitize:
    def test_valid_identifier_passes_through(self):
        assert sanitize("crane_ctrl2") == "crane_ctrl2"

    def test_spaces_and_hyphens_collapse_to_underscores(self):
        assert sanitize("lift controller-2") == "lift_controller_2"

    def test_runs_of_invalid_characters_collapse_to_one(self):
        assert sanitize("a -- b") == "a_b"

    def test_leading_digit_gets_underscore_prefix(self):
        assert sanitize("2fast") == "_2fast"

    def test_empty_name_falls_back(self):
        assert sanitize("   ") == "id"
        assert sanitize("!!!", fallback="pe") == "pe"

    def test_reserved_words_get_suffix(self):
        assert sanitize("double") == "double_"
        assert sanitize("class") == "class_"
        assert sanitize("Switch") == "Switch_"  # case-insensitive

    def test_deterministic(self):
        assert sanitize("a b-c") == sanitize("a b-c")


class TestCamel:
    def test_snake_to_camel(self):
        assert camel("mode_switch") == "ModeSwitch"

    def test_free_form(self):
        assert camel("lift-ctrl 2") == "LiftCtrl2"

    def test_empty_falls_back(self):
        assert camel("!!!") == "Model"

    def test_leading_digit_prefixed(self):
        assert camel("2nd stage") == "M2ndStage"


class TestHeaderGuard:
    def test_guard_macro_shape(self):
        assert header_guard("crane") == "REPRO_CRANE_H"
        assert header_guard("lift controller-2") == "REPRO_LIFT_CONTROLLER_2_H"


class TestSymbolTable:
    def test_same_name_same_symbol(self):
        table = SymbolTable("v_")
        assert table.symbol("x") == table.symbol("x") == "v_x"

    def test_colliding_names_get_stable_suffixes(self):
        table = SymbolTable()
        first = table.symbol("a b")
        second = table.symbol("a-b")
        third = table.symbol("a.b")
        assert first == "a_b"
        assert second == "a_b_2"
        assert third == "a_b_3"
        # stable on re-query
        assert table.symbol("a-b") == "a_b_2"
