"""Unit tests for the C and Java emitters (repro.codegen.cemit/javaemit)."""

import pytest

from repro.codegen import build_schedule
from repro.codegen.cemit import c_double, generate_c
from repro.codegen.javaemit import class_name_for, generate_java

pytestmark = pytest.mark.codegen


@pytest.fixture(scope="module")
def crane_schedule(crane_result):
    return build_schedule(crane_result.caam)


class TestCEmission:
    def test_artifact_names(self, crane_schedule):
        files = generate_c(crane_schedule)
        assert sorted(files) == ["crane.c", "crane.h"]

    def test_header_is_guarded_and_declares_the_api(self, crane_schedule):
        header = generate_c(crane_schedule)["crane.h"]
        assert "#ifndef REPRO_CRANE_H" in header
        assert "#define CRANE_N_INPUTS 3" in header
        assert "#define CRANE_N_OUTPUTS 1" in header
        assert "void crane_init(void);" in header
        assert "void crane_step(" in header

    def test_no_dynamic_allocation_or_scheduler(self, crane_schedule):
        source = generate_c(crane_schedule)["crane.c"]
        assert "malloc(" not in source
        assert "pthread" not in source
        # ring buffers are statically sized arrays
        assert "static double rb0[" in source

    def test_floats_are_hex_exact(self, crane_schedule):
        source = generate_c(crane_schedule)["crane.c"]
        # At least one literal in C99 hex-float form (bit-exact round trip).
        assert "0x1" in source

    def test_embedded_harness_is_opt_in(self, crane_schedule):
        source = generate_c(crane_schedule)["crane.c"]
        assert "#ifdef REPRO_CODEGEN_MAIN" in source
        assert source.count("{") == source.count("}")

    def test_emission_is_deterministic(self, crane_schedule):
        assert generate_c(crane_schedule) == generate_c(crane_schedule)


class TestJavaEmission:
    def test_class_name(self, crane_schedule):
        assert class_name_for(crane_schedule) == "CraneSchedule"
        files = generate_java(crane_schedule)
        assert list(files) == ["CraneSchedule.java"]

    def test_class_shape(self, crane_schedule):
        source = generate_java(crane_schedule)["CraneSchedule.java"]
        assert "public final class CraneSchedule" in source
        assert "public static final int N_INPUTS = 3;" in source
        assert "public static final int N_OUTPUTS = 1;" in source
        assert "public void step(double[] inputs, double[] outputs)" in source
        assert source.count("{") == source.count("}")

    def test_ring_buffers_are_fixed_arrays(self, crane_schedule):
        source = generate_java(crane_schedule)["CraneSchedule.java"]
        assert "private final double[] rb0 = new double[" in source

    def test_emission_is_deterministic(self, crane_schedule):
        assert generate_java(crane_schedule) == generate_java(crane_schedule)


class TestCDouble:
    def test_special_values(self):
        assert c_double(float("nan")) == "NAN"
        assert c_double(float("inf")) == "INFINITY"
        assert c_double(float("-inf")) == "-INFINITY"

    def test_zero_and_exact_hex(self):
        assert c_double(0.0) == "0x0.0p+0"
        value = 0.1
        assert c_double(value) == float.hex(value)
        assert float.fromhex(c_double(value)) == value
