"""Bit-identity of generated C/Java against the slot simulator (needs a toolchain)."""

import shutil
import subprocess
import tempfile

import pytest

from repro.codegen import (
    build_schedule,
    cc_available,
    differential_check,
)
from repro.codegen.cemit import generate_c
from repro.codegen.differential import (
    DifferentialError,
    _stimulus_lines,
    compile_c,
    run_binary,
)
from repro.simulink.simulator import Simulator

pytestmark = pytest.mark.codegen

needs_cc = pytest.mark.skipif(
    shutil.which("cc") is None
    and shutil.which("gcc") is None
    and shutil.which("clang") is None,
    reason="no C compiler on PATH",
)
needs_javac = pytest.mark.skipif(
    shutil.which("javac") is None or shutil.which("java") is None,
    reason="no JDK on PATH",
)


class TestCompilerDiscovery:
    def test_cc_available_matches_path(self):
        expected = any(shutil.which(name) for name in ("cc", "gcc", "clang"))
        assert bool(cc_available()) == expected


@needs_cc
class TestCraneDifferential:
    def test_crane_c_is_bit_identical(self, crane_result):
        episodes = [{}, {"In1": [0.5] * 100}, {"In2": [1.0, -1.0] * 50}]
        report = differential_check(crane_result.caam, episodes, steps=100)
        assert report.ok, [str(m) for m in report.mismatches]
        assert report.samples == len(episodes) * 100

    def test_mismatch_detection_is_real(self, crane_result):
        # Sabotage the generated C and prove the harness notices: the
        # differential check must not be vacuously green.
        schedule = build_schedule(crane_result.caam)
        artifacts = dict(generate_c(schedule))
        assert "outputs[0] =" in artifacts["crane.c"]
        artifacts["crane.c"] = artifacts["crane.c"].replace(
            "outputs[0] =", "outputs[0] = 1.0 +", 1
        )
        episodes = [{}]
        with tempfile.TemporaryDirectory() as workdir:
            binary = compile_c(artifacts, workdir)
            got = run_binary(binary, schedule, episodes, steps=5)
        want = Simulator(crane_result.caam, engine="slots").run(5)
        (name,) = [block.name for block in schedule.outports]
        assert got[0][name] != want.outputs[name]

    def test_compile_failure_raises(self, crane_result):
        schedule = build_schedule(crane_result.caam)
        artifacts = dict(generate_c(schedule))
        artifacts["crane.c"] += "\nthis is not C\n"
        with tempfile.TemporaryDirectory() as workdir:
            with pytest.raises(DifferentialError, match="compilation failed"):
                compile_c(artifacts, workdir)


@needs_javac
class TestCraneJavaDifferential:
    def test_crane_java_is_bit_identical(self, crane_result, tmp_path):
        from repro.codegen.javaemit import generate_java

        schedule = build_schedule(crane_result.caam)
        ((name, source),) = generate_java(schedule).items()
        (tmp_path / name).write_text(source)
        subprocess.run(
            ["javac", name], cwd=tmp_path, check=True, capture_output=True
        )
        episodes = [{}, {"In1": [0.25] * 50}]
        steps = 50
        stdin = _stimulus_lines(schedule, episodes, steps)
        proc = subprocess.run(
            ["java", name[: -len(".java")]],
            cwd=tmp_path,
            input=stdin,
            capture_output=True,
            text=True,
            check=True,
        )
        out_names = [block.name for block in schedule.outports]
        lines = proc.stdout.split("\n")
        reference = Simulator(crane_result.caam, engine="slots").run_many(
            steps, episodes
        )
        cursor = 0
        for episode in reference:
            for step in range(steps):
                tokens = lines[cursor].split()
                cursor += 1
                for port, token in zip(out_names, tokens):
                    assert float.fromhex(token) == episode.outputs[port][step]
