"""Case-study tests: the 12-thread synthetic example (paper §5.2)."""

import pytest

from repro.apps import synthetic
from repro.core import (
    allocate_from_model,
    inter_cluster_communication,
    linear_clustering,
    round_robin_clusters,
    task_graph_from_model,
)
from repro.simulink import GFIFO, is_executable, validate_caam


class TestTaskGraph:
    def test_twelve_threads_no_k(self):
        graph = synthetic.task_graph()
        assert len(graph.nodes) == 12
        assert "K" not in graph.nodes

    def test_graph_is_dag(self):
        assert synthetic.task_graph().is_dag()

    def test_extracted_graph_proportional_to_figure(self, synthetic_model):
        extracted = task_graph_from_model(synthetic_model)
        reference = synthetic.task_graph()
        for (src, dst), weight in reference.edges.items():
            assert extracted.edge_weight(src, dst) == weight * 32


class TestClustering:
    def test_fig7b_grouping(self):
        """Fig. 7(b): {A,B,C,D,F,J} {E,I} {G,M} {H,L}."""
        result = linear_clustering(synthetic.task_graph())
        assert set(result.as_sets()) == set(synthetic.EXPECTED_CLUSTERS)

    def test_four_clusters_from_sequence_diagram(self, synthetic_model):
        allocation = allocate_from_model(synthetic_model)
        grouped = {
            frozenset(allocation.plan.threads_on(cpu))
            for cpu in allocation.plan.cpus
        }
        assert grouped == set(synthetic.EXPECTED_CLUSTERS)

    def test_critical_path_is_heavy_chain(self):
        result = linear_clustering(synthetic.task_graph())
        assert result.critical_path == ["A", "B", "C", "D", "F", "J"]

    def test_clustering_beats_round_robin(self, synthetic_model):
        graph = task_graph_from_model(synthetic_model)
        clustered = linear_clustering(graph).clusters
        baseline = round_robin_clusters(graph, len(clustered))
        assert inter_cluster_communication(
            graph, clustered
        ) < inter_cluster_communication(graph, baseline)


class TestCaam:
    def test_fig8_top_level(self, synthetic_result):
        """Fig. 8: four CPU subsystems communicating through inter-SS
        channels."""
        caam = synthetic_result.caam
        assert len(caam.cpus()) == 4
        inter = caam.inter_cpu_channels()
        assert len(inter) == 3  # A->E, B->G, C->H cross cluster boundaries
        assert all(c.parameters["Protocol"] == GFIFO for c in inter)

    def test_intra_cluster_channels_swfifo(self, synthetic_result):
        # 11 edges total, 3 inter -> 8 intra.
        assert len(synthetic_result.caam.intra_cpu_channels()) == 8

    def test_every_thread_mapped(self, synthetic_result):
        names = {t.name for t in synthetic_result.caam.threads()}
        assert names == set(synthetic.THREADS)

    def test_caam_well_formed(self, synthetic_result):
        assert validate_caam(synthetic_result.caam) == []

    def test_executable(self, synthetic_result):
        assert is_executable(synthetic_result.caam)[0]

    def test_sfunction_per_thread(self, synthetic_result):
        assert synthetic_result.summary.sfunctions == 12
