"""Case-study tests: the Motion-JPEG decoder pipeline (DAC'07 workload)."""

import pytest

from repro.apps import mjpeg
from repro.core import synthesize
from repro.mpsoc import platform_for_caam, steady_state_interval
from repro.simulink import Simulator, validate_caam
from repro.uml import DeploymentPlan


@pytest.fixture(scope="module")
def result():
    return synthesize(
        mjpeg.build_model(), auto_allocate=True, behaviors=mjpeg.behaviors()
    )


class TestCodec:
    def test_encode_is_inverse_of_decode_math(self):
        pixels = mjpeg.sample_pixels(32)
        stream = mjpeg.encode(pixels)
        decoded = [
            min(
                max(
                    mjpeg.IDCT_GAIN
                    * (
                        mjpeg.Q_STEP
                        * (
                            mjpeg.VLD_SCALE * (s - mjpeg.HEADER_OFFSET)
                            + mjpeg.VLD_BIAS
                        )
                    )
                    + mjpeg.PIXEL_BIAS,
                    0.0,
                ),
                255.0,
            )
            for s in stream
        ]
        assert decoded == pixels

    def test_sample_pixels_in_range(self):
        assert all(0 <= p <= 255 for p in mjpeg.sample_pixels(64))


class TestPipeline:
    def test_five_thread_pipeline(self, result):
        assert result.summary.threads == 5
        assert {t.name for t in result.caam.threads()} == set(mjpeg.THREADS)
        assert result.warnings == []
        assert validate_caam(result.caam) == []

    def test_four_channels_in_chain(self, result):
        total = len(result.caam.channels())
        assert total == 4  # one hand-off per pipeline stage boundary

    def test_pixel_perfect_reconstruction(self, result):
        pixels = mjpeg.sample_pixels(16)
        simulator = Simulator(result.caam)
        trace = simulator.run(len(pixels), inputs={"In1": mjpeg.encode(pixels)})
        assert trace.output("Out1") == pixels

    def test_renderer_clamps_out_of_range(self, result):
        simulator = Simulator(result.caam)
        # A wildly out-of-range coefficient must clamp to [0, 255].
        trace = simulator.run(1, inputs={"In1": [10_000.0]})
        assert trace.output("Out1") == [255.0]
        simulator.reset()
        trace = simulator.run(1, inputs={"In1": [-10_000.0]})
        assert trace.output("Out1") == [0.0]


class TestThroughputSweep:
    def test_more_cpus_never_hurt_throughput(self):
        model = mjpeg.build_model()
        intervals = []
        for cpus in (1, 2, 3, 5):
            plan = DeploymentPlan.from_mapping(
                {t: f"CPU{i % cpus}" for i, t in enumerate(mjpeg.THREADS)}
            )
            result = synthesize(model, plan, behaviors=mjpeg.behaviors())
            platform = platform_for_caam(result.caam)
            intervals.append(steady_state_interval(result.caam, platform))
        assert intervals == sorted(intervals, reverse=True)
        assert intervals[-1] < intervals[0]  # 5 CPUs beat 1 CPU

    def test_throughput_bounded_by_heaviest_stage(self):
        model = mjpeg.build_model()
        plan = DeploymentPlan.from_mapping(
            {t: f"CPU{i}" for i, t in enumerate(mjpeg.THREADS)}
        )
        result = synthesize(model, plan, behaviors=mjpeg.behaviors())
        platform = platform_for_caam(result.caam)
        interval = steady_state_interval(result.caam, platform)
        # No CPU holds more than 2 functional blocks (100 cyc) + a GFIFO
        # transfer (30 cyc).
        assert interval <= 130.0
