"""Case-study tests: the crane control system (paper §5.1)."""

import pytest

from repro.apps import crane
from repro.simulink import Simulator, is_executable, validate_caam


class TestModelStructure:
    def test_three_threads_one_cpu(self, crane_model):
        """Paper: 'We divide the system into three threads ... the three
        threads were mapped to the same processor.'"""
        from repro.uml import DeploymentPlan

        plan = DeploymentPlan.from_nodes(crane_model.nodes)
        assert set(plan.threads) == {"T1", "T2", "T3"}
        assert len(plan.cpus) == 1

    def test_one_diagram_per_thread(self, crane_model):
        """Paper: 'each one is specified using UML sequence diagrams' —
        plus the behaviour diagrams of the control/limiter subsystems."""
        names = [i.name for i in crane_model.interactions]
        assert names[:3] == ["T1_sensing", "T2_jobcontrol", "T3_control"]
        assert "control_behavior" in names
        assert "limiter_behavior" in names


class TestSynthesis:
    def test_caam_census(self, crane_result):
        summary = crane_result.summary
        assert summary.cpus == 1
        assert summary.threads == 3
        assert summary.intra_cpu_channels == 3  # xc, alpha, ref
        assert summary.inter_cpu_channels == 0

    def test_exactly_one_delay_auto_inserted_in_t3(self, crane_result):
        """Fig. 5: 'a Delay that is automatically inserted' in T3."""
        assert crane_result.barriers_inserted == 1
        barrier = crane_result.optimization.barriers.inserted[0]
        assert barrier.delay_path == "crane/CPU1/T3/Delay"
        t3 = crane_result.caam.thread("T3")
        delays = t3.system.blocks_of_type("UnitDelay")
        assert len(delays) == 1
        assert delays[0].parameters.get("AutoInserted") is True

    def test_t3_matches_fig5_structure(self, crane_result):
        """Fig. 5: T3 is 'composed of one S-function and two subsystems
        and a Delay that is automatically inserted'."""
        t3 = crane_result.caam.thread("T3")
        assert t3.system.block("control").block_type == "SubSystem"
        assert t3.system.block("limiter").block_type == "SubSystem"
        assert t3.system.block("estimate").block_type == "S-Function"
        assert t3.system.block("sub").block_type == "Sum"
        assert t3.system.block("sub").parameters["Inputs"] == "+-"
        assert len(t3.system.blocks_of_type("SubSystem")) == 2
        assert len(t3.system.blocks_of_type("S-Function")) == 1
        assert len(t3.system.blocks_of_type("UnitDelay")) == 1

    def test_control_subsystem_behavior_detailed(self, crane_result):
        """'The subsystem control has its behavior detailed' — generated
        from the control_behavior interaction: a PD law with velocity
        estimation (UnitDelay + difference) and sway compensation."""
        control = crane_result.caam.thread("T3").system.block("control")
        inner = control.system
        assert len(inner.blocks_of_type("Gain")) == 5
        assert len(inner.blocks_of_type("Sum")) == 4  # dx + three subtractions
        assert len(inner.blocks_of_type("UnitDelay")) == 1  # velocity memory
        gains = {
            float(b.parameters["Gain"]) for b in inner.blocks_of_type("Gain")
        }
        assert gains == {crane.KP, crane.KV, crane.KA, crane.KR, 1.0 / crane.DT}

    def test_limiter_subsystem_saturates(self, crane_result):
        limiter = crane_result.caam.thread("T3").system.block("limiter")
        sat = limiter.system.blocks_of_type("Saturation")[0]
        assert sat.parameters["LowerLimit"] == -crane.V_MAX
        assert sat.parameters["UpperLimit"] == crane.V_MAX

    def test_without_barriers_model_deadlocks(self, crane_model):
        from repro.core import synthesize

        broken = synthesize(
            crane_model, behaviors=crane.behaviors(), insert_barriers=False
        )
        executable, cycle = is_executable(broken.caam)
        assert not executable
        assert all(path.startswith("crane/CPU1/T3/") for path in cycle)

    def test_delay_inserted_between_subsystems(self, crane_result):
        """The Delay sits at T3 level (between the subsystems), exactly
        where Fig. 5 draws it — not inside control or limiter."""
        barrier = crane_result.optimization.barriers.inserted[0]
        assert barrier.system_name == "T3"
        assert barrier.delay_path == "crane/CPU1/T3/Delay"

    def test_caam_well_formed(self, crane_result):
        assert validate_caam(crane_result.caam) == []

    def test_system_io(self, crane_result):
        root = crane_result.caam.root
        assert len(root.blocks_of_type("Inport")) == 3
        assert len(root.blocks_of_type("Outport")) == 1


class TestClosedLoop:
    def test_motor_voltage_saturates(self, crane_result):
        simulator = Simulator(crane_result.caam)
        trace = simulator.run(
            50,
            inputs={
                "In1": [0.0] * 50,       # position
                "In2": [0.0] * 50,       # angle
                "In3": [100.0] * 50,     # absurd command
            },
        )
        assert all(abs(v) <= crane.V_MAX for v in trace.output("Out1"))

    def test_car_moves_toward_target(self):
        from repro.core import synthesize

        result = synthesize(crane.build_model(), behaviors=crane.behaviors())
        simulator = Simulator(result.caam)
        plant = crane.CranePlant()
        target = 5.0
        for _ in range(100):
            trace = simulator.run(
                1,
                inputs={
                    "In1": [plant.xc],
                    "In2": [plant.alpha],
                    "In3": [target],
                },
            )
            plant.step(trace.output("Out1")[0])
        assert plant.xc > 1.0  # moved decisively toward the target

    def test_plant_dynamics_sane(self):
        plant = crane.CranePlant()
        for _ in range(10):
            plant.step(1.0)
        assert plant.xc > 0  # positive voltage moves the car forward
        plant2 = crane.CranePlant()
        for _ in range(10):
            plant2.step(0.0)
        assert plant2.xc == 0  # no input, no motion

    def test_load_position_combines_car_and_sway(self):
        plant = crane.CranePlant()
        plant.xc = 2.0
        plant.alpha = 0.1
        assert plant.load_position == pytest.approx(
            2.0 + plant.length * 0.09983, rel=1e-3
        )
