"""Case-study tests: the didactic Fig. 3 example."""

import pytest

from repro.apps import didactic
from repro.simulink import GFIFO, SWFIFO, Simulator, validate_caam
from repro.uml import DeploymentPlan, validate_model


class TestModel:
    def test_deployment_matches_figure(self, didactic_model):
        plan = DeploymentPlan.from_nodes(didactic_model.nodes)
        assert plan.as_mapping() == {"T1": "CPU1", "T2": "CPU1", "T3": "CPU2"}

    def test_model_validates(self, didactic_model):
        assert [
            i for i in validate_model(didactic_model) if i.severity == "error"
        ] == []


class TestCaamStructure:
    def test_architecture_census(self, didactic_result):
        summary = didactic_result.summary
        assert summary.cpus == 2
        assert summary.threads == 3
        assert summary.inter_cpu_channels == 1
        assert summary.intra_cpu_channels == 1
        assert summary.sfunctions == 3  # calc, dec, filter

    def test_mult_becomes_product_block(self, didactic_result):
        t1 = didactic_result.caam.thread("T1")
        assert t1.system.block("mult").block_type == "Product"

    def test_dec_becomes_sfunction(self, didactic_result):
        t1 = didactic_result.caam.thread("T1")
        assert t1.system.block("dec").block_type == "S-Function"

    def test_calc_ports_follow_signature(self, didactic_result):
        """'The a parameter from calc method and its return are mapped to
        an input port and an output port in the calc S-function.'"""
        calc = didactic_result.caam.thread("T1").system.block("calc")
        assert calc.num_inputs == 1
        assert calc.num_outputs == 1

    def test_r_arguments_wired(self, didactic_result):
        """'The r1 argument is passed from calc to mult, thus a connection
        is instantiated between these ports.'"""
        system = didactic_result.caam.thread("T1").system
        mult = system.block("mult")
        sources = {
            system.driver_of(mult.input(i)).source.block.name
            for i in (1, 2)
        }
        assert sources == {"calc", "dec"}

    def test_inter_cpu_channel_is_gfifo(self, didactic_result):
        channel = didactic_result.caam.inter_cpu_channels()[0]
        assert channel.parameters["Protocol"] == GFIFO
        assert channel.parent is didactic_result.caam.root

    def test_intra_cpu_channel_is_swfifo(self, didactic_result):
        channel = didactic_result.caam.intra_cpu_channels()[0]
        assert channel.parameters["Protocol"] == SWFIFO
        assert channel.parent is didactic_result.caam.cpu("CPU1").system

    def test_system_ports(self, didactic_result):
        root = didactic_result.caam.root
        assert [b.name for b in root.blocks_of_type("Inport")] == ["In1"]
        assert [b.name for b in root.blocks_of_type("Outport")] == ["Out1"]

    def test_caam_well_formed(self, didactic_result):
        assert validate_caam(didactic_result.caam) == []

    def test_no_mapping_warnings(self, didactic_result):
        assert didactic_result.warnings == []


class TestExecution:
    def test_executable_and_deterministic(self, didactic_result):
        simulator = Simulator(didactic_result.caam)
        trace = simulator.run(4, inputs={"In1": [2, 4, 6, 8]})
        # T3: filter(v) = v/2 ; T1: r2 = dec(x) = x-1 ; T2: out = gain(r2).
        # x arrives through the channel from T3's filter output.
        expected = [0.5 * v - 1.0 for v in (2, 4, 6, 8)]
        assert trace.output("Out1") == expected

    def test_mdl_round_trip_preserves_behaviour_structure(self, didactic_result):
        from repro.simulink import from_mdl

        loaded = from_mdl(didactic_result.mdl_text)
        assert loaded.summary() == didactic_result.caam.summary()
