#!/usr/bin/env python3
"""Regenerate docs/api.md from the package docstrings.

Run from the repository root:  python tools/gen_api_docs.py
"""

import importlib
import inspect
import os
import pkgutil

import repro


def _first_paragraph(doc):
    if not doc:
        return ""
    return doc.strip().split("\n\n")[0].replace("\n", " ")


def main() -> None:
    lines = [
        "# API Reference",
        "",
        "Generated from the package docstrings (first paragraph of each).",
        "Regenerate with `python tools/gen_api_docs.py`.",
        "",
        "Guides: [tutorial](tutorial.md) · "
        "[observability (tracing/metrics/profiling)](observability.md) · "
        "[parallelism & caching](parallel.md) · "
        "[batch server](server.md)",
        "",
    ]
    packages = sorted(
        name
        for _, name, _ in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        )
    )
    for name in packages:
        module = importlib.import_module(name)
        lines.append(f"## `{name}`")
        lines.append("")
        lines.append(_first_paragraph(module.__doc__))
        lines.append("")
        members = []
        for member_name, member in sorted(vars(module).items()):
            if member_name.startswith("_"):
                continue
            if not (inspect.isclass(member) or inspect.isfunction(member)):
                continue
            if getattr(member, "__module__", None) != name:
                continue
            kind = "class" if inspect.isclass(member) else "def"
            try:
                signature = str(inspect.signature(member))
                if len(signature) > 70:
                    signature = "(...)"
            except (ValueError, TypeError):
                signature = "(...)"
            members.append(
                (kind, member_name, signature, _first_paragraph(inspect.getdoc(member)))
            )
        for kind, member_name, signature, doc in members:
            lines.append(f"- **`{kind} {member_name}{signature}`** — {doc}")
        if members:
            lines.append("")
    target = os.path.join(os.path.dirname(__file__), "..", "docs", "api.md")
    with open(target, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    print(f"wrote {os.path.normpath(target)}")


if __name__ == "__main__":
    main()
