#!/usr/bin/env python3
"""Validate a SARIF 2.1.0 log produced by ``repro analyze --format sarif``.

Usage::

    python tools/validate_sarif.py crane.sarif [more.sarif ...]
    python tools/validate_sarif.py --min-results 1 didactic.sarif

Structural conformance checks for the subset of SARIF the analyzer
emits: schema/version pinning, the tool.driver rule table, and — for
every result — a resolvable ``ruleIndex``, a legal ``level``, a message,
and at least one location.  ``--min-results`` additionally requires the
log to carry that many results (CI's pathological-model smoke leg uses
it to prove the analyzer actually fired).  Exits non-zero with a message
on the first violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict

SARIF_VERSION = "2.1.0"
LEVELS = ("note", "warning", "error")


def validate_sarif(document: Dict[str, Any]) -> int:
    """Raise ``ValueError`` on the first violation; return result count."""
    if not isinstance(document, dict):
        raise ValueError("SARIF log must be a JSON object")
    if document.get("version") != SARIF_VERSION:
        raise ValueError(
            f"'version' is {document.get('version')!r}, "
            f"expected {SARIF_VERSION!r}"
        )
    if "$schema" not in document:
        raise ValueError("log lacks '$schema'")
    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        raise ValueError("'runs' must be a non-empty array")
    total = 0
    for run_index, run in enumerate(runs):
        total += _validate_run(run, f"runs[{run_index}]")
    return total


def _validate_run(run: Dict[str, Any], where: str) -> int:
    driver = run.get("tool", {}).get("driver")
    if not isinstance(driver, dict):
        raise ValueError(f"{where}: lacks 'tool.driver'")
    if not driver.get("name"):
        raise ValueError(f"{where}: driver has no 'name'")
    rules = driver.get("rules")
    if not isinstance(rules, list):
        raise ValueError(f"{where}: 'tool.driver.rules' must be an array")
    for position, rule in enumerate(rules):
        label = f"{where}: rule #{position}"
        if not rule.get("id"):
            raise ValueError(f"{label} has no 'id'")
        if not rule.get("shortDescription", {}).get("text"):
            raise ValueError(f"{label} has no shortDescription text")
        level = rule.get("defaultConfiguration", {}).get("level")
        if level not in LEVELS:
            raise ValueError(f"{label}: bad default level {level!r}")
    results = run.get("results")
    if not isinstance(results, list):
        raise ValueError(f"{where}: 'results' must be an array")
    for position, result in enumerate(results):
        _validate_result(result, rules, f"{where}: result #{position}")
    return len(results)


def _validate_result(result: Dict[str, Any], rules, where: str) -> None:
    rule_id = result.get("ruleId")
    if not rule_id:
        raise ValueError(f"{where} has no 'ruleId'")
    index = result.get("ruleIndex")
    if not isinstance(index, int) or not 0 <= index < len(rules):
        raise ValueError(f"{where}: 'ruleIndex' {index!r} out of range")
    if rules[index]["id"] != rule_id:
        raise ValueError(
            f"{where}: ruleIndex {index} resolves to "
            f"{rules[index]['id']!r}, not {rule_id!r}"
        )
    if result.get("level") not in LEVELS:
        raise ValueError(f"{where}: bad level {result.get('level')!r}")
    if not result.get("message", {}).get("text"):
        raise ValueError(f"{where} has no message text")
    locations = result.get("locations")
    if not isinstance(locations, list) or not locations:
        raise ValueError(f"{where} has no locations")
    logical = locations[0].get("logicalLocations")
    if not isinstance(logical, list) or not logical:
        raise ValueError(f"{where} has no logicalLocations")
    if not logical[0].get("fullyQualifiedName"):
        raise ValueError(f"{where}: logical location lacks a name")
    for suppression in result.get("suppressions", []):
        if suppression.get("kind") not in ("external", "inSource"):
            raise ValueError(
                f"{where}: bad suppression kind "
                f"{suppression.get('kind')!r}"
            )


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("logs", nargs="+", help="SARIF files to validate")
    parser.add_argument(
        "--min-results",
        type=int,
        default=0,
        help="require at least this many results across each log",
    )
    args = parser.parse_args(argv)
    try:
        for path in args.logs:
            with open(path, encoding="utf-8") as handle:
                count = validate_sarif(json.load(handle))
            if count < args.min_results:
                raise ValueError(
                    f"{path}: {count} result(s), expected at least "
                    f"{args.min_results}"
                )
            print(f"{path}: valid SARIF {SARIF_VERSION} ({count} result(s))")
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
