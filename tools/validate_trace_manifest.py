#!/usr/bin/env python3
"""Validate a digital-thread traceability manifest against its artifacts.

Usage::

    python tools/validate_trace_manifest.py gen/trace_manifest.json
    python tools/validate_trace_manifest.py gen/manifest.json --dir gen/

Re-verifies everything ``repro.codegen.trace.verify_manifest`` checks,
standalone (no repo import needed so release artifacts can be audited
anywhere): the schema tag, that every listed artifact exists next to the
manifest (or under ``--dir``) with a matching SHA-256 and byte size, that
every traceability record points only at listed artifacts, and that
every requirement targets a declared root Outport.  Exits non-zero with
a message on the first violation; CI's ``codegen-smoke`` job runs this
after a real ``repro codegen --backend sdf`` invocation.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from typing import Any, Dict, List

#: Must match repro.codegen.trace.MANIFEST_SCHEMA.
MANIFEST_SCHEMA = "repro.codegen.trace/1"

REQUIRED_KEYS = (
    "schema",
    "model",
    "generator",
    "languages",
    "schedule",
    "artifacts",
    "records",
    "requirements",
)

ARTIFACT_FIELDS = ("file", "language", "sha256", "bytes")

RECORD_KINDS = ("entry", "function", "buffer")


def validate_manifest(
    manifest: Dict[str, Any], directory: str
) -> List[str]:
    """Return a list of problems (empty when the manifest verifies)."""
    problems: List[str] = []
    for key in REQUIRED_KEYS:
        if key not in manifest:
            problems.append(f"manifest missing key {key!r}")
    if problems:
        return problems
    if manifest["schema"] != MANIFEST_SCHEMA:
        problems.append(
            f"unknown schema {manifest['schema']!r} "
            f"(expected {MANIFEST_SCHEMA!r})"
        )
    artifacts = manifest["artifacts"]
    if not isinstance(artifacts, list) or not artifacts:
        problems.append("'artifacts' must be a non-empty array")
        return problems
    listed = set()
    for index, entry in enumerate(artifacts):
        if not isinstance(entry, dict):
            problems.append(f"artifact #{index} is not an object")
            continue
        for field in ARTIFACT_FIELDS:
            if field not in entry:
                problems.append(f"artifact #{index} lacks {field!r}")
        filename = entry.get("file")
        if not filename:
            continue
        listed.add(filename)
        path = os.path.join(directory, filename)
        if not os.path.exists(path):
            problems.append(f"artifact {filename!r} not found in {directory}")
            continue
        with open(path, "rb") as handle:
            content = handle.read()
        digest = hashlib.sha256(content).hexdigest()
        if digest != entry.get("sha256"):
            problems.append(
                f"artifact {filename!r} hash mismatch: manifest says "
                f"{entry.get('sha256')!r}, file is {digest!r}"
            )
        if len(content) != entry.get("bytes"):
            problems.append(
                f"artifact {filename!r} size mismatch: manifest says "
                f"{entry.get('bytes')}, file is {len(content)} bytes"
            )
    records = manifest["records"]
    if not isinstance(records, list) or not records:
        problems.append("'records' must be a non-empty array")
        return problems
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            problems.append(f"record #{index} is not an object")
            continue
        if record.get("kind") not in RECORD_KINDS:
            problems.append(
                f"record #{index}: unknown kind {record.get('kind')!r}"
            )
        if "symbol" not in record or "caam_blocks" not in record:
            problems.append(
                f"record #{index} lacks 'symbol' or 'caam_blocks'"
            )
        for filename in record.get("artifacts", []):
            if filename not in listed:
                problems.append(
                    f"record #{index} ({record.get('symbol')}) points at "
                    f"unlisted artifact {filename!r}"
                )
    outports = set(manifest["schedule"].get("outports", []))
    for requirement in manifest["requirements"]:
        if requirement.get("outport") not in outports:
            problems.append(
                f"requirement {requirement.get('id')} targets unknown "
                f"outport {requirement.get('outport')!r}"
            )
        if "test_stub" not in requirement:
            problems.append(
                f"requirement {requirement.get('id')} lacks 'test_stub'"
            )
    return problems


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("manifest", help="trace_manifest.json to validate")
    parser.add_argument(
        "--dir",
        help="directory holding the artifacts (default: manifest's own)",
    )
    args = parser.parse_args(argv)
    directory = args.dir or os.path.dirname(os.path.abspath(args.manifest))
    try:
        with open(args.manifest, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    problems = validate_manifest(manifest, directory)
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(
        f"{args.manifest}: valid manifest for model "
        f"{manifest['model']!r} — {len(manifest['artifacts'])} artifact(s) "
        f"hash-verified, {len(manifest['records'])} record(s), "
        f"{len(manifest['requirements'])} requirement(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
