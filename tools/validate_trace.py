#!/usr/bin/env python3
"""Validate observability JSON artifacts against their documented schemas.

Usage::

    python tools/validate_trace.py trace.json [--metrics metrics.json]

Checks the Chrome-trace document (``--trace-out`` output) for Trace Event
Format conformance — Perfetto loadability — and optionally the metrics
snapshot (``--metrics-out`` output) for the registry schema and the
documented synthesis keys.  Exits non-zero with a message on the first
violation; CI's smoke job runs this after a real ``repro synthesize``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict

#: Event fields every complete ("X") event must carry.
REQUIRED_EVENT_FIELDS = ("name", "ph", "ts", "dur", "pid", "tid")

#: Timer keys a synthesize run must produce (one per flow step that ran).
SYNTHESIS_TIMER_KEYS = (
    "flow.synthesize",
    "flow.map",
    "flow.optimize",
    "optimize.channels",
    "optimize.barriers",
)

#: Counter key prefixes a synthesize run must produce.
SYNTHESIS_COUNTER_PREFIXES = ("mapping.rule.", "optimize.channels.")


def validate_trace(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid span trace."""
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("top level must be an object with 'traceEvents'")
    events = document["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty array")
    complete = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event #{index} is not an object")
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase != "X":
            raise ValueError(f"event #{index}: unexpected phase {phase!r}")
        complete += 1
        for field in REQUIRED_EVENT_FIELDS:
            if field not in event:
                raise ValueError(f"event #{index} lacks {field!r}")
        if not isinstance(event["ts"], int) or event["ts"] < 0:
            raise ValueError(f"event #{index}: ts must be a non-negative int")
        if not isinstance(event["dur"], int) or event["dur"] < 1:
            raise ValueError(f"event #{index}: dur must be a positive int")
    if complete == 0:
        raise ValueError("trace holds no complete ('X') events")


def validate_metrics(document: Dict[str, Any], *, synthesis: bool = True) -> None:
    """Raise ``ValueError`` unless ``document`` is a metrics snapshot.

    With ``synthesis`` (the default) also require the documented keys a
    ``repro synthesize`` run must emit.
    """
    for section in ("counters", "gauges", "timers"):
        if not isinstance(document.get(section), dict):
            raise ValueError(f"metrics must hold a {section!r} object")
    for name, stat in document["timers"].items():
        for field in ("count", "total", "min", "max", "mean"):
            if field not in stat:
                raise ValueError(f"timer {name!r} lacks {field!r}")
    if not synthesis:
        return
    for key in SYNTHESIS_TIMER_KEYS:
        if key not in document["timers"]:
            raise ValueError(f"missing documented timer {key!r}")
    for prefix in SYNTHESIS_COUNTER_PREFIXES:
        if not any(name.startswith(prefix) for name in document["counters"]):
            raise ValueError(f"no counter with documented prefix {prefix!r}")


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="--trace-out JSON file to validate")
    parser.add_argument("--metrics", help="--metrics-out JSON file to validate")
    args = parser.parse_args(argv)
    try:
        with open(args.trace, encoding="utf-8") as handle:
            validate_trace(json.load(handle))
        print(f"{args.trace}: valid Chrome-trace document")
        if args.metrics:
            with open(args.metrics, encoding="utf-8") as handle:
                validate_metrics(json.load(handle))
            print(f"{args.metrics}: valid metrics snapshot")
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
