#!/usr/bin/env python3
"""Validate observability JSON artifacts against their documented schemas.

Usage::

    python tools/validate_trace.py trace.json [--metrics metrics.json] [--tree]
    python tools/validate_trace.py --slo slo.json
    python tools/validate_trace.py --bench BENCH_obs.json

Checks the Chrome-trace document (``--trace-out`` output) for Trace Event
Format conformance — Perfetto loadability — and optionally the metrics
snapshot (``--metrics-out`` output) for the registry schema and the
documented synthesis keys.  ``--tree`` additionally requires the trace's
spans to form a single rooted tree: every ``args.parent_id`` must resolve
to another event in the document (no orphan roots from worker threads or
retries).  ``--slo`` validates a ``GET /slo`` / ``repro slo-report
--json`` document, and ``--bench`` validates the ``"slo"``,
``"zoo"``, ``"analysis"``, ``"codegen"`` and ``"simbatch"`` sections of
``BENCH_obs.json`` (server latency objectives, "synthesize the zoo"
throughput, static-analyzer throughput with its per-pass breakdown,
static-schedule codegen throughput, and looped-vs-batched simulation
rates).  Exits non-zero with a message on the
first violation; CI's smoke jobs run this after real ``repro``
invocations.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict

#: Event fields every complete ("X") event must carry.
REQUIRED_EVENT_FIELDS = ("name", "ph", "ts", "dur", "pid", "tid")

#: Timer keys a synthesize run must produce (one per flow step that ran).
SYNTHESIS_TIMER_KEYS = (
    "flow.synthesize",
    "flow.map",
    "flow.optimize",
    "optimize.channels",
    "optimize.barriers",
)

#: Counter key prefixes a synthesize run must produce.
SYNTHESIS_COUNTER_PREFIXES = ("mapping.rule.", "optimize.channels.")

#: Risk levels an SLO record may carry, in increasing severity.
SLO_RISKS = ("ok", "warn", "breach")

#: Fields every SLO record must carry.
SLO_RECORD_FIELDS = (
    "target",
    "objective",
    "target_value",
    "observed",
    "events",
    "errors",
    "attainment_pct",
    "budget_remaining_pct",
    "burn_rate",
    "risk",
)

#: Objectives an SLO record may evaluate.
SLO_OBJECTIVES = ("availability", "p50", "p95", "p99")

#: Per-depth fields the BENCH_obs.json "slo" section must carry.
BENCH_SLO_DEPTH_FIELDS = (
    "p50_s",
    "p95_s",
    "p99_s",
    "attainment_pct",
    "budget_remaining_pct",
    "burn_rate",
    "risk",
)


def validate_trace(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid span trace."""
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("top level must be an object with 'traceEvents'")
    events = document["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty array")
    complete = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event #{index} is not an object")
        phase = event.get("ph")
        if phase == "M":
            continue
        if phase != "X":
            raise ValueError(f"event #{index}: unexpected phase {phase!r}")
        complete += 1
        for field in REQUIRED_EVENT_FIELDS:
            if field not in event:
                raise ValueError(f"event #{index} lacks {field!r}")
        if not isinstance(event["ts"], int) or event["ts"] < 0:
            raise ValueError(f"event #{index}: ts must be a non-negative int")
        if not isinstance(event["dur"], int) or event["dur"] < 1:
            raise ValueError(f"event #{index}: dur must be a positive int")
    if complete == 0:
        raise ValueError("trace holds no complete ('X') events")


def validate_span_tree(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless the trace's spans form one rooted tree.

    Every complete event's ``args.parent_id`` must name another complete
    event in the same document (a worker/retry span whose parent was
    never exported is an *orphan root* — the stitching bug this guards
    against), and exactly one span may be parentless.
    """
    events = [
        e
        for e in document.get("traceEvents", [])
        if isinstance(e, dict) and e.get("ph") == "X"
    ]
    ids = {e.get("id") for e in events if e.get("id") is not None}
    roots = []
    for event in events:
        parent = (event.get("args") or {}).get("parent_id")
        if parent is None:
            roots.append(event)
        elif parent not in ids:
            raise ValueError(
                f"span {event.get('name')!r} (id {event.get('id')}) has "
                f"unresolvable parent_id {parent} — orphaned subtree"
            )
    if len(roots) != 1:
        names = sorted(str(e.get("name")) for e in roots)
        raise ValueError(
            f"expected exactly one root span, found {len(roots)}: {names}"
        )


def validate_metrics(document: Dict[str, Any], *, synthesis: bool = True) -> None:
    """Raise ``ValueError`` unless ``document`` is a metrics snapshot.

    With ``synthesis`` (the default) also require the documented keys a
    ``repro synthesize`` run must emit.
    """
    for section in ("counters", "gauges", "timers"):
        if not isinstance(document.get(section), dict):
            raise ValueError(f"metrics must hold a {section!r} object")
    for name, stat in document["timers"].items():
        for field in ("count", "total", "min", "max", "mean"):
            if field not in stat:
                raise ValueError(f"timer {name!r} lacks {field!r}")
    if not synthesis:
        return
    for key in SYNTHESIS_TIMER_KEYS:
        if key not in document["timers"]:
            raise ValueError(f"missing documented timer {key!r}")
    for prefix in SYNTHESIS_COUNTER_PREFIXES:
        if not any(name.startswith(prefix) for name in document["counters"]):
            raise ValueError(f"no counter with documented prefix {prefix!r}")


def _check_record(record: Any, where: str) -> None:
    if not isinstance(record, dict):
        raise ValueError(f"{where} is not an object")
    for field in SLO_RECORD_FIELDS:
        if field not in record:
            raise ValueError(f"{where} lacks {field!r}")
    if record["objective"] not in SLO_OBJECTIVES:
        raise ValueError(
            f"{where}: unknown objective {record['objective']!r}"
        )
    if record["risk"] not in SLO_RISKS:
        raise ValueError(f"{where}: unknown risk {record['risk']!r}")
    for field in ("attainment_pct", "budget_remaining_pct"):
        value = record[field]
        if not isinstance(value, (int, float)) or not 0 <= value <= 100:
            raise ValueError(f"{where}: {field} must be in [0, 100]")
    burn = record["burn_rate"]
    if not isinstance(burn, (int, float)) or burn < 0:
        raise ValueError(f"{where}: burn_rate must be non-negative")
    if burn >= 1.0 and record["risk"] != "breach":
        raise ValueError(
            f"{where}: burn_rate {burn} >= 1 must be risk 'breach', "
            f"got {record['risk']!r}"
        )


def validate_slo(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``document`` is a ``/slo`` report."""
    if not isinstance(document, dict):
        raise ValueError("SLO document must be an object")
    for field in ("window_s", "risk", "targets", "records"):
        if field not in document:
            raise ValueError(f"SLO document lacks {field!r}")
    if document["risk"] not in SLO_RISKS:
        raise ValueError(f"unknown overall risk {document['risk']!r}")
    targets = document["targets"]
    if not isinstance(targets, list) or not targets:
        raise ValueError("'targets' must be a non-empty array")
    names = set()
    for index, target in enumerate(targets):
        if not isinstance(target, dict) or "name" not in target:
            raise ValueError(f"target #{index} lacks 'name'")
        names.add(target["name"])
    records = document["records"]
    if not isinstance(records, list) or not records:
        raise ValueError("'records' must be a non-empty array")
    worst = 0
    for index, record in enumerate(records):
        _check_record(record, f"record #{index}")
        if record["target"] not in names:
            raise ValueError(
                f"record #{index} references undeclared target "
                f"{record['target']!r}"
            )
        worst = max(worst, SLO_RISKS.index(record["risk"]))
    if SLO_RISKS.index(document["risk"]) != worst:
        raise ValueError(
            f"overall risk {document['risk']!r} does not match worst "
            f"record risk {SLO_RISKS[worst]!r}"
        )


def validate_bench_slo(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless BENCH_obs.json carries a valid "slo".

    The section declares the targets and, per benchmarked queue depth,
    the observed p50/p95/p99 with attainment/budget/burn against them.
    """
    section = document.get("slo")
    if not isinstance(section, dict):
        raise ValueError("BENCH document lacks an 'slo' object")
    for field in ("window_s", "targets", "queue_depths"):
        if field not in section:
            raise ValueError(f"'slo' section lacks {field!r}")
    if not isinstance(section["targets"], dict) or not section["targets"]:
        raise ValueError("'slo.targets' must be a non-empty object")
    depths = section["queue_depths"]
    if not isinstance(depths, dict) or not depths:
        raise ValueError("'slo.queue_depths' must be a non-empty object")
    for depth, entry in depths.items():
        if not str(depth).isdigit():
            raise ValueError(f"queue depth {depth!r} is not an integer key")
        if not isinstance(entry, dict):
            raise ValueError(f"queue depth {depth}: entry is not an object")
        for field in BENCH_SLO_DEPTH_FIELDS:
            if field not in entry:
                raise ValueError(f"queue depth {depth}: lacks {field!r}")
        if entry["risk"] not in SLO_RISKS:
            raise ValueError(
                f"queue depth {depth}: unknown risk {entry['risk']!r}"
            )


#: Fields the BENCH_obs.json "zoo" section must carry.
BENCH_ZOO_FIELDS = (
    "seed",
    "models",
    "families",
    "corpus_digest",
    "models_per_sec_cold",
    "models_per_sec_warm",
    "warm_hit_rate",
    "cache_speedup",
    "artifacts_identical",
)


def validate_bench_zoo(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless BENCH_obs.json carries a valid "zoo".

    The section reports "synthesize the zoo" throughput — models/sec
    over a fixed-seed generated corpus, cold and warm cache — plus the
    corpus digest that pins the workload across PRs.
    """
    section = document.get("zoo")
    if not isinstance(section, dict):
        raise ValueError("BENCH document lacks a 'zoo' object")
    for field in BENCH_ZOO_FIELDS:
        if field not in section:
            raise ValueError(f"'zoo' section lacks {field!r}")
    for rate in ("models_per_sec_cold", "models_per_sec_warm"):
        value = section[rate]
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"'zoo.{rate}' must be a positive number")
    if section["models"] <= 0:
        raise ValueError("'zoo.models' must be positive")
    if not section["artifacts_identical"]:
        raise ValueError(
            "'zoo.artifacts_identical' is false: warm-cache synthesis "
            "diverged from the cold flow"
        )
    hit_rate = section["warm_hit_rate"]
    if not isinstance(hit_rate, (int, float)) or not 0.0 <= hit_rate <= 1.0:
        raise ValueError("'zoo.warm_hit_rate' must be in [0, 1]")
    if hit_rate < 1.0:
        raise ValueError(
            f"'zoo.warm_hit_rate' is {hit_rate}: some corpus models "
            "missed the primed synthesis cache"
        )


#: Fields the BENCH_obs.json "analysis" section must carry.
BENCH_ANALYSIS_FIELDS = (
    "corpus_seed",
    "corpus_models",
    "corpus_analyze_s",
    "models_per_sec",
    "diagnostics",
    "error_diagnostics",
    "crane_analyze_s",
    "crane_clean",
    "passes",
)

#: Passes the analyzer registers by default; each must report a timing.
BENCH_ANALYSIS_PASSES = ("structure", "channels", "fsm", "sdf", "dataflow")


def validate_bench_analysis(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless BENCH_obs.json carries a valid "analysis".

    The section reports static-analyzer throughput (models/sec over the
    fixed-seed corpus) plus a per-pass wall-time breakdown, and asserts
    the corpus-wide lint gate: zero error-severity findings.
    """
    section = document.get("analysis")
    if not isinstance(section, dict):
        raise ValueError("BENCH document lacks an 'analysis' object")
    for field in BENCH_ANALYSIS_FIELDS:
        if field not in section:
            raise ValueError(f"'analysis' section lacks {field!r}")
    rate = section["models_per_sec"]
    if not isinstance(rate, (int, float)) or rate <= 0:
        raise ValueError("'analysis.models_per_sec' must be a positive number")
    if section["corpus_models"] <= 0:
        raise ValueError("'analysis.corpus_models' must be positive")
    if section["error_diagnostics"] != 0:
        raise ValueError(
            f"'analysis.error_diagnostics' is "
            f"{section['error_diagnostics']}: the corpus lint gate "
            f"requires zero error-severity findings"
        )
    if not section["crane_clean"]:
        raise ValueError("'analysis.crane_clean' is false")
    passes = section["passes"]
    if not isinstance(passes, dict):
        raise ValueError("'analysis.passes' must be an object")
    for name in BENCH_ANALYSIS_PASSES:
        entry = passes.get(name)
        if not isinstance(entry, dict):
            raise ValueError(f"'analysis.passes' lacks pass {name!r}")
        for field in ("calls", "total_s"):
            if field not in entry:
                raise ValueError(
                    f"'analysis.passes.{name}' lacks {field!r}"
                )
        if entry["calls"] < section["corpus_models"]:
            raise ValueError(
                f"'analysis.passes.{name}' ran {entry['calls']} times for "
                f"{section['corpus_models']} corpus models"
            )


#: Fields the BENCH_obs.json "codegen" section must carry.
BENCH_CODEGEN_FIELDS = (
    "corpus_seed",
    "corpus_models",
    "schedule_s",
    "emit_s",
    "models_per_sec_scheduled",
    "models_per_sec_emitted",
    "languages",
    "buffers",
    "manifest_records",
    "manifests_verified",
    "differential",
)


def validate_bench_codegen(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless BENCH_obs.json carries a valid "codegen".

    The section reports static-schedule backend throughput (models/sec
    scheduled and emitted over the fixed-seed corpus), asserts every
    generated manifest hash-verified, and — when a C compiler was
    available — that every differential check was bit-identical.
    """
    section = document.get("codegen")
    if not isinstance(section, dict):
        raise ValueError("BENCH document lacks a 'codegen' object")
    for field in BENCH_CODEGEN_FIELDS:
        if field not in section:
            raise ValueError(f"'codegen' section lacks {field!r}")
    if section["corpus_models"] <= 0:
        raise ValueError("'codegen.corpus_models' must be positive")
    for rate in ("models_per_sec_scheduled", "models_per_sec_emitted"):
        value = section[rate]
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"'codegen.{rate}' must be a positive number")
    if not section["manifests_verified"]:
        raise ValueError(
            "'codegen.manifests_verified' is false: some generated "
            "manifest failed hash verification"
        )
    languages = section["languages"]
    if not isinstance(languages, list) or "c" not in languages:
        raise ValueError("'codegen.languages' must be a list containing 'c'")
    differential = section["differential"]
    if not isinstance(differential, dict):
        raise ValueError("'codegen.differential' must be an object")
    for field in ("checked", "bit_identical", "compiler"):
        if field not in differential:
            raise ValueError(f"'codegen.differential' lacks {field!r}")
    checked = differential["checked"]
    if checked and differential["bit_identical"] != checked:
        raise ValueError(
            f"'codegen.differential': only {differential['bit_identical']} "
            f"of {checked} checked models were bit-identical"
        )


BENCH_SIMBATCH_ROW_FIELDS = (
    "looped_steps_per_sec",
    "batched_steps_per_sec",
    "speedup",
    "outputs_identical",
)


def validate_bench_simbatch(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless BENCH_obs.json carries a valid "simbatch".

    The section compares looped vs vectorized-batch ``run_many`` steps/sec
    per batch size; every row must assert the two paths produced
    byte-identical episode CSVs (the batch engine's contract is exactness,
    so a divergent row voids the whole measurement).  When NumPy was
    unavailable the section records ``available: false`` and is otherwise
    empty.  The ≥10× speedup requirement at batch 512 is CI's perf-smoke
    gate, not a schema property — a laptop on battery should still be able
    to regenerate a *valid* document.
    """
    section = document.get("simbatch")
    if not isinstance(section, dict):
        raise ValueError("BENCH document lacks a 'simbatch' object")
    if "available" not in section:
        raise ValueError("'simbatch' section lacks 'available'")
    sizes = section.get("batch_sizes")
    if not isinstance(sizes, dict):
        raise ValueError("'simbatch.batch_sizes' must be an object")
    if not section["available"]:
        return
    for expected in ("1", "32", "512"):
        if expected not in sizes:
            raise ValueError(f"'simbatch.batch_sizes' lacks {expected!r}")
    for size, row in sizes.items():
        if not isinstance(row, dict):
            raise ValueError(f"'simbatch.batch_sizes.{size}' must be an object")
        for field in BENCH_SIMBATCH_ROW_FIELDS:
            if field not in row:
                raise ValueError(
                    f"'simbatch.batch_sizes.{size}' lacks {field!r}"
                )
        for rate in ("looped_steps_per_sec", "batched_steps_per_sec"):
            value = row[rate]
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(
                    f"'simbatch.batch_sizes.{size}.{rate}' must be a "
                    f"positive number"
                )
        if not row["outputs_identical"]:
            raise ValueError(
                f"'simbatch.batch_sizes.{size}': batched and looped "
                f"episodes diverged — the measurement is void"
            )


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "trace", nargs="?", help="--trace-out JSON file to validate"
    )
    parser.add_argument("--metrics", help="--metrics-out JSON file to validate")
    parser.add_argument(
        "--tree",
        action="store_true",
        help="require the trace's spans to form a single rooted tree",
    )
    parser.add_argument("--slo", help="GET /slo report JSON file to validate")
    parser.add_argument(
        "--bench",
        help="BENCH_obs.json whose 'slo' and 'zoo' sections to validate",
    )
    args = parser.parse_args(argv)
    if not (args.trace or args.metrics or args.slo or args.bench):
        parser.error("nothing to validate: give a trace, --slo, or --bench")
    try:
        if args.trace:
            with open(args.trace, encoding="utf-8") as handle:
                document = json.load(handle)
            validate_trace(document)
            print(f"{args.trace}: valid Chrome-trace document")
            if args.tree:
                validate_span_tree(document)
                print(f"{args.trace}: spans form a single rooted tree")
        elif args.tree:
            parser.error("--tree needs a trace file")
        if args.metrics:
            with open(args.metrics, encoding="utf-8") as handle:
                validate_metrics(json.load(handle))
            print(f"{args.metrics}: valid metrics snapshot")
        if args.slo:
            with open(args.slo, encoding="utf-8") as handle:
                validate_slo(json.load(handle))
            print(f"{args.slo}: valid SLO report")
        if args.bench:
            with open(args.bench, encoding="utf-8") as handle:
                bench = json.load(handle)
            validate_bench_slo(bench)
            print(f"{args.bench}: valid BENCH slo section")
            validate_bench_zoo(bench)
            print(f"{args.bench}: valid BENCH zoo section")
            validate_bench_analysis(bench)
            print(f"{args.bench}: valid BENCH analysis section")
            validate_bench_codegen(bench)
            print(f"{args.bench}: valid BENCH codegen section")
            validate_bench_simbatch(bench)
            print(f"{args.bench}: valid BENCH simbatch section")
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
