#!/usr/bin/env python3
"""Synthetic 12-thread example (paper §5.2): automatic thread allocation.

Reproduces Figs. 6-8: a sequence diagram describing twelve communicating
threads is turned into a task graph, clustered with linear clustering
(Gerasoulis & Yang), and synthesized — with no deployment diagram — into a
four-CPU Simulink CAAM whose top level matches the paper's Fig. 8.  The
example then compares the automatic allocation against round-robin and
random baselines on the MPSoC cost model, and prints the generated
multithreaded C for one CPU.

Run:  python examples/synthetic_mpsoc.py
"""

from __future__ import annotations

from repro.apps import synthetic
from repro.core import (
    allocate_from_model,
    inter_cluster_communication,
    random_clusters,
    round_robin_clusters,
    synthesize,
)
from repro.mpsoc import (
    communication_cost,
    generate_cpu_source,
    platform_for_caam,
    schedule_caam,
)


def main() -> None:
    model = synthetic.build_model()

    print("=== Task graph extracted from the sequence diagram (Fig. 7a) ===")
    allocation = allocate_from_model(model)
    graph = allocation.graph
    for (src, dst), weight in sorted(graph.edges.items()):
        print(f"  {src} -> {dst}: {weight:g} bits/iteration")

    print("\n=== Linear clustering result (Fig. 7b) ===")
    print(f"  {allocation.summary()}")
    print(f"  critical path: {' -> '.join(allocation.clustering.critical_path)}")
    expected = set(synthetic.EXPECTED_CLUSTERS)
    actual = set(allocation.clustering.as_sets())
    print(f"  matches the paper's grouping: {expected == actual}")

    print("\n=== Baseline comparison (communication crossing CPUs) ===")
    cpu_count = len(allocation.plan.cpus)
    for label, clusters in [
        ("linear clustering", allocation.clustering.clusters),
        ("round-robin", round_robin_clusters(graph, cpu_count)),
        ("random (seed 1)", random_clusters(graph, cpu_count, seed=1)),
    ]:
        traffic = inter_cluster_communication(graph, clusters)
        print(f"  {label:>18}: {traffic:8g} bits/iteration inter-CPU")

    print("\n=== Synthesized CAAM top level (Fig. 8) ===")
    result = synthesize(
        model, auto_allocate=True, behaviors=synthetic.behaviors()
    )
    print(f"  {result.summary}")
    for channel in result.caam.inter_cpu_channels():
        print(f"  inter-CPU channel {channel.name} (GFIFO)")

    print("\n=== MPSoC cost model ===")
    platform = platform_for_caam(result.caam)
    print(f"  {communication_cost(result.caam, platform)}")
    schedule = schedule_caam(result.caam, platform)
    print(f"  makespan: {schedule.makespan:g} cycles")
    print("  schedule:")
    for line in schedule.gantt().splitlines():
        print(f"    {line}")

    cpu = result.caam.cpus()[0].name
    print(f"\n=== Generated multithreaded C for {cpu} (first 30 lines) ===")
    source = generate_cpu_source(result.caam, cpu)
    for line in source.splitlines()[:30]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
