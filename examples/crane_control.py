#!/usr/bin/env python3
"""Crane control system (paper §5.1): synthesis + closed-loop simulation.

Reproduces the paper's first case study: three threads specified by
sequence diagrams, all deployed on one CPU, with a feedback cycle in the
control thread T3 that the §4.2.2 optimization must break by automatically
inserting a UnitDelay (the Delay of the paper's Fig. 5).

The example then closes the loop: the generated CAAM (running in the
dataflow simulator) controls the numeric crane plant, driving the car
toward the commanded position.

Run:  python examples/crane_control.py
"""

from __future__ import annotations

from repro.apps import crane
from repro.core import synthesize
from repro.simulink import Simulator, is_executable


def main() -> None:
    model = crane.build_model()
    print("=== Synthesis with temporal barriers disabled (what goes wrong) ===")
    broken = synthesize(model, behaviors=crane.behaviors(), insert_barriers=False)
    executable, cycle = is_executable(broken.caam)
    print(f"  executable: {executable}")
    if cycle:
        print(f"  deadlocked cycle: {' -> '.join(cycle)}")

    print("\n=== Synthesis with the full optimization pipeline ===")
    result = synthesize(model, behaviors=crane.behaviors())
    print(f"  {result.summary}")
    for barrier in result.optimization.barriers.inserted:
        print(
            f"  inserted {barrier.delay_path} breaking "
            f"{barrier.broken_edge[0]} -> {barrier.broken_edge[1]}"
        )
    executable, _ = is_executable(result.caam)
    print(f"  executable: {executable}")

    print("\n=== Closed-loop run: CAAM controller + numeric crane plant ===")
    simulator = Simulator(result.caam)
    plant = crane.CranePlant()
    target = 5.0
    print(f"  target position: {target} m")
    print(f"  {'step':>5} {'car pos [m]':>12} {'sway [rad]':>11} {'motor [V]':>10}")
    voltage = 0.0
    for step in range(300):
        trace = simulator.run(
            1,
            inputs={
                "In1": [plant.xc],      # getPosition
                "In2": [plant.alpha],   # getAngle
                "In3": [target],        # getCommand
            },
        )
        voltage = trace.output("Out1")[0]
        plant.step(voltage)
        if step % 50 == 0 or step == 299:
            print(
                f"  {step:>5} {plant.xc:>12.3f} {plant.alpha:>11.4f} "
                f"{voltage:>10.3f}"
            )
    print(
        f"\n  final car position {plant.xc:.2f} m "
        f"(moved {'toward' if plant.xc > 0 else 'away from'} the target); "
        f"motor voltage stayed within ±{crane.V_MAX} V"
    )


if __name__ == "__main__":
    main()
