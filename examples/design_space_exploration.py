#!/usr/bin/env python3
"""Design-space exploration — the paper's future work, realized.

"As future work, we plan to integrate an estimation step in the proposed
development flow to automatically determine the best partitioning and
mapping solution.  This would avoid the need for the designer to specify
the deployment and partition the system into threads, while supporting
design space exploration."

This example:

1. takes a *monolithic* model (one thread doing everything) and
   automatically partitions it into pipeline threads;
2. explores thread→CPU allocations with the fast cost estimator;
3. prints the (makespan, CPU count) Pareto front;
4. synthesizes the chosen design and cross-checks the estimate against
   the full CAAM schedule.

Run:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.core import synthesize, task_graph_from_model
from repro.dse import (
    estimate_allocation,
    explore,
    pareto_front,
    partition_thread,
)
from repro.mpsoc import platform_for_caam, schedule_caam
from repro.uml import ModelBuilder


def build_monolithic_model():
    """A single thread running an 8-stage signal chain."""
    b = ModelBuilder("signal_chain")
    b.thread("Main")
    b.io_device("Adc")
    sd = b.interaction("main")
    sd.call("Main", "Adc", "getSample", result="v0")
    stages = [
        "window",
        "fft",
        "mag",
        "threshold",
        "cluster",
        "track",
        "classify",
        "report",
    ]
    for index, stage in enumerate(stages):
        sd.call("Main", "Main", stage, args=[f"v{index}"], result=f"v{index + 1}")
    sd.call("Main", "Adc", "setResult", args=[f"v{len(stages)}"])
    return b.build()


def main() -> None:
    model = build_monolithic_model()
    print("=== 1. Automatic thread partitioning ===")
    print("monolithic: 1 thread, 8 pipeline stages")
    partitioned = partition_thread(model, "Main", 4)
    threads = [
        i.name
        for i in partitioned.all_instances()
        if i.has_stereotype("SASchedRes") and i.name != "Main"
    ]
    print(f"partitioned into: {threads}")
    interaction = partitioned.interaction("main_partitioned")
    handoffs = [
        m for m in interaction.messages() if m.is_send and m.is_inter_thread
    ]
    print(f"inserted hand-off channels: {[m.channel_name for m in handoffs]}")

    print("\n=== 2. Explore allocations (fast estimator) ===")
    graph = task_graph_from_model(partitioned)
    candidates = explore(graph)
    print(f"evaluated {len(candidates)} candidate allocation(s)")
    for candidate in candidates[:5]:
        print(f"  {candidate}")

    print("\n=== 3. Pareto fronts under both objectives ===")
    print("  latency objective (one-iteration makespan):")
    front = pareto_front(candidates)
    for candidate in front:
        print(
            f"    {candidate.cpu_count} CPU(s): {candidate.makespan:g} cycles"
        )
    print("  throughput objective (steady-state interval; streaming):")
    throughput_candidates = explore(graph, objective="throughput")
    throughput_front = pareto_front(
        throughput_candidates, objective="throughput"
    )
    for candidate in throughput_front:
        print(
            f"    {candidate.cpu_count} CPU(s): "
            f"{candidate.interval:g} cycles/sample"
        )
    front = throughput_front  # pick the streaming trade-off below

    print("\n=== 4. Synthesize the chosen design ===")
    chosen = front[-1]  # most parallel Pareto point
    print(f"chosen: {chosen}")
    result = synthesize(partitioned, chosen.plan)
    print(f"  {result.summary}")
    platform = platform_for_caam(result.caam)
    schedule = schedule_caam(result.caam, platform)
    estimate = estimate_allocation(graph, chosen.plan)
    print(f"  estimated makespan: {estimate.makespan_cycles:g} cycles")
    print(f"  full CAAM schedule: {schedule.makespan:g} cycles")
    print("  schedule:")
    for line in schedule.gantt().splitlines():
        print(f"    {line}")


if __name__ == "__main__":
    main()
