#!/usr/bin/env python3
"""Quickstart: the paper's didactic example (Fig. 3), end to end.

Builds the UML model (deployment + sequence diagram), runs the synthesis
flow (mapping §4.1 + channel inference §4.2.1 + barriers §4.2.2), prints
the CAAM census, executes the generated model in the dataflow simulator,
and writes the ``.mdl`` artifact.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os
import tempfile

from repro.apps import didactic
from repro.core import synthesize
from repro.simulink import Simulator, validate_caam


def main() -> None:
    print("=== 1. Build the UML model (Fig. 3a/3b) ===")
    model = didactic.build_model()
    print(f"model {model.name!r}:")
    print(f"  classes:      {[c.name for c in model.all_classes()]}")
    print(f"  threads:      {[i.name for i in model.all_instances() if i.has_stereotype('SASchedRes')]}")
    print(f"  processors:   {[n.name for n in model.nodes]}")
    print(f"  interactions: {[i.name for i in model.interactions]}")

    print("\n=== 2-3. Synthesize the Simulink CAAM (Fig. 3c) ===")
    result = synthesize(model, behaviors=didactic.behaviors())
    print(f"  {result.summary}")
    for cpu in result.caam.cpus():
        threads = [t.name for t in cpu.thread_subsystems()]
        print(f"  {cpu.name}: threads {threads}")
    problems = validate_caam(result.caam)
    print(f"  CAAM structural check: {'OK' if not problems else problems}")

    from repro.simulink import render_tree

    print("\ngenerated hierarchy (the textual Fig. 3c):")
    for line in render_tree(result.caam).splitlines():
        print(f"  {line}")

    print("\n=== 4. Execute the generated model ===")
    simulator = Simulator(result.caam)
    # One system input (the <<IO>> read in T3), one system output (T2).
    trace = simulator.run(5, inputs={"In1": [1, 2, 3, 4, 5]})
    for name, samples in trace.outputs.items():
        print(f"  {name}: {samples}")

    print("\n=== 5. Emit the .mdl artifact ===")
    path = os.path.join(tempfile.gettempdir(), "didactic.mdl")
    result.write_mdl(path)
    print(f"  wrote {path} ({len(result.mdl_text)} bytes)")
    print("\nfirst lines of the .mdl file:")
    for line in result.mdl_text.splitlines()[:12]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
