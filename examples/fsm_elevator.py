#!/usr/bin/env python3
"""FSM back-end example: an elevator door controller.

The control-flow leg of the paper's Fig. 1: an event-based subsystem is
modelled as a UML state machine (with a composite state), flattened to an
FSM, executed against an event trace, and emitted as both C and Java.

Run:  python examples/fsm_elevator.py
"""

from __future__ import annotations

from repro.fsm import FsmSimulator, fsm_from_state_machine, generate_c, generate_java
from repro.uml import Pseudostate, Region, State, StateMachine, Transition


def build_state_machine() -> StateMachine:
    """Elevator door: closed -> opening -> open -> closing, with an
    obstruction sensor that re-opens a closing door (nested in a composite
    ``Moving`` state)."""
    machine = StateMachine("elevator_door")
    region = machine.main_region()

    initial = region.add_vertex(Pseudostate())
    closed = region.add_vertex(State("closed", entry="lock = 1"))
    open_ = region.add_vertex(State("open", entry="lock = 0"))
    moving = region.add_vertex(State("moving"))
    inner = moving.add_region(Region("phases"))
    inner_initial = inner.add_vertex(Pseudostate())
    opening = inner.add_vertex(State("opening", do="motor = 1"))
    closing = inner.add_vertex(State("closing", do="motor = -1"))
    inner.add_transition(Transition(inner_initial, opening))
    inner.add_transition(
        Transition(
            closing,
            opening,
            trigger="obstructed",
            effect="retries = retries + 1",
        )
    )

    region.add_transition(Transition(initial, closed))
    # Entering the composite lands on its initial leaf (opening).
    region.add_transition(Transition(closed, moving, trigger="call"))
    # Cross-hierarchy transitions in and out of the composite.
    region.add_transition(Transition(opening, open_, trigger="fully_open"))
    region.add_transition(Transition(open_, closing, trigger="timeout"))
    region.add_transition(Transition(closing, closed, trigger="fully_closed"))
    return machine


def main() -> None:
    machine = build_state_machine()
    fsm = fsm_from_state_machine(machine)
    fsm.add_variable("lock", 1.0)
    fsm.add_variable("motor", 0.0)
    fsm.add_variable("retries", 0.0)

    print("=== Flattened FSM ===")
    print(f"  states: {list(fsm.states)}")
    print(f"  initial: {fsm.initial}")
    print(f"  events: {fsm.events}")
    print(f"  validation: {fsm.validate() or 'OK'}")

    print("\n=== Execution trace ===")
    simulator = FsmSimulator(fsm)
    events = [
        "call",          # closed -> moving (enters opening)
        "fully_open",    # opening -> open
        "timeout",       # open -> closing
        "obstructed",    # closing -> opening, retries += 1
        "fully_open",    # opening -> open
        "timeout",       # open -> closing
        "fully_closed",  # closing -> closed
    ]
    for event in events:
        state = simulator.step(event)
        print(f"  {event:>13} -> {state:<16} vars={simulator.variables}")

    print("\n=== Generated C (excerpt) ===")
    for line in generate_c(fsm).splitlines()[:24]:
        print(f"  {line}")

    print("\n=== Generated Java (excerpt) ===")
    for line in generate_java(fsm).splitlines()[:18]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
