#!/usr/bin/env python3
"""Heterogeneous code generation: one UML model, every back-end (Fig. 1).

The paper's headline claim: "this approach allows designers to employ UML
to model the whole system and reuse this model to generate code using
different strategies and targeting different platforms."  This example
takes the crane UML model and fans it out to

- the Simulink back-end (CAAM ``.mdl`` + intermediate E-core XML),
- the multithreaded Java back-end,
- the KPN back-end (network + GraphViz topology),
- the MPSoC multithreaded C generator (via the synthesized CAAM),

writing every artifact into an output directory.

Run:  python examples/heterogeneous_codegen.py [output_dir]
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro.apps import crane
from repro.backends import DesignFlow, JavaBackend, KpnBackend, SimulinkBackend
from repro.mpsoc import generate_all


def main() -> None:
    output_dir = (
        sys.argv[1]
        if len(sys.argv) > 1
        else os.path.join(tempfile.gettempdir(), "repro_codegen")
    )
    os.makedirs(output_dir, exist_ok=True)

    model = crane.build_model()
    simulink = SimulinkBackend(behaviors=crane.behaviors())
    flow = DesignFlow([simulink, JavaBackend(), KpnBackend()])

    print(f"generating from UML model {model.name!r} into {output_dir}/")
    artifacts = flow.generate_all(model)
    # Add the downstream MPSoC C sources generated from the CAAM.
    assert simulink.last_result is not None
    artifacts["mpsoc-c"] = {
        f"{cpu}.c": source
        for cpu, source in generate_all(simulink.last_result.caam).items()
    }

    total = 0
    for backend, files in artifacts.items():
        backend_dir = os.path.join(output_dir, backend)
        os.makedirs(backend_dir, exist_ok=True)
        for filename, content in files.items():
            path = os.path.join(backend_dir, filename)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(content)
            print(f"  [{backend:>9}] {filename:<24} {len(content):>6} bytes")
            total += 1
    print(f"\n{total} artifacts from one UML model, four strategies.")

    kpn_net = flow.backends[2].last_network  # type: ignore[attr-defined]
    print("\nKPN liveness check: run 3 rounds with unit stimulus")
    outputs = kpn_net.run(
        3,
        inputs={
            channel.name: [1.0, 1.0, 1.0]
            for channel in kpn_net.network_inputs()
        },
    )
    for name, tokens in outputs.items():
        print(f"  {name}: {tokens}")


if __name__ == "__main__":
    main()
