#!/usr/bin/env python3
"""Motion-JPEG decoder pipeline — the downstream flow's workload.

The paper feeds its generated CAAMs to the "Simulink-based MPSoC design
flow" whose published case study is a Motion-JPEG decoder (Huang et al.,
DAC 2007).  This example plays that story end to end on a simplified but
bit-true decoder:

1. model the five-stage decoder pipeline in UML (no deployment diagram);
2. synthesize the CAAM with automatic thread allocation;
3. decode an encoded test pattern *through the generated model* and check
   pixel-perfect reconstruction;
4. sweep the CPU count and print the steady-state throughput curve.

Run:  python examples/mjpeg_decoder.py
"""

from __future__ import annotations

from repro.apps import mjpeg
from repro.core import synthesize
from repro.mpsoc import generate_cpu_source, platform_for_caam, steady_state_interval
from repro.simulink import Simulator
from repro.uml import DeploymentPlan


def main() -> None:
    model = mjpeg.build_model()

    print("=== 1. Synthesize the decoder CAAM (automatic allocation) ===")
    result = synthesize(
        model, auto_allocate=True, behaviors=mjpeg.behaviors()
    )
    print(f"  {result.summary}")
    chain = " -> ".join(mjpeg.THREADS)
    print(f"  pipeline: {chain}")

    print("\n=== 2. Bit-true decode through the generated model ===")
    pixels = mjpeg.sample_pixels(12)
    stream = mjpeg.encode(pixels)
    simulator = Simulator(result.caam)
    trace = simulator.run(len(stream), inputs={"In1": stream})
    decoded = trace.output("Out1")
    print(f"  original pixels: {[int(p) for p in pixels]}")
    print(f"  decoded pixels:  {[int(p) for p in decoded]}")
    print(f"  pixel-perfect:   {decoded == pixels}")

    print("\n=== 3. Throughput vs CPU count (DAC'07-style sweep) ===")
    print(f"  {'CPUs':>5} {'cycles/sample':>15} {'speedup':>9}")
    base = None
    for cpus in (1, 2, 3, 5):
        plan = DeploymentPlan.from_mapping(
            {t: f"CPU{i % cpus}" for i, t in enumerate(mjpeg.THREADS)}
        )
        swept = synthesize(model, plan, behaviors=mjpeg.behaviors())
        platform = platform_for_caam(swept.caam)
        interval = steady_state_interval(swept.caam, platform)
        base = base or interval
        print(f"  {cpus:>5} {interval:>15g} {base / interval:>8.2f}x")

    print("\n=== 4. Multithreaded C for the fully pipelined mapping ===")
    plan = DeploymentPlan.from_mapping(
        {t: f"CPU{i}" for i, t in enumerate(mjpeg.THREADS)}
    )
    pipelined = synthesize(model, plan, behaviors=mjpeg.behaviors())
    source = generate_cpu_source(pipelined.caam, "CPU1")
    print("  CPU1 (the VLD stage):")
    for line in source.splitlines():
        if "thread_Tvld" in line or "fifo" in line or "vld(" in line:
            print(f"    {line.strip()}")


if __name__ == "__main__":
    main()
