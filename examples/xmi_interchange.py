#!/usr/bin/env python3
"""XMI interchange: edit in an external UML tool, synthesize from the file.

The paper's tool consumes models from "MagicDraw or other EMF/UML compliant
tool" via XMI.  This example round-trips the synthetic 12-thread model
through an XMI file — exactly the artifact an external editor would hand
the synthesis tool — and shows the synthesis result is identical.

Run:  python examples/xmi_interchange.py
"""

from __future__ import annotations

import os
import tempfile

from repro.apps import synthetic
from repro.core import synthesize
from repro.uml import read_xmi, validate_model, write_xmi


def main() -> None:
    model = synthetic.build_model()
    path = os.path.join(tempfile.gettempdir(), "synthetic.uml.xmi")

    print(f"=== Export to XMI: {path} ===")
    write_xmi(model, path)
    size = os.path.getsize(path)
    print(f"  {size} bytes")
    with open(path, encoding="utf-8") as handle:
        for line in handle.read().splitlines()[:10]:
            print(f"  {line}")

    print("\n=== Re-import and validate ===")
    loaded = read_xmi(path)
    issues = validate_model(loaded)
    print(f"  interactions: {[i.name for i in loaded.interactions]}")
    print(
        f"  messages: {sum(len(i.messages()) for i in loaded.interactions)}"
    )
    print(f"  validation issues: {[str(i) for i in issues] or 'none'}")

    print("\n=== Synthesize from both and compare ===")
    original = synthesize(model, auto_allocate=True)
    reloaded = synthesize(loaded, auto_allocate=True)
    print(f"  original: {original.summary}")
    print(f"  reloaded: {reloaded.summary}")
    print(f"  identical census: {original.summary == reloaded.summary}")
    print(
        f"  identical .mdl text: {original.mdl_text == reloaded.mdl_text}"
    )


if __name__ == "__main__":
    main()
